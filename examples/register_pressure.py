"""Estimate register pressure with liveness queries only.

Run with::

    python examples/register_pressure.py

Register allocators need, for every block, the number of values that are
live across it — the register pressure.  With per-block live *sets* this is
a lookup; with the paper's checker it is a handful of queries per variable,
but in exchange nothing has to be recomputed when the allocator inserts
spill code.  This example computes block-level pressure for a generated
SPEC-shaped procedure with the checker and validates the numbers against
the data-flow sets.
"""

import random

from repro import DataflowLiveness, FastLivenessChecker
from repro.synth.spec_profiles import generate_function_with_blocks


def block_pressure(function, oracle) -> dict[str, int]:
    """Number of variables live-in at each block, per the given oracle."""
    pressure = {}
    variables = oracle.live_variables()
    for block in function.blocks:
        pressure[block] = sum(1 for var in variables if oracle.is_live_in(var, block))
    return pressure


def main() -> None:
    rng = random.Random(2008)
    function = generate_function_with_blocks(rng, target_blocks=30, name="hot_function")
    print(
        f"generated procedure '{function.name}' with {len(function.blocks)} blocks "
        f"and {len(function.variables())} SSA variables"
    )
    print()

    checker = FastLivenessChecker(function)
    checker.prepare()
    baseline = DataflowLiveness(function)

    from_checker = block_pressure(function, checker)
    from_sets = block_pressure(function, baseline)
    assert from_checker == from_sets, "engines disagree on register pressure!"

    print(f"{'block':>22}  {'live-in variables':>18}")
    for block, count in sorted(from_checker.items(), key=lambda item: -item[1])[:12]:
        print(f"{block:>22}  {count:>18}")
    print()

    hottest = max(from_checker.items(), key=lambda item: item[1])
    print(
        f"maximum block-level pressure is {hottest[1]} live values at block "
        f"'{hottest[0]}' — an allocator with fewer registers than that must spill."
    )
    print("(checker and data-flow sets agree on every block)")

    # The real allocator refines this to instruction granularity: MaxLive,
    # the pressure maximum over *definition points*, is what the chordal
    # coloring of repro.regalloc provably needs.
    from repro.regalloc import compute_pressure

    info = compute_pressure(function, checker)
    print(
        f"instruction-level MaxLive is {info.max_live} "
        f"(hottest definition point in block '{info.max_block}')"
    )


if __name__ == "__main__":
    main()
