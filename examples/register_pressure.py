"""Estimate register pressure with liveness queries only.

Run with::

    python examples/register_pressure.py

Register allocators need, for every block, the number of values that are
live across it — the register pressure.  With per-block live *sets* this
is a lookup; with the paper's checker it is a handful of queries per
variable, but in exchange nothing has to be recomputed when the allocator
inserts spill code.  This example asks the compiler server for each
block's live-in set (one ``LiveSetRequest`` per block through
:class:`repro.CompilerClient`) on a generated SPEC-shaped procedure and
validates the numbers against the data-flow sets.
"""

import random

from repro import CompilerClient, DataflowLiveness
from repro.api import LiveSetRequest
from repro.synth.spec_profiles import generate_function_with_blocks


def main() -> None:
    rng = random.Random(2008)
    function = generate_function_with_blocks(rng, target_blocks=30, name="hot_function")
    print(
        f"generated procedure '{function.name}' with {len(function.blocks)} blocks "
        f"and {len(function.variables())} SSA variables"
    )
    print()

    client = CompilerClient([function])
    handle = client.handle(function.name)
    baseline = DataflowLiveness(function)

    from_api = {}
    for block in function.blocks:
        response = client.dispatch(LiveSetRequest(function=handle, block=block))
        assert response.ok, response.error
        from_api[block] = len(response.variables)
    from_sets = {
        block: sum(
            1 for var in baseline.live_variables() if baseline.is_live_in(var, block)
        )
        for block in function.blocks
    }
    assert from_api == from_sets, "engines disagree on register pressure!"

    print(f"{'block':>22}  {'live-in variables':>18}")
    for block, count in sorted(from_api.items(), key=lambda item: -item[1])[:12]:
        print(f"{block:>22}  {count:>18}")
    print()

    hottest = max(from_api.items(), key=lambda item: item[1])
    print(
        f"maximum block-level pressure is {hottest[1]} live values at block "
        f"'{hottest[0]}' — an allocator with fewer registers than that must spill."
    )
    print("(API live sets and data-flow sets agree on every block)")

    # The real allocator refines this to instruction granularity: MaxLive,
    # the pressure maximum over *definition points*, is what the chordal
    # coloring of repro.regalloc provably needs.
    from repro.regalloc import compute_pressure

    info = compute_pressure(function, client.service.checker(function.name))
    print(
        f"instruction-level MaxLive is {info.max_live} "
        f"(hottest definition point in block '{info.max_block}')"
    )


if __name__ == "__main__":
    main()
