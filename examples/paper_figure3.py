"""Walk through the paper's Figure 3 example, query by query.

Run with::

    python examples/paper_figure3.py

The script reconstructs the example CFG of Section 3.2 (nodes numbered in
dominance-tree preorder, back edges (10,8), (6,5), (7,2)), prints the
precomputed R and T sets, and then replays every liveness query the paper
discusses, showing which back-edge targets the algorithm had to consider.
"""

from repro import LivenessPrecomputation
from repro.cfg import ControlFlowGraph
from repro.core import BitsetChecker, SetBasedChecker

EDGES = [
    (1, 2), (2, 3), (2, 11), (3, 4), (3, 8), (4, 5), (5, 6), (6, 7),
    (6, 5), (7, 2), (8, 9), (9, 10), (9, 6), (10, 8), (10, 11),
]

#: variable -> (definition node, use nodes), as discussed in the paper.
VARIABLES = {"w": (3, {4}), "x": (3, {9}), "y": (3, {5})}

#: the queries Section 3.2 / 4.1 walk through, with the paper's answers.
PAPER_QUERIES = [
    ("x", 10, True, "use at 9 is reduced-reachable from back-edge target 8"),
    ("y", 10, True, "needs two back edges: 10→8, then (6,5) discovered via T_8"),
    ("w", 10, False, "back-edge target 2 is outside sdom(def(w)) and must be ignored"),
    ("x", 4, False, "the path 4,5,6,7,2,3,8 leaves and re-enters def(x)'s subtree"),
]


def main() -> None:
    graph = ControlFlowGraph.from_edges(EDGES, entry=1)
    pre = LivenessPrecomputation(graph)
    set_checker = SetBasedChecker(pre)
    bit_checker = BitsetChecker(pre)

    print("Reconstructed Figure 3 CFG")
    print(f"  nodes: {sorted(graph.nodes())}")
    print(f"  back edges: {pre.dfs.back_edges()}")
    print(f"  reducible: {pre.reducible}")
    print()

    print("Precomputed sets (R = reduced reachability, T = relevant back-edge targets):")
    for node in sorted(graph.nodes()):
        reach = sorted(pre.reach.reachable_nodes(node))
        targets = sorted(pre.targets.target_nodes(node))
        print(f"  node {node:>2}:  R = {reach}   T = {targets}")
    print()

    print("Queries from the paper:")
    for name, query, expected, why in PAPER_QUERIES:
        def_node, uses = VARIABLES[name]
        answer = set_checker.is_live_in(def_node, uses, query)
        bit_answer = bit_checker.is_live_in(
            pre.num(def_node), [pre.num(u) for u in uses], pre.num(query)
        )
        assert answer == bit_answer == expected
        candidates = pre.targets.relevant_targets(query, def_node)
        print(f"  is {name} live-in at {query}?  ->  {answer}")
        print(f"      def({name}) = {def_node}, uses = {sorted(uses)}")
        print(f"      T_({query},{name}) = T_{query} ∩ sdom({def_node}) = {candidates}")
        print(f"      paper: {why}")
    print()
    print("all answers match the paper (and the bitset implementation).")


if __name__ == "__main__":
    main()
