"""Serve one module from many threads through the sharded compiler server.

Run with::

    python examples/concurrent_serving.py

One :class:`repro.ShardedClient` holds the module; its functions are
partitioned across shards (stable hash of the name), each shard guarding
its own checker cache with a reader/writer lock.  Any number of threads
may fire ``dispatch``/``dispatch_json`` at it concurrently: queries share
a shard's read lock, edits and out-of-SSA translations take the write
lock and bump the function's revision — so a client holding results
derived from a pre-edit revision gets a structured ``STALE_HANDLE``
error, never a silently-wrong liveness fact, no matter how the threads
interleave.

The wire loop (:func:`repro.serve_loop`) turns ``dispatch_json`` into a
server: JSON envelopes in a work queue, a configurable worker pool
draining it, responses in request order.  On the wire the server speaks
two negotiated codecs — JSON text and the ``bin2`` binary framing — and
the final section negotiates bin2 with a :class:`BytesClient` and reads
the per-codec byte counters back over the wire with a ``StatsRequest``.
"""

import random
import threading

from repro import ShardedClient, serve_loop
from repro.api import (
    BatchLiveness,
    DestructRequest,
    LivenessQuery,
    NotifyRequest,
    StatsRequest,
    encode_request,
)
from repro.api.codec import BytesClient

SOURCE = """
func gcd(a, b) {
    while (b != 0) {
        t = b;
        b = a % b;
        a = t;
    }
    return a;
}

func sum_to(n) {
    s = 0;
    i = 1;
    while (i <= n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}

func clamp(x, lo, hi) {
    if (x < lo) { x = lo; }
    if (x > hi) { x = hi; }
    return x;
}

func fib(n) {
    a = 0;
    b = 1;
    while (n > 0) {
        t = a + b;
        a = b;
        b = t;
        n = n - 1;
    }
    return a;
}
"""


def main() -> None:
    client = ShardedClient(shards=4, capacity=8)
    handles = client.compile(SOURCE)
    names = [handle.name for handle in handles]
    print(f"compiled {len(names)} functions: {', '.join(names)}")
    for name in names:
        print(f"  {name!r} lives on shard {client.service.shard_of(name)}")

    # --- many threads, one server ------------------------------------
    catalog = {
        name: (
            [var.name for var in client.service.function(name).variables()],
            [block.name for block in client.service.function(name)],
        )
        for name in names
    }
    answered = []

    def worker(seed: int) -> None:
        rng = random.Random(seed)
        for _ in range(200):
            name = rng.choice(names)
            variables, blocks = catalog[name]
            response = client.dispatch(
                LivenessQuery(
                    function=name,
                    kind=rng.choice(("in", "out")),
                    # A few unknown names on purpose: errors are
                    # structured responses, not exceptions.
                    variable=rng.choice(variables + ["ghost"]),
                    block=rng.choice(blocks),
                )
            )
            answered.append(response.error is None)

    threads = [
        threading.Thread(target=worker, args=(seed,)) for seed in range(6)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    ok = sum(answered)
    print(
        f"\n6 threads dispatched {len(answered)} point queries "
        f"({ok} answered, {len(answered) - ok} structured errors)"
    )

    # --- revisions are the synchronization currency -------------------
    stale = client.handle("gcd")
    client.dispatch(NotifyRequest(function="gcd", kind="instructions"))
    response = client.dispatch(
        LivenessQuery(function=stale, kind="in", variable="b", block="entry")
    )
    assert response.error is not None
    print(f"\nquery at pre-edit revision: {response.error.code.value}")

    destructed = client.dispatch(DestructRequest(function="fib"))
    print(
        f"destructed 'fib' under its shard's write lock: "
        f"{destructed.stats.phis_removed} phis removed, handle now "
        f"{destructed.function}"
    )

    # --- the wire loop: a worker pool over JSON envelopes -------------
    rng = random.Random(7)

    def batch_query():
        name = rng.choice(names[:3])
        variables, blocks = catalog[name]
        return LivenessQuery(
            function=name,
            kind="in",
            variable=rng.choice(variables),
            block=rng.choice(blocks),
        )

    payloads = [
        encode_request(
            BatchLiveness(
                queries=tuple(batch_query() for _ in range(rng.randrange(1, 5)))
            )
        )
        for _ in range(300)
    ]
    responses = serve_loop(client.dispatch_json, payloads, workers=4)
    answered_batches = sum(
        1 for envelope in responses if envelope["body"]["error"] is None
    )
    print(
        f"\nwire loop: {len(payloads)} batch envelopes through 4 workers, "
        f"{answered_batches} answered in request order"
    )

    stats = client.service.stats
    print(
        f"\naggregate stats across shards: {stats.queries} queries, "
        f"{int(stats.hits)} hits / {int(stats.misses)} misses "
        f"(hit rate {stats.hit_rate:.0%}), "
        f"{int(stats.stale_handle_rejections)} stale handles rejected"
    )

    # --- the binary codec: negotiate bin2, watch the bytes ------------
    session = client.bytes_session()       # one connection's server half
    peer = BytesClient(session.dispatch_frame)   # offers bin2, then json
    print(f"\nnegotiated wire codec: {peer.codec}")
    for _ in range(200):
        response = peer.dispatch(batch_query())
        assert response.error is None
    wire_stats = peer.dispatch(StatsRequest())
    counters = wire_stats.snapshot["counters"]
    for codec in ("bin2", "json"):
        bytes_in = counters.get(f"wire.bytes_in{{codec={codec}}}", 0)
        bytes_out = counters.get(f"wire.bytes_out{{codec={codec}}}", 0)
        print(
            f"  codec={codec}: {bytes_in} bytes in, {bytes_out} bytes out"
        )
    print(
        "  (the json rows are the hello handshake; every query after it "
        "rode the binary framing)"
    )


if __name__ == "__main__":
    main()
