"""Allocate registers for a function using only liveness queries.

Run with::

    python examples/register_allocation.py

This drives the whole :mod:`repro.regalloc` pipeline on a small program:
measure MaxLive, spill down to a 3-register budget with the
furthest-next-use heuristic, color the chordal SSA interference in
dominance order, and finally check the result against the independent
data-flow oracle.  Every global liveness fact along the way is an
``is_live_in``/``is_live_out`` query against the paper's checker — no
live sets are ever materialised, and the spill rewrites never invalidate
the checker's CFG precomputation.
"""

from repro import allocate, compile_source, verify_allocation

SOURCE = """
func polyeval(x, n) {
    acc = 0;
    c0 = 3;
    c1 = 5;
    c2 = 7;
    i = 0;
    while (i < n) {
        t = x * x;
        acc = acc + c0 + c1 * x + c2 * t;
        i = i + 1;
    }
    return acc;
}
"""


def main() -> None:
    function = compile_source(SOURCE).function("polyeval")
    print(
        f"compiled 'polyeval': {len(function.blocks)} blocks, "
        f"{len(function.variables())} SSA variables"
    )

    allocation = allocate(function, num_registers=3, backend="fast")
    print(
        f"MaxLive before spilling: {allocation.max_live_before_spill}, "
        f"after: {allocation.max_live}, budget: {allocation.num_registers}"
    )
    if allocation.spill_report is not None:
        report = allocation.spill_report
        print(
            f"spilled {len(report.spilled)} value(s) in {report.rounds} round(s): "
            + ", ".join(f"{var.name}->slot{report.slot_of[var]}" for var in report.spilled)
        )
    print(f"registers used: {allocation.registers_used}")
    print()

    print(f"{'variable':>16}  {'register':>8}")
    shown = sorted(allocation.register_of.items(), key=lambda item: item[0].name)
    for var, register in shown[:10]:
        print(f"{var.name:>16}  r{register:<7}")
    if len(shown) > 10:
        print(f"{'...':>16}  ({len(shown) - 10} more)")
    print()

    result = verify_allocation(function, allocation)
    assert result.ok, result.errors
    print(
        f"checked {result.points_checked} program points: no two "
        "simultaneously-live variables share a register —"
    )
    print("allocation verified against the independent data-flow oracle")


if __name__ == "__main__":
    main()
