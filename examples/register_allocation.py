"""Allocate registers for a function through the compiler-server API.

Run with::

    python examples/register_allocation.py

The whole :mod:`repro.regalloc` pipeline — measure MaxLive, spill down to
a 3-register budget with the furthest-next-use heuristic, color the
chordal SSA interference in dominance order — runs server-side behind one
``AllocateRequest`` dispatched through :class:`repro.CompilerClient`.
Every global liveness fact along the way is an
``is_live_in``/``is_live_out`` query against the paper's checker — no
live sets are ever materialised, and the spill rewrites never invalidate
the checker's CFG precomputation.  The wire-format
:class:`~repro.api.protocol.AllocationSummary` that comes back is rich
enough to rebuild the assignment and verify it against the independent
data-flow oracle.
"""

from repro import CompilerClient, verify_allocation
from repro.api import AllocateRequest, CompileSourceRequest
from repro.regalloc import Allocation

SOURCE = """
func polyeval(x, n) {
    acc = 0;
    c0 = 3;
    c1 = 5;
    c2 = 7;
    i = 0;
    while (i < n) {
        t = x * x;
        acc = acc + c0 + c1 * x + c2 * t;
        i = i + 1;
    }
    return acc;
}
"""


def main() -> None:
    client = CompilerClient()
    (handle,) = client.dispatch(CompileSourceRequest(source=SOURCE)).functions
    function = client.service.function(handle.name)
    print(
        f"compiled {handle}: {len(function.blocks)} blocks, "
        f"{len(function.variables())} SSA variables"
    )

    response = client.dispatch(
        AllocateRequest(function=handle, num_registers=3)
    )
    assert response.ok, response.error
    summary = response.allocation
    print(
        f"MaxLive before spilling: {summary.max_live_before_spill}, "
        f"after: {summary.max_live}, budget: 3"
    )
    if summary.spilled:
        print(
            f"spilled {len(summary.spilled)} value(s): "
            + ", ".join(
                f"{name}->slot{summary.spill_slots[name]}"
                for name in summary.spilled
            )
        )
    print(f"registers used: {summary.registers_used}")
    print(f"function is now at {response.function} (the old handle is stale)")
    print()

    print(f"{'variable':>16}  {'register':>8}")
    shown = sorted(summary.registers.items())
    for name, register in shown[:10]:
        print(f"{name:>16}  r{register:<7}")
    if len(shown) > 10:
        print(f"{'...':>16}  ({len(shown) - 10} more)")
    print()

    # Rebuild the identity-keyed assignment from the wire summary and hand
    # it to the independent verifier — the summary loses nothing.
    by_name = {var.name: var for var in function.variables()}
    allocation = Allocation(
        function=function,
        backend="api",
        register_of={
            by_name[name]: reg
            for name, reg in summary.registers.items()
            if name in by_name
        },
        spill_slot_of={
            by_name[name]: slot
            for name, slot in summary.spill_slots.items()
            if name in by_name
        },
        num_registers=3,
        registers_used=summary.registers_used,
        max_live=summary.max_live,
        max_live_before_spill=summary.max_live_before_spill,
    )
    result = verify_allocation(function, allocation)
    assert result.ok, result.errors
    print(
        f"checked {result.points_checked} program points: no two "
        "simultaneously-live variables share a register —"
    )
    print("allocation verified against the independent data-flow oracle")


if __name__ == "__main__":
    main()
