"""Quickstart: compile a small function and ask liveness questions.

Run with::

    python examples/quickstart.py

Everything goes through the typed front door: a
:class:`repro.CompilerClient` compiles the mini-language source with a
``CompileSourceRequest``, hands back a revisioned function handle, and
answers every ``LivenessQuery`` through the paper's fast checker — while
this script cross-checks each answer against the conventional data-flow
analysis.
"""

from repro import CompilerClient, DataflowLiveness
from repro.api import CompileSourceRequest, LivenessQuery
from repro.ir import print_function

SOURCE = """
func weighted_sum(n, w) {
    total = 0;
    i = 0;
    while (i < n) {
        if (i % 2 == 0) {
            total = total + i * w;
        } else {
            total = total + i;
        }
        i = i + 1;
    }
    return total;
}
"""


def main() -> None:
    client = CompilerClient()
    response = client.dispatch(CompileSourceRequest(source=SOURCE))
    assert response.ok, response.error
    (handle,) = response.functions
    print(f"compiled through the API: handle {handle}")
    function = client.service.function(handle.name)

    print("\nSSA form produced by the front-end:")
    print(print_function(function))
    print()

    checker = client.service.checker(handle.name)
    baseline = DataflowLiveness(function)

    pre = checker.precomputation
    print(
        f"precomputation: {pre.num_blocks()} blocks, {pre.num_edges()} edges, "
        f"{pre.num_back_edges()} back edges, reducible={pre.reducible}"
    )
    print()

    print(f"{'variable':>10} {'block':>10} {'live-in':>8} {'live-out':>9}")
    for var in checker.live_variables():
        for block in function.blocks:
            live_in = client.dispatch(
                LivenessQuery(
                    function=handle, kind="in", variable=var.name, block=block
                )
            ).value
            live_out = client.dispatch(
                LivenessQuery(
                    function=handle, kind="out", variable=var.name, block=block
                )
            ).value
            # The conventional engine must agree on every single query.
            assert live_in == baseline.is_live_in(var, block)
            assert live_out == baseline.is_live_out(var, block)
            if live_in or live_out:
                print(f"{var.name:>10} {block:>10} {str(live_in):>8} {str(live_out):>9}")

    print()
    print("every answer above was cross-checked against the data-flow baseline")


if __name__ == "__main__":
    main()
