"""Quickstart: compile a small function and ask liveness questions.

Run with::

    python examples/quickstart.py

The example compiles a loop through the bundled mini-language front-end,
prints the SSA form, and then answers a handful of live-in / live-out
queries with the paper's fast checker, cross-checking each answer against
the conventional data-flow analysis.
"""

from repro import DataflowLiveness, FastLivenessChecker, compile_source
from repro.ir import print_function

SOURCE = """
func weighted_sum(n, w) {
    total = 0;
    i = 0;
    while (i < n) {
        if (i % 2 == 0) {
            total = total + i * w;
        } else {
            total = total + i;
        }
        i = i + 1;
    }
    return total;
}
"""


def main() -> None:
    module = compile_source(SOURCE)
    function = module.function("weighted_sum")

    print("SSA form produced by the front-end:")
    print(print_function(function))
    print()

    checker = FastLivenessChecker(function)
    checker.prepare()
    baseline = DataflowLiveness(function)

    pre = checker.precomputation
    print(
        f"precomputation: {pre.num_blocks()} blocks, {pre.num_edges()} edges, "
        f"{pre.num_back_edges()} back edges, reducible={pre.reducible}"
    )
    print()

    print(f"{'variable':>10} {'block':>10} {'live-in':>8} {'live-out':>9}")
    for var in checker.live_variables():
        for block in function.blocks:
            live_in = checker.is_live_in(var, block)
            live_out = checker.is_live_out(var, block)
            # The conventional engine must agree on every single query.
            assert live_in == baseline.is_live_in(var, block)
            assert live_out == baseline.is_live_out(var, block)
            if live_in or live_out:
                print(f"{var.name:>10} {block:>10} {str(live_in):>8} {str(live_out):>9}")

    print()
    print("every answer above was cross-checked against the data-flow baseline")


if __name__ == "__main__":
    main()
