"""JIT-style transformation session: which engine survives program edits?

Run with::

    python examples/jit_invalidation.py

The paper's motivation is that conventional liveness information "is easily
invalidated by program transformations" while the checker's precomputation
only depends on the CFG.  This example replays a JIT-like workload — insert
copies / extra uses, then immediately ask liveness questions — through a
:class:`repro.TransformationSession`, which keeps both engines honest by
cross-checking every answer, and prints how many precomputations each
engine needed.
"""

from repro import CompilerClient, TransformationSession, compile_source
from repro.api import CompileSourceRequest, LivenessQuery

SOURCE = """
func hot_loop(n, base) {
    acc = 0;
    i = 0;
    while (i < n) {
        value = base + i;
        if (value > 10) {
            acc = acc + value;
        } else {
            acc = acc + base;
        }
        i = i + 1;
    }
    return acc;
}
"""


def patchable_edit(function):
    """A branch-target addition the incremental patcher always applies.

    ``s -> t`` with ``t`` strictly dominating ``s`` provably preserves
    the dominator tree (and therefore strict SSA); the session only
    needs ``t`` φ-free and ``s`` ending in a plain jump.
    """
    from repro.cfg.dominance import DominatorTree
    from repro.ir.instruction import Opcode

    cfg = function.build_cfg()
    dom = DominatorTree(cfg)
    for source in cfg.nodes():
        if function.block(source).terminator().opcode is not Opcode.JUMP:
            continue
        for target in cfg.nodes():
            if (
                target != cfg.entry
                and target != source
                and dom.dominates(target, source)
                and not cfg.has_edge(source, target)
                and not function.block(target).phis()
            ):
                return source, target
    return None


def main() -> None:
    function = compile_source(SOURCE).function("hot_loop")
    session = TransformationSession(function, track_dataflow=True)

    blocks = list(function.blocks)
    variables = session.checker.live_variables()
    print(f"function has {len(blocks)} blocks and {len(variables)} SSA variables")
    print()

    # A JIT-ish loop: every iteration materialises a new copy (think
    # rematerialisation or spill code) and then queries liveness around it.
    for round_index in range(6):
        target_block = blocks[round_index % len(blocks)]
        source_var = variables[round_index % len(variables)]
        new_var = session.insert_copy(target_block, source_var)
        session.add_use(new_var, target_block)
        for var in variables[:4]:
            for block in blocks:
                session.is_live_in(var, block)

    stats = session.stats
    print("after 6 edit/query rounds:")
    print(f"  instruction-level edits:          {stats.instruction_edits}")
    print(f"  CFG-level edits:                  {stats.cfg_edits}")
    print(f"  liveness queries answered:        {stats.queries}")
    print(f"  checker precomputations:          {stats.checker_precomputations}")
    print(f"  data-flow recomputations:         {stats.dataflow_precomputations}")
    print()

    # Now a CFG edit: split an edge.  This is the one thing that *does*
    # invalidate the checker.
    header = next(block.name for block in function if function.block(block.name).phis())
    pred = function.predecessors(header)[0]
    session.split_edge(pred, header)
    for var in variables[:4]:
        session.is_live_in(var, header)

    print("after additionally splitting a CFG edge:")
    print(f"  CFG-level edits:                  {session.stats.cfg_edits}")
    print(f"  checker precomputations:          {session.stats.checker_precomputations}")
    print(f"  data-flow recomputations:         {session.stats.dataflow_precomputations}")
    print()

    # PR 10 softens even that cliff: a CFG edit the session can *describe*
    # (here: adding a branch target that already dominates its source)
    # travels as a CfgDelta and is patched into the live precomputation —
    # no fresh precompute, only the reachable R/T rows are touched.
    edit = patchable_edit(function)
    if edit is not None:
        before = session.stats.checker_precomputations
        session.add_branch_target(*edit)
        for var in variables[:4]:
            for block in blocks:
                session.is_live_in(var, block)
        print(f"after a *described* CFG edit ({edit[0]} -> {edit[1]}):")
        print(f"  incremental patches applied:      {session.stats.checker_incremental_updates}")
        print(
            f"  checker precomputations:          "
            f"{session.stats.checker_precomputations} (unchanged: {before})"
        )
        print()
    print("every query above was answered identically by both engines.")
    print()

    # The same invalidation contract, *enforced* at the API boundary: a
    # JIT that holds a revisioned handle across an edit gets a structured
    # STALE_HANDLE error instead of a silently-stale liveness fact.
    client = CompilerClient()
    (handle,) = client.dispatch(CompileSourceRequest(source=SOURCE)).functions
    fn = client.service.function(handle.name)
    var = fn.variables()[0]
    block = next(iter(fn.blocks))
    query = LivenessQuery(
        function=handle, kind="in", variable=var.name, block=block
    )
    assert client.dispatch(query).ok
    client.service.notify_instructions_changed(handle.name)  # the JIT edits
    rejected = client.dispatch(query)
    print(
        f"handle {handle} after an edit: {rejected.error.code.value} — "
        "the server refuses to answer from invalidated state"
    )
    fresh = LivenessQuery(
        function=client.handle(handle.name),
        kind="in",
        variable=var.name,
        block=block,
    )
    assert client.dispatch(fresh).ok
    print(f"re-minted {client.handle(handle.name)}: served again")


if __name__ == "__main__":
    main()
