"""Serve liveness queries for a whole module through the compiler server.

Run with::

    python examples/liveness_service.py

A compilation server holds many functions and answers interleaved
liveness questions about all of them.  :class:`repro.CompilerClient` is
the typed front door: source goes in as a ``CompileSourceRequest``, every
function comes back as a revisioned handle, and a mixed multi-function
``BatchLiveness`` stream is answered in one dispatch — by one
:class:`~repro.core.FastLivenessChecker` per function, built on demand
and kept in a bounded LRU cache underneath.
"""

from repro import CompilerClient
from repro.api import BatchLiveness, CompileSourceRequest, LivenessQuery

SOURCE = """
func gcd(a, b) {
    while (b != 0) {
        t = b;
        b = a % b;
        a = t;
    }
    return a;
}

func sum_to(n) {
    s = 0;
    i = 1;
    while (i <= n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}

func clamp(x, lo, hi) {
    if (x < lo) { x = lo; }
    if (x > hi) { x = hi; }
    return x;
}
"""


def main() -> None:
    client = CompilerClient(capacity=2)  # deliberately tight cache
    response = client.dispatch(CompileSourceRequest(source=SOURCE))
    assert response.ok, response.error
    handles = {handle.name: handle for handle in response.functions}
    service = client.service
    print(
        f"serving {len(service)} functions with capacity {service.capacity}: "
        + ", ".join(str(handle) for handle in response.functions)
    )
    print()

    # A mixed multi-function request stream, answered in one dispatch.
    queries = []
    for name, handle in handles.items():
        function = service.function(name)
        for var in function.variables()[:3]:
            for block in list(function.blocks)[:3]:
                queries.append(
                    LivenessQuery(
                        function=handle, kind="in", variable=var.name, block=block
                    )
                )
    batch = client.dispatch(BatchLiveness(queries=tuple(queries)))
    assert batch.ok, batch.error
    live = sum(batch.values)
    print(f"dispatched {len(queries)} queries -> {live} answered live-in=True")
    print(f"resident checkers (LRU order): {service.resident()}")
    print()

    # Edits route per function: an instruction-level edit drops only that
    # function's query plans; its R/T precomputation survives.  Every edit
    # bumps the function's revision, so the old handle is now *stale*.
    gcd_checker = service.checker("gcd")
    pre_before = gcd_checker.precomputation
    service.notify_instructions_changed("gcd")
    assert service.checker("gcd").precomputation is pre_before
    print("instruction edit on 'gcd': precomputation survived (plans dropped)")

    stale = client.dispatch(
        BatchLiveness(queries=(queries[0],))  # still pinned to revision 0
    )
    print(f"old handle after the edit: {stale.error.code.value} ({stale.error.detail})")
    handles["gcd"] = client.handle("gcd")  # re-mint at the new revision
    retry = client.dispatch(
        BatchLiveness(
            queries=(
                LivenessQuery(
                    function=handles["gcd"],
                    kind="in",
                    variable=queries[0].variable,
                    block=queries[0].block,
                ),
            )
        )
    )
    assert retry.ok
    print(f"re-minted handle {handles['gcd']}: answered again")

    service.notify_cfg_changed("gcd")
    assert service.checker("gcd").precomputation is not pre_before
    print("CFG edit on 'gcd': precomputation rebuilt")
    print()

    stats = service.stats
    print("service statistics:")
    print(f"  lookups:   {stats.lookups} (hits {stats.hits}, misses {stats.misses})")
    print(f"  hit rate:  {stats.hit_rate:.0%}")
    print(f"  evictions: {stats.evictions}")
    print(f"  queries:   {stats.queries}")
    print(f"  stale-handle rejections: {stats.stale_handle_rejections}")


if __name__ == "__main__":
    main()
