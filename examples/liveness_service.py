"""Serve liveness queries for a whole module through LivenessService.

Run with::

    python examples/liveness_service.py

A compilation server holds many functions and answers interleaved
liveness questions about all of them.  :class:`repro.LivenessService`
fronts that workload: it builds one
:class:`~repro.core.FastLivenessChecker` per function *on demand*, keeps
the checkers in a bounded LRU cache, routes per-function edit
notifications, and answers multi-function batch requests in one call.
"""

from repro import LivenessRequest, LivenessService, compile_source

SOURCE = """
func gcd(a, b) {
    while (b != 0) {
        t = b;
        b = a % b;
        a = t;
    }
    return a;
}

func sum_to(n) {
    s = 0;
    i = 1;
    while (i <= n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}

func clamp(x, lo, hi) {
    if (x < lo) { x = lo; }
    if (x > hi) { x = hi; }
    return x;
}
"""


def main() -> None:
    module = compile_source(SOURCE)
    service = LivenessService(module, capacity=2)  # deliberately tight
    print(f"serving {len(service)} functions with capacity {service.capacity}")
    print()

    # A mixed multi-function request stream, answered in one submit() call.
    requests = []
    for function in module:
        for var in function.variables()[:3]:
            for block in list(function.blocks)[:3]:
                requests.append(
                    LivenessRequest(
                        function=function.name,
                        kind="in",
                        variable=var,
                        block=block,
                    )
                )
    answers = service.submit(requests)
    live = sum(answers)
    print(f"submitted {len(requests)} requests -> {live} answered live-in=True")
    print(f"resident checkers (LRU order): {service.resident()}")
    print()

    # Edits route per function: an instruction-level edit drops only that
    # function's query plans; its R/T precomputation survives.
    gcd_checker = service.checker("gcd")
    pre_before = gcd_checker.precomputation
    service.notify_instructions_changed("gcd")
    assert service.checker("gcd").precomputation is pre_before
    print("instruction edit on 'gcd': precomputation survived (plans dropped)")

    service.notify_cfg_changed("gcd")
    assert service.checker("gcd").precomputation is not pre_before
    print("CFG edit on 'gcd': precomputation rebuilt")
    print()

    stats = service.stats
    print("service statistics:")
    print(f"  lookups:   {stats.lookups} (hits {stats.hits}, misses {stats.misses})")
    print(f"  hit rate:  {stats.hit_rate:.0%}")
    print(f"  evictions: {stats.evictions}")
    print(f"  queries:   {stats.queries}")


if __name__ == "__main__":
    main()
