"""Walkthrough: out-of-SSA translation driven by liveness queries.

The classic *swap problem* — two φs exchanging their values around a loop —
is the program every out-of-SSA pass must get right: naive copy insertion
loses one of the two values.  This example runs the staged pipeline of
:mod:`repro.ssadestruct` on it and shows each intermediate program:

1. the SSA input (which is *not* in conventional SSA form: the verifier
   pinpoints the interfering φ resources);
2. after φ isolation: every φ talks to fresh resources through
   ``parcopy`` instructions, and the conventional-SSA verifier passes;
3. after coalescing + sequentialisation: φ-free output whose one surviving
   cycle is broken with a temporary — with every interference decision
   made by a pair of fast-checker liveness queries.

The same translation is then repeated through the
:class:`~repro.service.LivenessService` front door, and the interpreter
confirms the observable behaviour never changed.
"""

import copy
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.api import FAST, CompilerClient, DestructRequest  # noqa: E402
from repro.ir import Module, parse_function, print_function  # noqa: E402
from repro.ir.interp import execute  # noqa: E402
from repro.ssadestruct import (  # noqa: E402
    ConventionalSSAError,
    destruct,
    isolate_phis,
    verify_conventional_ssa,
)

SWAP = """
function swap(n) {
entry:
  a0 = const 1
  b0 = const 2
  jump loop
loop:
  a = phi [a0 : entry] [b : loop]
  b = phi [b0 : entry] [a : loop]
  i = phi [n : entry] [i2 : loop]
  i2 = binop.sub i, 1
  c = binop.cmpgt i2, 0
  branch c, loop, exit
exit:
  r = binop.add a, b
  return r
}
"""


def main() -> None:
    function = parse_function(SWAP)
    print("== SSA input ==")
    print(print_function(function))

    trace_before = execute(function, [5])
    print(f"\nreturn value before destruction: {trace_before.return_value}")

    # 1. The input is not conventional: the swap φs interfere.
    try:
        verify_conventional_ssa(copy.deepcopy(function))
    except ConventionalSSAError as error:
        print(f"\nconventional-SSA verifier rejects the input:\n  {error}")

    # 2. Isolation alone establishes conventional SSA.
    isolated = copy.deepcopy(function)
    isolated.split_critical_edges()
    isolate_phis(isolated)
    verify_conventional_ssa(isolated)
    print("\n== after phi isolation (conventional SSA, verifier passes) ==")
    print(print_function(isolated))

    # 3. The full pipeline: coalesce with liveness queries, then lower.
    lowered = copy.deepcopy(function)
    report = destruct(lowered, backend=FAST, verify=True, collect_decisions=True)
    print("\n== after coalescing + sequentialisation (out of SSA) ==")
    print(print_function(lowered))
    print(
        f"\npairs inserted: {report.pairs_inserted}, coalesced: "
        f"{report.pairs_coalesced} ({report.coalesced_fraction:.0%}), "
        f"interference tests: {report.interference_tests}, "
        f"liveness queries: {report.liveness_queries}, "
        f"swap temporaries: {report.temps_inserted}"
    )
    kept = [d for d in report.decisions if not d.merged]
    for decision in kept:
        print(f"  kept copy {decision.dest} <- {decision.source} ({decision.reason})")

    trace_after = execute(lowered, [5])
    assert trace_after.observable() == trace_before.observable()
    print(f"return value after destruction: {trace_after.return_value} (unchanged)")

    # The same thing through the compiler-server front door: one
    # DestructRequest against a revisioned handle.
    module = Module("demo")
    module.add_function(parse_function(SWAP))
    client = CompilerClient(module)
    response = client.dispatch(
        DestructRequest(function=client.handle("swap"), verify=True)
    )
    assert response.ok, response.error
    service = client.service
    print(
        f"\nservice destruction: {service.stats.destructions} function(s) "
        f"translated through the cached checker; 'swap' is now at "
        f"{response.function}"
    )


if __name__ == "__main__":
    main()
