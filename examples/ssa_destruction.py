"""SSA destruction driven by liveness queries — the paper's benchmark client.

Run with::

    python examples/ssa_destruction.py

The script compiles a function with several φs, runs the Sreedhar-style
out-of-SSA translation twice — once with the fast liveness checker and once
with the conventional data-flow analysis — and shows that both engines lead
to exactly the same coalescing decisions while issuing the same number of
queries, then verifies the transformed code still computes the same values.
"""

import copy

from repro import (
    CountingOracle,
    DataflowLiveness,
    FastLivenessChecker,
    compile_source,
    destruct_ssa,
)
from repro.ir import print_function
from repro.ir.interp import execute

SOURCE = """
func polynomial(x, n) {
    even = 0;
    odd = 0;
    i = 0;
    acc = 1;
    while (i < n) {
        acc = acc * x;
        if (i % 2 == 0) {
            even = even + acc;
        } else {
            odd = odd + acc;
        }
        i = i + 1;
    }
    return even * 100 + odd;
}
"""


def run_destruction(oracle_name: str):
    function = compile_source(SOURCE).function("polynomial")
    reference = [execute(function, [2, n]).return_value for n in range(6)]

    factories = {
        "fast checker": lambda fn: CountingOracle(FastLivenessChecker(fn)),
        "data-flow sets": lambda fn: CountingOracle(DataflowLiveness(fn)),
    }
    holder = {}

    def factory(fn):
        oracle = factories[oracle_name](fn)
        holder["oracle"] = oracle
        return oracle

    report = destruct_ssa(function, oracle_factory=factory)
    oracle = holder["oracle"]

    after = [execute(function, [2, n]).return_value for n in range(6)]
    assert after == reference, "destruction changed the program's behaviour!"
    return function, report, oracle


def main() -> None:
    ssa_function = compile_source(SOURCE).function("polynomial")
    print("SSA form before destruction:")
    print(print_function(ssa_function))
    print()

    results = {}
    for oracle_name in ("fast checker", "data-flow sets"):
        function, report, oracle = run_destruction(oracle_name)
        results[oracle_name] = (report, oracle)
        print(f"--- destruction with the {oracle_name} ---")
        print(f"  φs processed:          {report.phis_processed}")
        print(f"  resources coalesced:   {report.resources_coalesced}")
        print(f"  copies inserted:       {report.copies_inserted}")
        print(f"  interference tests:    {report.interference_tests}")
        print(f"  liveness queries:      {oracle.total_queries}")
        print()

    fast_report, _ = results["fast checker"]
    dataflow_report, _ = results["data-flow sets"]
    assert fast_report.copies_inserted == dataflow_report.copies_inserted
    assert fast_report.resources_coalesced == dataflow_report.resources_coalesced
    print("both oracles made identical coalescing decisions.")
    print()

    function, _, _ = run_destruction("fast checker")
    print("non-SSA code after destruction (checker-driven):")
    print(print_function(function))


if __name__ == "__main__":
    main()
