"""SSA destruction driven by liveness queries — the paper's benchmark client.

Run with::

    python examples/ssa_destruction.py

The script compiles a function with several φs and dispatches a
``DestructRequest`` through :class:`repro.CompilerClient` twice — once
with the fast liveness checker and once with the conventional data-flow
engine (both resolved through the engine registry).  Both engines lead to
exactly the same coalescing decisions while issuing the same number of
interference tests, and the interpreter verifies the transformed code
still computes the same values.
"""

from repro import CompilerClient
from repro.api import DATAFLOW, FAST, CompileSourceRequest, DestructRequest
from repro.ir import print_function
from repro.ir.interp import execute

SOURCE = """
func polynomial(x, n) {
    even = 0;
    odd = 0;
    i = 0;
    acc = 1;
    while (i < n) {
        acc = acc * x;
        if (i % 2 == 0) {
            even = even + acc;
        } else {
            odd = odd + acc;
        }
        i = i + 1;
    }
    return even * 100 + odd;
}
"""


def run_destruction(engine: str):
    client = CompilerClient()
    (handle,) = client.dispatch(CompileSourceRequest(source=SOURCE)).functions
    function = client.service.function(handle.name)
    reference = [execute(function, [2, n]).return_value for n in range(6)]

    response = client.dispatch(DestructRequest(function=handle, engine=engine))
    assert response.ok, response.error

    after = [execute(function, [2, n]).return_value for n in range(6)]
    assert after == reference, "destruction changed the program's behaviour!"
    return function, response.stats


def main() -> None:
    preview = CompilerClient()
    (handle,) = preview.dispatch(CompileSourceRequest(source=SOURCE)).functions
    print("SSA form before destruction:")
    print(print_function(preview.service.function(handle.name)))
    print()

    results = {}
    for engine in (FAST, DATAFLOW):
        function, stats = run_destruction(engine)
        results[engine] = stats
        print(f"--- destruction with the {engine!r} engine ---")
        print(f"  φs isolated:           {stats.phis_isolated}")
        print(f"  pairs coalesced:       {stats.pairs_coalesced}/{stats.pairs_inserted}")
        print(f"  copies emitted:        {stats.copies_emitted}")
        print(f"  interference tests:    {stats.interference_tests}")
        print(f"  liveness queries:      {stats.liveness_queries}")
        print()

    fast_stats = results[FAST]
    dataflow_stats = results[DATAFLOW]
    assert fast_stats.pairs_coalesced == dataflow_stats.pairs_coalesced
    assert fast_stats.copies_emitted == dataflow_stats.copies_emitted
    assert fast_stats.interference_tests == dataflow_stats.interference_tests
    print("both oracles made identical coalescing decisions.")
    print()

    function, _ = run_destruction(FAST)
    print("non-SSA code after destruction (checker-driven):")
    print(print_function(function))


if __name__ == "__main__":
    main()
