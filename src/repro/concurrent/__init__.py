"""repro.concurrent — sharded, thread-safe serving on top of the protocol.

PR 4 built the versioned request/response protocol and revisioned
function handles; this package makes them safe to drive from many
threads at once:

* :mod:`repro.concurrent.locks` — the writer-preferring
  :class:`RWLock` every shard is guarded by;
* :mod:`repro.concurrent.sharded` — :class:`ShardedService`, which
  partitions a module's functions across N shards (stable hash of the
  function name), each shard owning its own LRU checker cache behind its
  own reader/writer lock;
* :mod:`repro.concurrent.client` — :class:`ShardedClient`, the
  thread-safe ``dispatch``/``dispatch_json`` façade with the
  linearization ``observer`` hook the differential concurrency harness
  records through;
* :mod:`repro.concurrent.server` — :func:`serve_loop` and
  :class:`WireServer`, the wire-level work queue + worker pool;
* :mod:`repro.concurrent.procs` — :class:`ProcClient`, the multi-process
  scale-out: the same crc32 shard partition, but each shard is a worker
  *process* behind a pipe, so CPU-bound serving is no longer pinned
  under one GIL.

``bench/table_concurrency.py`` measures this layer; the differential
harness in ``tests/support/concurrency.py`` proves that every concurrent
run — thread-sharded or process-sharded — is bit-identical to its serial
replay.
"""

from repro.concurrent.client import ShardedClient
from repro.concurrent.locks import LockMetrics, RWLock
from repro.concurrent.procs import DEFAULT_WORKERS, ProcClient, is_worker_failure
from repro.concurrent.server import WireServer, serve_loop
from repro.concurrent.sharded import DEFAULT_SHARDS, ShardedService, shard_of

__all__ = [
    "DEFAULT_SHARDS",
    "DEFAULT_WORKERS",
    "LockMetrics",
    "ProcClient",
    "RWLock",
    "ShardedClient",
    "ShardedService",
    "WireServer",
    "is_worker_failure",
    "serve_loop",
    "shard_of",
]
