"""Multi-process scale-out of the sharded server: shards become processes.

The GIL makes the thread pool in :mod:`repro.concurrent.server` a
robustness feature, not a throughput one — ``BENCH_concurrency.json``
records wire req/s flat across 1/2/4/8 threads.  This module promotes
the PR-5 shard architecture to worker *processes*:

* each shard is a **worker process** running one serial
  :class:`~repro.service.LivenessService` +
  :class:`~repro.api.client.CompilerClient` behind its own
  :class:`~repro.api.codec.BytesServerSession` — a full single-process
  server, reached over a :func:`multiprocessing.Pipe`;
* the parent runs a **coordinator** (:class:`ProcClient`) that routes by
  the same crc32 :func:`~repro.concurrent.sharded.shard_of` partition,
  splits cross-worker ``BatchLiveness`` requests, and merges the answers
  back in request order, so there is still exactly one linearization
  point per request;
* the wire path **relays frames verbatim**: the coordinator mirrors the
  outer connection's string table (its own
  :class:`~repro.api.codec.BytesServerSession` ingests every frame), and
  single-function frames (``RELAY_OPCODES``) are forwarded byte-for-byte
  to the owning worker, whose session applies the very same definitions.
  Only when a worker has not seen the leading ref's definition (it
  arrived on a frame routed elsewhere) is the frame rebuilt with an
  explicit defs block — the body bytes are never touched.

Linearizability story (what the differential harness checks):

* typed requests hold the owning worker link's mutex for the whole
  send-await-observe window; cross-worker batches take the involved
  mutexes in index order — exactly the PR-5 shard-lock structure, so the
  :class:`TraceRecorder` observer records a valid linearization;
* :meth:`ProcClient.serve` (the wire loop) is a single-caller path:
  per-link FIFO plus in-list-order sends make list order itself a valid
  linearization.

Crash semantics (never a hang):

* a worker that dies mid-flight has every queued request answered with a
  structured ``INTERNAL`` error whose detail carries a recognizable
  marker (:func:`is_worker_failure`), in the caller's own framing;
* with ``auto_restart`` the link respawns the process, re-registers the
  worker's functions from printed IR, and replays the link's **confirmed
  mutation log** (notify/destruct/allocate whose responses proved they
  reached the worker), so the restarted state is exactly the state a
  serial replay of the successfully-answered requests produces.  Evicts
  are never logged: cache geometry is unobservable by contract.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import struct
import threading
from contextlib import ExitStack
from typing import Callable, Iterable, Sequence

from repro.api.client import (
    CompilerClient,
    dispatch_json_via,
    failure_response,
    guarded_dispatch,
)
from repro.api.codec import (
    RELAY_OPCODES,
    BytesServerSession,
    decode_request_bin2,
    decode_response_bin2,
    encode_request_bin2,
    encode_response_bin2,
    frame_defs,
    reframe_with_defs,
    relay_route,
)
from repro.api.errors import ApiError, ErrorCode, ProtocolError
from repro.api.handles import FunctionHandle
from repro.api.protocol import (
    AllocateRequest,
    BatchLiveness,
    BatchLivenessResponse,
    CompileSourceRequest,
    CompileSourceResponse,
    DestructRequest,
    ErrorResponse,
    EvictRequest,
    LivenessQuery,
    LiveSetRequest,
    NotifyRequest,
    Request,
    Response,
    StatsRequest,
    StatsResponse,
    dumps_compact,
    encode_response,
)
from repro.concurrent.sharded import shard_of
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.parser import parse_function
from repro.ir.printer import print_function
from repro.obs import Observability
from repro.obs.metrics import metric_key
from repro.persist.policy import is_replayable, is_worker_failure
from repro.service.service import DEFAULT_CAPACITY, STAT_FIELDS, LivenessService

__all__ = [
    "DEFAULT_WORKERS",
    "ProcClient",
    "is_worker_failure",
]

#: Default worker-process count (mirrors the thread pool's default).
DEFAULT_WORKERS = 4

#: Frames buffered per link before :meth:`ProcClient.serve` flushes a
#: bundle — large enough to amortize one pipe write over many frames,
#: small enough to keep every worker busy while the stream is walked.
_SERVE_CHUNK = 256

_logger = logging.getLogger("repro.obs")

#: The JSON envelope types eligible for verbatim relay (the same
#: single-function requests as :data:`RELAY_OPCODES`).
_RELAY_JSON_TYPES = frozenset(("liveness_query", "live_set", "evict"))

# ----------------------------------------------------------------------
# Pipe message protocol (parent <-> worker)
# ----------------------------------------------------------------------
# Two message kinds ride ``Connection.send_bytes`` (which preserves
# message boundaries): a FRAMES bundle of wire frames the worker answers
# through its ``BytesServerSession`` one-for-one in order, and a CONTROL
# message (JSON header + raw payload tail) for everything else —
# registration, typed dispatch, stats, health, drain.  The worker
# processes messages strictly FIFO and replies FIFO, which is the
# invariant every ordering argument above leans on.
_MSG_FRAMES = 1
_MSG_CONTROL = 2
_U32 = struct.Struct("<I")


def _pack_frames(frames: Sequence[bytes]) -> bytes:
    out = bytearray((_MSG_FRAMES,))
    out += _U32.pack(len(frames))
    for frame in frames:
        out += _U32.pack(len(frame))
        out += frame
    return bytes(out)


def _unpack_frames(msg: bytes) -> list[bytes]:
    count = _U32.unpack_from(msg, 1)[0]
    frames = []
    pos = 5
    for _ in range(count):
        length = _U32.unpack_from(msg, pos)[0]
        pos += 4
        frames.append(bytes(msg[pos : pos + length]))
        pos += length
    return frames


def _pack_control(header: dict, payload: bytes = b"") -> bytes:
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return bytes(bytearray((_MSG_CONTROL,)) + _U32.pack(len(raw)) + raw + payload)


def _unpack_control(msg: bytes) -> tuple[dict, bytes]:
    length = _U32.unpack_from(msg, 1)[0]
    header = json.loads(msg[5 : 5 + length])
    return header, bytes(msg[5 + length :])


# ----------------------------------------------------------------------
# Failure markers
# ----------------------------------------------------------------------
def _crash_detail(index: int) -> str:
    return (
        f"worker {index} crashed; the request was answered with a "
        f"structured INTERNAL error"
    )


def _timeout_detail(index: int, timeout: float) -> str:
    return f"worker {index} did not answer within {timeout:g}s"


# ``is_worker_failure`` — whether an error marks a request lost to a
# worker crash/hang — is re-exported from :mod:`repro.persist.policy`,
# where it lives next to the rest of the replay policy: the differential
# harness, the WAL appender and this module's restart log must all make
# the same call, so there is exactly one definition.


# ----------------------------------------------------------------------
# Worker process main
# ----------------------------------------------------------------------
def _worker_main(conn, index: int, capacity: int, strategy: str) -> None:
    """One shard as a process: a full single-process server on a pipe.

    Top-level (not a closure) so the ``spawn`` start method can import
    it; state is built here, after the fork/spawn, so nothing mutable is
    shared with the parent.
    """
    obs = Observability()
    service = LivenessService(capacity=capacity, strategy=strategy, obs=obs)
    client = CompilerClient(service=service, obs=obs)
    session = BytesServerSession(
        client.dispatch, obs=obs, fast_query=client.fast_liveness
    )
    served = 0
    while True:
        try:
            msg = conn.recv_bytes()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if not msg:
            continue
        kind = msg[0]
        if kind == _MSG_FRAMES:
            frames = _unpack_frames(msg)
            replies = [session.dispatch_frame(frame) for frame in frames]
            served += len(frames)
            try:
                conn.send_bytes(_pack_frames(replies))
            except (BrokenPipeError, OSError):
                break
            continue
        if kind != _MSG_CONTROL:
            continue
        header, payload = _unpack_control(msg)
        op = header.get("op")
        if op == "crash":
            # Test-injected hard death: no reply, no cleanup — exactly
            # what a segfault looks like from the parent's side.
            os._exit(1)
        if op == "drain":
            try:
                conn.send_bytes(_pack_control({"ok": True, "served": served}))
            except (BrokenPipeError, OSError):
                pass
            break
        try:
            reply, reply_payload = _worker_control(
                op, header, payload, service, client, session, obs, served
            )
        except Exception as exc:  # noqa: BLE001 — the worker must not die silently
            reply, reply_payload = (
                {"ok": False, "error": f"{type(exc).__name__}: {exc}"},
                b"",
            )
        served += 1
        try:
            conn.send_bytes(_pack_control(reply, reply_payload))
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass


def _worker_control(
    op, header, payload, service, client, session, obs, served
) -> tuple[dict, bytes]:
    if op == "dispatch":
        # Typed lane: the frame is self-contained (throwaway interner),
        # decoded against an isolated table so it can never collide with
        # the session table the relayed outer frames feed.
        request = decode_request_bin2(payload)
        response = client.dispatch(request)
        error_index = None
        if (
            header.get("error_index")
            and isinstance(request, BatchLiveness)
            and response.error is not None
        ):
            # Which position failed first?  Batch errors are
            # position-independent (they depend only on the query and
            # the function's state), so probing the queries one by one
            # finds the same first failure the batch hit.
            for position, query in enumerate(request.queries):
                if client.dispatch(query).error is not None:
                    error_index = position
                    break
        return (
            {"ok": True, "error_index": error_index},
            encode_response_bin2(response),
        )
    if op == "register":
        for text in header.get("sources", ()):
            service.register(parse_function(text))
        return {"ok": True}, b""
    if op == "export":
        # Snapshot surface: ``(name, revision, printed source)`` triples
        # in this worker's registration order (see
        # :meth:`LivenessService.export_functions`).
        return {"ok": True, "functions": service.export_functions()}, b""
    if op == "import":
        # Restore surface: reinstate exported triples, revisions intact.
        for name, revision, source in header.get("functions", ()):
            service.import_function(name, int(revision), source)
        return {"ok": True}, b""
    if op == "stats":
        snapshot = obs.snapshot()
        stats = service.stats.as_dict()
        if header.get("reset"):
            service.stats.reset()
            obs.metrics.reset()
        return {"ok": True, "snapshot": snapshot, "stats": stats}, b""
    if op == "reset":
        # The outer client re-helloed: forget the session table so the
        # fresh interner's refs can never collide with the old life.
        session.reset()
        return {"ok": True}, b""
    if op == "ping":
        return {"ok": True, "pid": os.getpid(), "served": served}, b""
    return {"ok": False, "error": f"unknown control op {op!r}"}, b""


# ----------------------------------------------------------------------
# Parent side: per-link plumbing
# ----------------------------------------------------------------------
_CRASHED = object()  # reply sentinel: the link died before answering


class _Reply:
    """One awaited pipe reply: a one-shot latch plus a resolution stamp."""

    __slots__ = ("_latch", "value", "resolved_at")

    def __init__(self) -> None:
        self._latch = threading.Lock()
        self._latch.acquire()
        self.value = None
        self.resolved_at = 0.0

    def resolve(self, value, at: float) -> None:
        self.value = value
        self.resolved_at = at
        self._latch.release()

    def result(self, timeout: float | None = None):
        if not self._latch.acquire(timeout=-1 if timeout is None else timeout):
            raise TimeoutError("worker reply did not arrive in time")
        self._latch.release()
        return self.value


class _Link:
    """The parent's handle on one worker process."""

    __slots__ = (
        "index",
        "conn",
        "proc",
        "reader",
        "io_lock",
        "mutex",
        "pendings",
        "known",
        "baseline",
        "log",
        "alive",
        "inflight",
        "crashes",
        "restarts",
    )

    def __init__(self, index: int, obs: Observability) -> None:
        self.index = index
        self.conn = None
        self.proc = None
        self.reader = None
        #: Guards conn/pendings state transitions (short critical sections).
        self.io_lock = threading.Lock()
        #: The linearization mutex: typed dispatch holds it send-to-observe.
        self.mutex = threading.Lock()
        #: FIFO of unanswered sends (frames bundles and controls alike).
        self.pendings: list[_Reply] = []
        #: Outer-table idents this worker's session has definitions for.
        self.known: set[int] = set()
        #: ``(name, revision, printed IR)`` of every function on this
        #: worker, in its registration order — the restart recipe's
        #: first half.  Compaction folds the confirmed-mutation log into
        #: it (re-exporting the worker's state), so the recipe stays
        #: bounded no matter how long the deployment runs.
        self.baseline: list[tuple[str, int, str]] = []
        #: Confirmed mutating requests since the baseline, FIFO — the
        #: recipe's second half (the tail replayed on restart).
        self.log: list[Request] = []
        #: Set while the link accepts traffic; cleared on crash/drain.
        self.alive = threading.Event()
        self.inflight = obs.gauge("proc.inflight", worker=index)
        self.crashes = obs.counter("proc.crashes", worker=index)
        self.restarts = obs.counter("proc.restarts", worker=index)


class _CoordinatorSession(BytesServerSession):
    """The parent's outer-connection session.

    Identical to a single-process server session (same ingest, same
    typed/hello/error paths, same metrics) — the coordinator only adds
    the relay branch on top, reading the mirrored string table through
    the public :attr:`string_table` property.
    """


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
class ProcClient:
    """Multi-process drop-in for :class:`~repro.concurrent.ShardedClient`.

    Same protocol, same structured errors, same never-raise boundary —
    but every shard is a worker process, so CPU-bound serving scales with
    cores instead of saturating one GIL.  Construction spawns the
    workers; :meth:`close` (or the context manager) drains them.

    ``capacity`` is the whole deployment's checker budget, split
    per-worker with the same ceiling division :class:`ShardedService`
    uses per shard — a serial replay against ``ShardedClient(shards=N,
    capacity=C)`` therefore sees bit-identical cache behavior.
    """

    def __init__(
        self,
        module: Module | Iterable[Function] | None = None,
        workers: int = DEFAULT_WORKERS,
        capacity: int = DEFAULT_CAPACITY,
        strategy: str = "exact",
        observer: Callable[[Request, Response], None] | None = None,
        obs: Observability | None = None,
        auto_restart: bool = True,
        timeout: float = 60.0,
        start_method: str | None = None,
        compact_after: int = 64,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if compact_after < 1:
            raise ValueError(
                f"compact_after must be at least 1, got {compact_after}"
            )
        self.obs = obs if obs is not None else Observability()
        self._workers_n = workers
        self._per_worker = max(1, -(-capacity // workers))  # ceil division
        self._strategy = strategy
        self._observer = observer
        self._observed = threading.local()
        self._auto_restart = auto_restart
        self._timeout = timeout
        self._compact_after = compact_after
        self._closing = False
        self._closed = False
        self._close_lock = threading.Lock()
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        #: Guards the global registration order (acquired before mutexes).
        self._registry_lock = threading.Lock()
        self._names: dict[str, int] = {}
        self._order: list[str] = []
        self._dispatch_seconds = self.obs.histogram("dispatch.seconds")
        self._links = [_Link(index, self.obs) for index in range(workers)]
        for link in self._links:
            self._spawn(link)
            link.alive.set()
        #: The outer connection: ingests every frame (mirroring the
        #: client's string table) and answers the typed/JSON/hello/error
        #: paths itself through :meth:`dispatch`.
        self._session = _CoordinatorSession(self.dispatch, obs=self.obs)
        self._request_seconds = self.obs.histogram("wire.request_seconds")
        if module is not None:
            self._register_functions(list(module))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, link: _Link) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, link.index, self._per_worker, self._strategy),
            daemon=True,
            name=f"repro-proc-worker-{link.index}",
        )
        proc.start()
        child_conn.close()
        with link.io_lock:
            link.conn = parent_conn
            link.proc = proc
        reader = threading.Thread(
            target=self._read_loop,
            args=(link, parent_conn),
            daemon=True,
            name=f"repro-proc-reader-{link.index}",
        )
        link.reader = reader
        reader.start()

    def close(self, timeout: float = 5.0) -> None:
        """Drain every worker; terminate any that outlive the deadline.

        Idempotent: the first call does the drain-and-join work; any
        later call returns immediately (no second drain, no second
        deadline wait) — double-shutdown paths in servers and test
        teardowns must be cheap no-ops, never a second 5-second stall.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._closing = True
        for link in self._links:
            link.alive.clear()
            try:
                with link.io_lock:
                    if link.conn is not None:
                        link.pendings.append(_Reply())
                        link.conn.send_bytes(_pack_control({"op": "drain"}))
            except (BrokenPipeError, OSError):
                pass
        deadline = self.obs.clock() + timeout
        for link in self._links:
            proc = link.proc
            if proc is None:
                continue
            proc.join(max(0.0, deadline - self.obs.clock()))
            if proc.is_alive():
                _logger.warning(
                    "worker %d did not drain within %.3fs; terminating",
                    link.index,
                    timeout,
                )
                proc.terminate()
                proc.join(1.0)
                if proc.is_alive():
                    proc.kill()
            with link.io_lock:
                if link.conn is not None:
                    try:
                        link.conn.close()
                    except OSError:
                        pass

    def __enter__(self) -> "ProcClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Link I/O
    # ------------------------------------------------------------------
    def _read_loop(self, link: _Link, conn) -> None:
        clock = self.obs.clock
        while True:
            try:
                msg = conn.recv_bytes()
            except (EOFError, OSError, ValueError, TypeError):
                # EOF/OSError: the worker died or drained.  ValueError/
                # TypeError: close() closed the Connection out from under
                # a blocked recv (its handle becomes None mid-read).
                break
            with link.io_lock:
                pending = link.pendings.pop(0) if link.pendings else None
            if pending is not None:
                link.inflight.dec()
                pending.resolve(msg, clock())
        self._on_link_down(link, conn)

    def _on_link_down(self, link: _Link, conn) -> None:
        with link.io_lock:
            if link.conn is not conn:
                return  # a stale reader of an already-replaced connection
            link.alive.clear()
            drained = list(link.pendings)
            link.pendings.clear()
        now = self.obs.clock()
        for pending in drained:
            link.inflight.dec()
            pending.resolve(_CRASHED, now)
        if self._closing:
            return
        link.crashes.add(1)
        _logger.warning(
            "worker %d crashed; %d in-flight request(s) answered with "
            "structured INTERNAL errors%s",
            link.index,
            len(drained),
            "; restarting" if self._auto_restart else "",
        )
        if self._auto_restart:
            self._restart(link)

    def _restart(self, link: _Link) -> None:
        """Respawn a dead worker and rebuild its state deterministically.

        The baseline — printed IR plus revisions, as compaction last
        exported it — is imported first, then the confirmed-mutation
        tail lands FIFO: the resulting state is the one a serial replay
        of this worker's successfully-answered requests produces (cache
        geometry aside, which is unobservable).
        """
        try:
            self._spawn(link)
        except Exception:  # noqa: BLE001 — a failed respawn leaves the link dead
            _logger.exception("worker %d respawn failed", link.index)
            return
        try:
            if link.baseline:
                self._post(
                    link,
                    _pack_control(
                        {
                            "op": "import",
                            "functions": [list(t) for t in link.baseline],
                        }
                    ),
                    force=True,
                )
            for request in list(link.log):
                self._post(
                    link,
                    _pack_control({"op": "dispatch"}, encode_request_bin2(request)),
                    force=True,
                )
        except (BrokenPipeError, OSError):
            # Died again already; the new reader will run this path again.
            return
        link.known.clear()  # the fresh session table has no definitions
        link.restarts.add(1)
        link.alive.set()

    def _post(self, link: _Link, msg: bytes, force: bool = False) -> _Reply:
        """Queue one message on a link; raises ``OSError`` when it is down."""
        with link.io_lock:
            if link.conn is None or (not force and not link.alive.is_set()):
                raise BrokenPipeError(f"worker {link.index} is down")
            pending = _Reply()
            link.pendings.append(pending)
            try:
                link.conn.send_bytes(msg)
            except (BrokenPipeError, OSError):
                if link.pendings and link.pendings[-1] is pending:
                    link.pendings.pop()
                raise
        link.inflight.inc()
        return pending

    def _send_ready(self, link: _Link, msg: bytes) -> _Reply:
        """`_post` that waits out an in-progress restart; raises shaped errors."""
        if not link.alive.wait(timeout=self._timeout):
            raise ProtocolError(ErrorCode.INTERNAL, _crash_detail(link.index))
        try:
            return self._post(link, msg)
        except (BrokenPipeError, OSError):
            raise ProtocolError(
                ErrorCode.INTERNAL, _crash_detail(link.index)
            ) from None

    def _await_control(self, link: _Link, pending: _Reply) -> tuple[dict, bytes]:
        try:
            raw = pending.result(self._timeout)
        except TimeoutError:
            raise ProtocolError(
                ErrorCode.INTERNAL, _timeout_detail(link.index, self._timeout)
            ) from None
        if raw is _CRASHED:
            raise ProtocolError(ErrorCode.INTERNAL, _crash_detail(link.index))
        header, payload = _unpack_control(raw)
        if not header.get("ok"):
            raise ProtocolError(
                ErrorCode.INTERNAL,
                f"worker {link.index} failed: {header.get('error')}",
            )
        return header, payload

    def _roundtrip(
        self, link: _Link, request: Request, want_error_index: bool = False
    ) -> tuple[Response, int | None]:
        msg = _pack_control(
            {"op": "dispatch", "error_index": want_error_index},
            encode_request_bin2(request),
        )
        pending = self._send_ready(link, msg)
        header, payload = self._await_control(link, pending)
        return decode_response_bin2(payload), header.get("error_index")

    # ------------------------------------------------------------------
    # Introspection / conveniences
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return self._workers_n

    def functions(self) -> list[str]:
        """Registered names in registration order."""
        with self._registry_lock:
            return list(self._order)

    def ping(self, index: int) -> dict:
        """Health-check one worker: ``{"pid": ..., "served": ...}``.

        Raises :class:`ProtocolError` when the worker is down/hung.
        """
        link = self._links[index]
        with link.mutex:
            pending = self._send_ready(link, _pack_control({"op": "ping"}))
            header, _payload = self._await_control(link, pending)
        return {"pid": header.get("pid"), "served": header.get("served")}

    def inject_crash(self, index: int) -> None:
        """Test hook: hard-kill worker ``index`` at its next message.

        Fire-and-forget (a crash never answers), so no pending is queued
        — the reader detects the EOF and runs the normal crash path.
        """
        link = self._links[index]
        try:
            with link.io_lock:
                if link.conn is not None:
                    link.conn.send_bytes(_pack_control({"op": "crash"}))
        except (BrokenPipeError, OSError):
            pass

    def worker_of(self, name: str) -> int:
        """The worker index owning function ``name`` (crc32 routing)."""
        return shard_of(name, self._workers_n)

    # ------------------------------------------------------------------
    # Snapshot export / import (the persist layer's surface)
    # ------------------------------------------------------------------
    def export_state(self, pin=None):
        """A consistent cut of the fleet's observable state.

        Holds the registry lock and *every* link mutex (in index order),
        so no mutation is in flight anywhere; ``pin``, if given, is
        called while they are held (the durability layer passes
        ``lambda: wal.last_seq``).  Returns ``(functions, precomps,
        pinned)`` like :meth:`ShardedService.export_state`, except
        ``precomps`` is always empty — worker checker caches live across
        a pipe and are rebuilt on demand, not serialized.

        Raises :class:`ProtocolError` if a worker is down or hung — a
        snapshot of half a fleet would be a lie.
        """
        with self._registry_lock:
            with ExitStack() as stack:
                for link in self._links:
                    stack.enter_context(link.mutex)
                pinned = pin() if pin is not None else 0
                posted = []
                for link in self._links:
                    posted.append(
                        (
                            link,
                            self._send_ready(
                                link, _pack_control({"op": "export"})
                            ),
                        )
                    )
                by_name: dict[str, tuple[str, int, str]] = {}
                for link, pending in posted:
                    header, _payload = self._await_control(link, pending)
                    for name, revision, source in header.get("functions") or ():
                        by_name[name] = (name, int(revision), source)
                functions = [by_name[name] for name in self._order]
                return functions, [], pinned

    def import_state(self, functions) -> None:
        """Reinstate exported ``(name, revision, source)`` triples.

        The restore-path mirror of :meth:`_register_functions`: same
        atomicity (a worker failure force-restarts every worker that
        already acknowledged, rolling the batch back), but revisions
        land exactly as exported and the triples join each link's
        restart baseline directly.
        """
        triples = [
            (name, int(revision), source)
            for name, revision, source in functions
        ]
        names = [name for name, _revision, _source in triples]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate function name in snapshot: {names!r}")
        with self._registry_lock:
            per_worker: dict[int, list[tuple[str, int, str]]] = {}
            for triple in triples:
                per_worker.setdefault(
                    shard_of(triple[0], self._workers_n), []
                ).append(triple)
            involved = sorted(per_worker)
            with ExitStack() as stack:
                for index in involved:
                    stack.enter_context(self._links[index].mutex)
                for name in names:
                    if name in self._names:
                        raise ValueError(f"duplicate function name {name!r}")
                acked: list[_Link] = []
                try:
                    posted = []
                    for index in involved:
                        link = self._links[index]
                        msg = _pack_control(
                            {
                                "op": "import",
                                "functions": [
                                    list(t) for t in per_worker[index]
                                ],
                            }
                        )
                        posted.append((link, self._send_ready(link, msg)))
                    for link, pending in posted:
                        self._await_control(link, pending)
                        acked.append(link)
                except ProtocolError:
                    for link in acked:
                        self._force_restart(link)
                    raise
                for index in involved:
                    self._links[index].baseline.extend(per_worker[index])
                for name, _revision, _source in triples:
                    self._names[name] = shard_of(name, self._workers_n)
                    self._order.append(name)

    def topology(self) -> dict:
        """Serving geometry for snapshot headers: shards/capacity/strategy.

        Workers play the role shards play in-process; ``capacity`` is
        the whole fleet's budget (per-worker share times workers, the
        same stable-fixpoint sum :class:`ShardedService` reports).
        """
        return {
            "shards": self._workers_n,
            "capacity": self._per_worker * self._workers_n,
            "strategy": self._strategy,
        }

    def compile(
        self, source: str, module_name: str = "module"
    ) -> tuple[FunctionHandle, ...]:
        """Compile and register ``source``; raise on failure."""
        response = self.dispatch(
            CompileSourceRequest(source=source, module_name=module_name)
        )
        if response.error is not None:
            raise ProtocolError(response.error.code, response.error.detail)
        assert response.functions is not None
        return response.functions

    # ------------------------------------------------------------------
    # Typed dispatch (the ShardedClient-compatible front door)
    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> Response:
        """Answer one protocol request; thread-safe, never raises."""
        clock = self.obs.clock
        start = clock()
        self._observed.seen = False
        with self.obs.span("dispatch", request=type(request).__name__):
            response = guarded_dispatch(request, self._dispatch, self._failure)
        if not getattr(self._observed, "seen", True):
            self._notify(request, response)
        self._dispatch_seconds.observe(clock() - start)
        return response

    def dispatch_json(self, payload) -> dict:
        """Wire driver: JSON envelope in, JSON envelope out, thread-safe."""
        return dispatch_json_via(self.dispatch, payload, obs=self.obs)

    _failure = staticmethod(failure_response)

    def _notify(self, request: Request, response: Response) -> None:
        self._observed.seen = True
        if self._observer is not None:
            self._observer(request, response)

    def _link_for(self, name: str) -> _Link:
        return self._links[shard_of(name, self._workers_n)]

    def _dispatch(self, request: Request) -> Response:
        if isinstance(request, (LivenessQuery, LiveSetRequest, EvictRequest)):
            link = self._link_for(request.function.name)
            with link.mutex:
                response, _index = self._roundtrip(link, request)
                self._notify(request, response)
                return response
        if isinstance(
            request, (DestructRequest, AllocateRequest, NotifyRequest)
        ):
            link = self._link_for(request.function.name)
            with link.mutex:
                response, _index = self._roundtrip(link, request)
                if is_replayable(request, response):
                    link.log.append(request)
                    if len(link.log) >= self._compact_after:
                        self._compact_link(link)
                self._notify(request, response)
                return response
        if isinstance(request, BatchLiveness):
            return self._batch(request)
        if isinstance(request, CompileSourceRequest):
            return self._compile_source(request)
        if isinstance(request, StatsRequest):
            return self._stats(request)
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"unsupported request type {type(request).__name__}",
        )

    def _compact_link(self, link: _Link) -> None:
        """Fold the confirmed-mutation log into the baseline (mutex held).

        Re-exports the worker's state — printed IR plus revisions, which
        already embodies every logged mutation — and clears the log, so
        the restart recipe stays O(functions) instead of growing without
        bound with mutation traffic.  On any failure the old recipe is
        kept untouched: a restart then simply replays the longer tail,
        which is correct, just slower.
        """
        try:
            pending = self._post(link, _pack_control({"op": "export"}))
            header, _payload = self._await_control(link, pending)
        except (ProtocolError, BrokenPipeError, OSError):
            return
        functions = header.get("functions")
        if functions is None:
            return
        link.baseline = [
            (name, int(revision), source)
            for name, revision, source in functions
        ]
        link.log.clear()

    # ------------------------------------------------------------------
    # Cross-worker requests
    # ------------------------------------------------------------------
    def _batch(self, request: BatchLiveness) -> BatchLivenessResponse:
        queries = request.queries
        if not queries:
            return BatchLivenessResponse(values=())
        groups: dict[int, list[int]] = {}
        for position, query in enumerate(queries):
            groups.setdefault(
                shard_of(query.function.name, self._workers_n), []
            ).append(position)
        involved = sorted(groups)
        with ExitStack() as stack:
            for index in involved:
                stack.enter_context(self._links[index].mutex)
            # Fan out first (all workers chew their sub-batches in
            # parallel), then collect; per-link FIFO keeps this one
            # linearization point despite the concurrency underneath.
            posted = []
            for index in involved:
                link = self._links[index]
                sub = BatchLiveness(
                    queries=tuple(queries[pos] for pos in groups[index])
                )
                msg = _pack_control(
                    {"op": "dispatch", "error_index": True},
                    encode_request_bin2(sub),
                )
                posted.append((link, self._send_ready(link, msg)))
            answers: dict[int, tuple[Response, int | None]] = {}
            for link, pending in posted:
                header, payload = self._await_control(link, pending)
                answers[link.index] = (
                    decode_response_bin2(payload),
                    header.get("error_index"),
                )
            failing = [
                index
                for index in involved
                if answers[index][0].error is not None
            ]
            if failing:
                # The batch's error is the error of the globally-first
                # failing query, exactly as in the serial client (batch
                # errors are position-independent, so the winning
                # worker's sub-batch error *is* that query's error).
                def first_global(index: int) -> int:
                    sub_response, error_index = answers[index]
                    within = error_index if error_index is not None else 0
                    return groups[index][within]

                winner = min(failing, key=first_global)
                response = BatchLivenessResponse(
                    error=answers[winner][0].error
                )
                self._notify(request, response)
                return response
            values: list[bool] = [False] * len(queries)
            for index in involved:
                sub_response, _ = answers[index]
                assert sub_response.values is not None
                for pos, value in zip(groups[index], sub_response.values):
                    values[pos] = value
            response = BatchLivenessResponse(values=tuple(values))
            self._notify(request, response)
            return response

    def _register_functions(
        self,
        functions: Sequence[Function],
        on_registered: Callable[[list[FunctionHandle]], None] | None = None,
    ) -> list[FunctionHandle]:
        """Register functions atomically across workers (all or nothing).

        Mirrors :meth:`ShardedService.register_all` — same duplicate
        checks, same error messages, handles minted at revision 0 — so a
        serial replay against a ``ShardedClient`` sees identical
        responses.  If a worker dies mid-registration, every worker that
        already acknowledged is force-restarted (its rebuild recipe does
        not include the new functions), rolling the whole batch back.
        """
        names = [function.name for function in functions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate function name in batch: {names!r}")
        with self._registry_lock:
            per_worker: dict[int, list[tuple[str, str]]] = {}
            for function in functions:
                per_worker.setdefault(
                    shard_of(function.name, self._workers_n), []
                ).append((function.name, print_function(function)))
            involved = sorted(per_worker)
            with ExitStack() as stack:
                for index in involved:
                    stack.enter_context(self._links[index].mutex)
                for function in functions:
                    if function.name in self._names:
                        raise ValueError(
                            f"duplicate function name {function.name!r}"
                        )
                acked: list[_Link] = []
                try:
                    posted = []
                    for index in involved:
                        link = self._links[index]
                        msg = _pack_control(
                            {
                                "op": "register",
                                "sources": [
                                    source
                                    for _name, source in per_worker[index]
                                ],
                            }
                        )
                        posted.append((link, self._send_ready(link, msg)))
                    for link, pending in posted:
                        self._await_control(link, pending)
                        acked.append(link)
                except ProtocolError:
                    for link in acked:
                        self._force_restart(link)
                    raise
                for index in involved:
                    self._links[index].baseline.extend(
                        (name, 0, source)
                        for name, source in per_worker[index]
                    )
                for function in functions:
                    self._names[function.name] = shard_of(
                        function.name, self._workers_n
                    )
                    self._order.append(function.name)
                handles = [
                    FunctionHandle(name=function.name, revision=0)
                    for function in functions
                ]
                if on_registered is not None:
                    on_registered(handles)
                return handles

    def _force_restart(self, link: _Link) -> None:
        """Kill a worker so the crash path rebuilds it from its recipe."""
        link.alive.clear()
        proc = link.proc
        if proc is not None and proc.is_alive():
            proc.terminate()

    def _compile_source(
        self, request: CompileSourceRequest
    ) -> CompileSourceResponse:
        from repro.frontend.compile import compile_source

        try:
            module = compile_source(request.source, name=request.module_name)
        except ValueError as exc:
            raise ProtocolError(ErrorCode.COMPILE_ERROR, str(exc)) from None
        holder: list[CompileSourceResponse] = []

        def observe_registered(handles: list[FunctionHandle]) -> None:
            response = CompileSourceResponse(functions=tuple(handles))
            holder.append(response)
            self._notify(request, response)

        try:
            self._register_functions(
                list(module), on_registered=observe_registered
            )
        except ValueError as exc:
            raise ProtocolError(ErrorCode.DUPLICATE_FUNCTION, str(exc)) from None
        return holder[0]

    def _stats(self, request: StatsRequest) -> StatsResponse:
        """Aggregated introspection: every worker's metrics, relabelled.

        Worker snapshot keys gain a ``worker=i`` label (so one scrape
        shows per-worker wire/queue/cache series side by side); the
        ``stats`` roll-up sums the per-worker service counters exactly
        like :meth:`ShardedService.stats` sums shards.  Lock-free with
        respect to the mutexes — stats must never stall serving — and
        excluded from differential traffic for the same reason.
        """
        posted = []
        for link in self._links:
            try:
                posted.append(
                    (
                        link,
                        self._post(
                            link,
                            _pack_control(
                                {"op": "stats", "reset": bool(request.reset)}
                            ),
                        ),
                    )
                )
            except (BrokenPipeError, OSError):
                continue  # a dead worker contributes nothing to the scrape
        merged = self.obs.snapshot()
        totals = {name: 0 for name in STAT_FIELDS}
        for link, pending in posted:
            try:
                header, _payload = self._await_control(link, pending)
            except ProtocolError:
                continue
            snapshot = header.get("snapshot") or {}
            for section in ("counters", "gauges", "histograms"):
                target = merged.setdefault(section, {})
                for key, value in (snapshot.get(section) or {}).items():
                    target[_relabel(key, worker=link.index)] = value
            for name, value in (header.get("stats") or {}).items():
                if name in totals:
                    totals[name] += int(value)
        for section in ("counters", "gauges", "histograms"):
            merged[section] = dict(sorted(merged[section].items()))
        lookups = totals["hits"] + totals["misses"]
        stats = dict(totals)
        stats["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
        if request.reset:
            self.obs.metrics.reset()
        return StatsResponse(snapshot=merged, stats=stats)

    # ------------------------------------------------------------------
    # The wire loop (single-caller serving path)
    # ------------------------------------------------------------------
    def serve(self, payloads: Sequence[bytes], timeout: float | None = None):
        """Answer a stream of wire frames through the worker fleet.

        Single-caller by contract (like one connection's socket reader):
        frames are walked in order, relayable ones are bundled per owning
        worker and pipelined, everything else (typed ops, hello, errors,
        unroutable frames) is answered at its stream position after the
        outstanding relay buffers are flushed.  Responses come back
        aligned with their requests — list order is the linearization.
        """
        if timeout is None:
            timeout = self._timeout
        clock = self.obs.clock
        deadline = clock() + timeout
        payloads = list(payloads)
        results: list = [None] * len(payloads)
        session = self._session
        table = session.string_table
        observe = self._request_seconds.observe
        # Per-link buffers: (slots, frames, binary flags, ingest times).
        buffers: dict[int, tuple[list, list, list, list]] = {}
        bundles: list = []

        def flush(index: int) -> None:
            buffer = buffers.pop(index, None)
            if buffer is None or not buffer[1]:
                return
            slots, frames, flags, starts = buffer
            link = self._links[index]
            try:
                pending = self._send_ready(link, _pack_frames(frames))
            except ProtocolError as exc:
                now = clock()
                for slot, flag, start in zip(slots, flags, starts):
                    results[slot] = _failure_bytes(exc.error, flag)
                    observe(now - start)
                return
            bundles.append((link, pending, slots, flags, starts))

        def flush_all() -> None:
            for index in sorted(buffers):
                flush(index)

        def buffer_frame(
            index: int, slot: int, frame: bytes, binary: bool, start: float
        ) -> None:
            buffer = buffers.get(index)
            if buffer is None:
                buffer = buffers[index] = ([], [], [], [])
            buffer[0].append(slot)
            buffer[1].append(frame)
            buffer[2].append(binary)
            buffer[3].append(start)
            if len(buffer[1]) >= _SERVE_CHUNK:
                flush(index)

        for slot, data in enumerate(payloads):
            start = clock()
            token = session.ingest(data)
            if token.error is not None:
                results[slot] = session.complete(token)
                observe(clock() - start)
                continue
            if token.binary:
                if token.opcode in RELAY_OPCODES:
                    self._relay_bin2(token, slot, start, buffer_frame, results)
                    if results[slot] is not None:
                        observe(clock() - start)
                    continue
                # Typed binary op (batch/mutation/compile/stats/unknown):
                # a stream-order barrier — flush, then answer in place
                # through the session's own generic path.
                flush_all()
                results[slot] = session.complete(token)
                observe(clock() - start)
                continue
            self._serve_json(
                token, slot, start, flush_all, buffer_frame, results, observe
            )
        flush_all()
        self._collect(bundles, results, deadline, observe)
        return results

    def _relay_bin2(
        self, token, slot: int, start: float, buffer_frame, results
    ) -> None:
        """Route one single-function frame; forward verbatim when possible."""
        session = self._session
        data = token.data
        body_pos = token.body_pos
        try:
            ident, name = relay_route(data, body_pos, session.string_table)
        except ProtocolError as exc:
            # Exactly the error the worker-side decoder would produce
            # (unroutable means undecodable: same lookup, same message).
            results[slot] = _failure_bytes(exc.error, True)
            return
        index = shard_of(name, self._workers_n)
        link = self._links[index]
        if data[7] != 0:
            # Defs-carrying frame: forward verbatim (the worker applies
            # the same definitions the parent just ingested) and record
            # what this worker now knows.
            link.known.update(ident for ident, _text in frame_defs(data))
        if ident not in link.known:
            # The ref was defined by a frame routed to another worker:
            # rebuild with an explicit defs block, body bytes untouched.
            defs = [(ident, name)] + frame_defs(data)
            data = reframe_with_defs(token.opcode, defs, data, body_pos)
            link.known.add(ident)
        buffer_frame(index, slot, data, True, start)

    def _serve_json(
        self, token, slot, start, flush_all, buffer_frame, results, observe
    ) -> None:
        session = self._session
        try:
            parsed = json.loads(token.data)
        except (ValueError, UnicodeDecodeError):
            parsed = None
        if isinstance(parsed, dict):
            if parsed.get("type") == "hello":
                # A hello restarts the logical connection everywhere:
                # barrier, reset every worker session table, forget the
                # known-ident sets, then let the session reset the
                # parent mirror and answer the negotiation itself.
                flush_all()
                for link in self._links:
                    link.known.clear()
                    try:
                        self._post(link, _pack_control({"op": "reset"}))
                    except (BrokenPipeError, OSError):
                        pass  # a restarted worker is already reset
                results[slot] = session.complete(token)
                observe(self.obs.clock() - start)
                return
            if parsed.get("type") in _RELAY_JSON_TYPES:
                name = None
                body = parsed.get("body")
                if isinstance(body, dict):
                    function = body.get("function")
                    if isinstance(function, dict) and isinstance(
                        function.get("name"), str
                    ):
                        name = function["name"]
                if name is not None:
                    # JSON frames carry no connection state: forward the
                    # original bytes, the worker parses and answers.
                    index = shard_of(name, self._workers_n)
                    buffer_frame(index, slot, token.data, False, start)
                    return
                # Malformed body: fall through — the typed path produces
                # the exact decode-error envelope a single process would.
        flush_all()
        results[slot] = session.complete(token)
        observe(self.obs.clock() - start)

    def _collect(self, bundles, results, deadline: float, observe) -> None:
        clock = self.obs.clock
        for link, pending, slots, flags, starts in bundles:
            try:
                raw = pending.result(max(0.0, deadline - clock()))
            except TimeoutError:
                error = ApiError(
                    ErrorCode.INTERNAL,
                    _timeout_detail(link.index, self._timeout),
                )
                now = clock()
                for slot, flag, start in zip(slots, flags, starts):
                    results[slot] = _failure_bytes(error, flag)
                    observe(now - start)
                continue
            if raw is _CRASHED:
                error = ApiError(ErrorCode.INTERNAL, _crash_detail(link.index))
                for slot, flag, start in zip(slots, flags, starts):
                    results[slot] = _failure_bytes(error, flag)
                    observe(pending.resolved_at - start)
                continue
            replies = _unpack_frames(raw)
            if len(replies) != len(slots):
                error = ApiError(
                    ErrorCode.INTERNAL,
                    f"worker {link.index} answered {len(replies)} of "
                    f"{len(slots)} frames",
                )
                for slot, flag, start in zip(slots, flags, starts):
                    results[slot] = _failure_bytes(error, flag)
                    observe(pending.resolved_at - start)
                continue
            resolved_at = pending.resolved_at
            for slot, reply, start in zip(slots, replies, starts):
                results[slot] = reply
                observe(resolved_at - start)

    def __repr__(self) -> str:
        return (
            f"ProcClient(workers={self._workers_n}, "
            f"functions={len(self._names)})"
        )


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _failure_bytes(error: ApiError, binary: bool) -> bytes:
    """A structured error answer in the caller's own framing."""
    response = ErrorResponse(error=error)
    if binary:
        return encode_response_bin2(response)
    return dumps_compact(encode_response(response)).encode("utf-8")


def _relabel(key: str, **extra) -> str:
    """Insert labels into a canonical ``name{k=v,...}`` metric key."""
    name, brace, inner = key.partition("{")
    labels: dict[str, object] = {}
    if brace:
        for pair in inner[:-1].split(","):
            label, _eq, value = pair.partition("=")
            labels[label] = value
    labels.update(extra)
    return metric_key(name, labels)
