"""A sharded, thread-safe front door over :class:`~repro.service.LivenessService`.

One serial :class:`LivenessService` owns every function and every cached
checker; two clients editing and querying through it concurrently can
corrupt the LRU cache or read a half-invalidated checker.
:class:`ShardedService` makes concurrency a structural property instead:

* the module's functions are **partitioned across N shards** by a stable
  hash of the function name (``zlib.crc32``, so the partition does not
  depend on ``PYTHONHASHSEED``);
* each shard owns its *own* :class:`LivenessService` — its own function
  table, revision table, LRU checker cache and stats — behind a per-shard
  :class:`~repro.concurrent.locks.RWLock`;
* **queries** take the owning shard's read lock (many readers run
  together; the only shared mutations on that path — LRU touches, stats,
  lazily compiled query plans — are made safe below);
* **mutations** (edit notifications, out-of-SSA translation, register)
  take the shard's write lock and bump the function's revision while
  exclusive, so the revisioned :class:`~repro.api.handles.FunctionHandle`
  protocol is the synchronization currency: a reader that validated its
  handle under the read lock cannot observe a half-applied edit;
* **cross-shard batches** (:meth:`submit`) acquire every involved shard's
  read lock in shard-index order, answer the split sub-streams, and
  reassemble the answers in request order — the whole batch is one
  linearization point.

Why queries may share a shard
-----------------------------
A query's hot path *does* write: the checker-cache LRU order, the stats
counters, and the lazily compiled per-variable query plans.  Each is made
safe for concurrent readers a different way:

* checker lookup/build/eviction is serialized by a small per-shard mutex
  (:class:`_ShardService`), held only around the cache operation — never
  while answering;
* stats counters are :class:`~repro.utils.AtomicCounter` fields;
* plan/batch-mask compilation is a benign race: plans are immutable,
  derived from state frozen under the read lock, and published with a
  single (GIL-atomic) dict store — two readers may compile the same plan
  twice, but both results are identical and either may win.

Lock order (must hold everywhere, see DESIGN.md):
``registry lock → shard locks in increasing shard index → per-shard cache
mutex``.  No code path acquires a shard lock while holding a
higher-indexed shard's lock or any cache mutex.
"""

from __future__ import annotations

import threading
import zlib
from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from repro.api.handles import FunctionHandle
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.printer import print_function
from repro.ir.value import Variable
from repro.obs import Observability
from repro.service.service import (
    DEFAULT_CAPACITY,
    LivenessRequest,
    LivenessService,
    ServiceStats,
)

#: Default shard count; small enough that per-shard LRU caches stay
#: useful, large enough that independent functions rarely contend.
DEFAULT_SHARDS = 4


def shard_of(name: str, shards: int) -> int:
    """The shard index owning function ``name``.

    Uses ``crc32`` rather than ``hash()`` so the partition is stable
    across processes and ``PYTHONHASHSEED`` values — the differential
    harness replays a concurrent run in a fresh service and the routing
    must be identical.
    """
    return zlib.crc32(name.encode("utf-8")) % shards


class _ShardService(LivenessService):
    """One shard's service: a ``LivenessService`` safe for shared readers.

    The base class is written for one thread.  Under the sharded layer,
    *mutating* entry points only run under the shard's write lock, but
    queries run under the shared read lock — and a query still touches
    the LRU checker cache.  This subclass serializes exactly those cache
    operations behind a private mutex; everything else on the query path
    is already safe (atomic stats, immutable plans, benign rebuild races).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._cache_mutex = threading.Lock()

    def checker(self, name: str):
        # Lock-free hit path: ``dict.get`` and ``move_to_end`` are single
        # C calls (atomic under the GIL), so the only cross-call hazard is
        # another reader evicting ``name`` between them — in which case
        # the checker we already hold stays perfectly valid and only the
        # LRU touch is skipped.  Misses (build + insert + evict, a
        # multi-step sequence) serialize on the mutex; it re-checks the
        # cache, so two racing misses build once.
        cached = self._checkers.get(name)
        if cached is not None:
            try:
                self._checkers.move_to_end(name)
            except KeyError:
                pass
            self.stats.hits += 1
            return cached
        with self._cache_mutex:
            return super().checker(name)

    def evict(self, name: str) -> bool:
        with self._cache_mutex:
            return super().evict(name)

    def clear(self) -> None:
        with self._cache_mutex:
            super().clear()

    def resident(self) -> list[str]:
        # The base class iterates the OrderedDict directly; under shared
        # readers another thread's miss can insert mid-iteration.  The
        # mutex makes the listing a consistent point-in-time snapshot.
        with self._cache_mutex:
            return super().resident()

    def export_precomputations(self) -> list[tuple[str, object]]:
        # Same iteration hazard as resident(): snapshot under the mutex.
        with self._cache_mutex:
            return super().export_precomputations()

    def install_checker(self, name: str, checker) -> None:
        with self._cache_mutex:
            super().install_checker(name, checker)


class _Shard:
    """One shard: its lock plus its service."""

    __slots__ = ("index", "lock", "service")

    def __init__(
        self,
        index: int,
        capacity: int,
        strategy: str,
        obs: Observability,
        engine: str | None = None,
    ) -> None:
        from repro.concurrent.locks import LockMetrics, RWLock

        self.index = index
        self.lock = RWLock(metrics=LockMetrics(obs, shard=index))
        self.service = _ShardService(
            capacity=capacity,
            strategy=strategy,
            obs=obs,
            obs_labels={"shard": index},
            engine=engine,
        )


class ShardedService:
    """Thread-safe multi-function liveness serving, partitioned by name.

    Drop-in for :class:`~repro.service.LivenessService` where it matters
    (``register``/``submit``/``notify_*``/``destruct``/handles/stats),
    with the concurrency contract described in the module docstring.

    Parameters
    ----------
    module:
        Functions to serve (a :class:`Module` or iterable); more can be
        registered later.
    shards:
        Number of shards (≥ 1).
    capacity:
        Total resident-checker budget, divided evenly across shards
        (each shard gets at least 1).
    strategy:
        ``TargetSets`` strategy handed to every checker.
    obs:
        One :class:`repro.obs.Observability` shared by every shard's
        service and lock (metrics labelled ``shard=i``); a private
        instance is created when omitted.
    """

    def __init__(
        self,
        module: Module | Iterable[Function] | None = None,
        shards: int = DEFAULT_SHARDS,
        capacity: int = DEFAULT_CAPACITY,
        strategy: str = "exact",
        obs: Observability | None = None,
        engine: str | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.obs = obs if obs is not None else Observability()
        self._strategy = strategy
        per_shard = max(1, -(-capacity // shards))  # ceil division
        self._shards = tuple(
            _Shard(index, per_shard, strategy, self.obs, engine)
            for index in range(shards)
        )
        #: Guards the global registration-order list (and multi-function
        #: registration as a whole).  Acquired *before* any shard lock.
        self._registry_lock = threading.Lock()
        self._order: list[str] = []
        #: name → shard index, memoized at registration time so the hot
        #: submit path does one dict probe instead of a crc32 per request.
        #: Written only under the registry lock; read lock-free (a dict
        #: store is atomic under the GIL, and entries are never changed).
        self._shard_index: dict[str, int] = {}
        if module is not None:
            for function in module:
                self.register(function)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self._shards)

    @property
    def capacity(self) -> int:
        """Total resident-checker budget (sum of shard capacities)."""
        return sum(shard.service.capacity for shard in self._shards)

    @property
    def strategy(self) -> str:
        """``TargetSets`` strategy handed to every shard's checkers."""
        return self._strategy

    def shard_of(self, name: str) -> int:
        """The shard index owning function ``name``."""
        index = self._shard_index.get(name)
        if index is None:
            index = shard_of(name, len(self._shards))
        return index

    def service_for(self, name: str) -> LivenessService:
        """The (unlocked) shard service owning ``name`` — callers must
        hold the shard's lock (see :meth:`read_locked`/:meth:`write_locked`)."""
        return self._shards[self.shard_of(name)].service

    def query_shard(self, name: str):
        """Lock-free routing for the lean query lane.

        Returns ``(index, lock, service)`` for a *registered* ``name``,
        ``None`` otherwise — the caller acquires the read lock itself,
        skipping the ``read_locked`` span/contextmanager overhead.  Only
        the ``_shard_index`` dict is probed (atomic under the GIL), so
        this never blocks behind a writer.
        """
        index = self._shard_index.get(name)
        if index is None:
            return None
        shard = self._shards[index]
        return index, shard.lock, shard.service

    def shard_services(self) -> tuple[LivenessService, ...]:
        """Every shard's service, by shard index (for per-shard clients)."""
        return tuple(shard.service for shard in self._shards)

    # ------------------------------------------------------------------
    # Lock helpers (the client layer builds on these)
    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self, names: Iterable[str]) -> Iterator[None]:
        """Hold the read lock of every shard owning one of ``names``.

        Locks are acquired in increasing shard index (the global lock
        order) and released in reverse, so any set of functions can be
        read atomically without deadlock.
        """
        indices = sorted({self.shard_of(name) for name in names})
        acquired = []
        try:
            with self.obs.span("shard_lock", mode="read"):
                for index in indices:
                    self._shards[index].lock.acquire_read()
                    acquired.append(index)
            yield
        finally:
            for index in reversed(acquired):
                self._shards[index].lock.release_read()

    @contextmanager
    def write_locked(self, names: Iterable[str]) -> Iterator[None]:
        """Hold the write lock of every shard owning one of ``names``."""
        indices = sorted({self.shard_of(name) for name in names})
        acquired = []
        try:
            with self.obs.span("shard_lock", mode="write"):
                for index in indices:
                    self._shards[index].lock.acquire_write()
                    acquired.append(index)
            yield
        finally:
            for index in reversed(acquired):
                self._shards[index].lock.release_write()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, function: Function) -> Function:
        """Make ``function`` servable (thread-safe; names must be unique)."""
        self.register_all([function])
        return function

    def register_all(
        self, functions: Sequence[Function], on_registered=None
    ) -> list[FunctionHandle]:
        """Register several functions atomically (all or nothing).

        Duplicate names — against the service *or* within the batch —
        fail before anything is registered, mirroring the serial
        compile-and-register path.  Returns the freshly minted handles;
        ``on_registered``, if given, is called with them *while the locks
        are still held* — the linearization hook the trace-recording
        client needs (a concurrent query must not be able to slip between
        the registration and its observation).
        """
        names = [function.name for function in functions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate function name in batch: {names!r}")
        with self._registry_lock:
            with self.write_locked(names):
                for function in functions:
                    if function.name in self.service_for(function.name):
                        raise ValueError(
                            f"duplicate function name {function.name!r}"
                        )
                handles = []
                for function in functions:
                    service = self.service_for(function.name)
                    service.register(function)
                    self._order.append(function.name)
                    self._shard_index[function.name] = self.shard_of(
                        function.name
                    )
                    handles.append(service.handle(function.name))
                if on_registered is not None:
                    on_registered(handles)
                return handles

    def functions(self) -> list[str]:
        """Names of every registered function, in registration order."""
        with self._registry_lock:
            return list(self._order)

    def function(self, name: str) -> Function:
        """The registered function object (``KeyError`` when unknown)."""
        with self.read_locked([name]):
            return self.service_for(name).function(name)

    def __contains__(self, name: str) -> bool:
        with self.read_locked([name]):
            return name in self.service_for(name)

    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._order)

    # ------------------------------------------------------------------
    # Revisions and handles
    # ------------------------------------------------------------------
    def revision(self, name: str) -> int:
        """The function's current edit revision."""
        with self.read_locked([name]):
            return self.service_for(name).revision(name)

    def handle(self, name: str) -> FunctionHandle:
        """Mint a handle pinned to the current revision."""
        with self.read_locked([name]):
            return self.service_for(name).handle(name)

    def check_handle(self, handle: FunctionHandle) -> Function:
        """Resolve a handle, rejecting unknown names and stale revisions."""
        with self.read_locked([handle.name]):
            return self.service_for(handle.name).check_handle(handle)

    # ------------------------------------------------------------------
    # Cache geometry
    # ------------------------------------------------------------------
    def resident(self) -> list[str]:
        """Every function with a live checker, grouped by shard."""
        names: list[str] = []
        for shard in self._shards:
            with shard.lock.read():
                names.extend(shard.service.resident())
        return names

    def evict(self, name: str) -> bool:
        """Drop one function's checker (revisions/handles stay valid)."""
        with self.write_locked([name]):
            return self.service_for(name).evict(name)

    def clear(self) -> None:
        """Drop every resident checker on every shard."""
        for shard in self._shards:
            with shard.lock.write():
                shard.service.clear()

    # ------------------------------------------------------------------
    # Snapshot export / import (the persist layer's surface)
    # ------------------------------------------------------------------
    def export_state(self, pin=None):
        """A consistent cut of the whole service's observable state.

        Acquires the registry lock, then *every* shard's read lock in
        index order — with all of them held no mutation is in flight
        anywhere, so the cut is a linearization point.  ``pin``, if
        given, is called **while the locks are held**; the durability
        layer passes ``lambda: wal.last_seq`` so the snapshot and the
        WAL position agree exactly (appends happen under shard write
        locks, which are all excluded here).

        Returns ``(functions, precomps, pinned)``: the
        ``(name, revision, printed source)`` triples in registration
        order, the ``(name, precomputation)`` pairs of every warm
        checker (shard order, LRU within a shard), and ``pin``'s value
        (0 when absent).
        """
        with self._registry_lock:
            acquired: list[_Shard] = []
            try:
                with self.obs.span("shard_lock", mode="read"):
                    for shard in self._shards:
                        shard.lock.acquire_read()
                        acquired.append(shard)
                pinned = pin() if pin is not None else 0
                functions = []
                for name in self._order:
                    service = self.service_for(name)
                    functions.append(
                        (
                            name,
                            service.revision(name),
                            print_function(service.function(name)),
                        )
                    )
                precomps: list[tuple[str, object]] = []
                for shard in self._shards:
                    precomps.extend(shard.service.export_precomputations())
                return functions, precomps, pinned
            finally:
                for shard in reversed(acquired):
                    shard.lock.release_read()

    def import_state(self, functions) -> None:
        """Reinstate exported ``(name, revision, source)`` triples.

        The restore-path mirror of :meth:`register_all`: all-or-nothing
        validation, global registration order preserved, but revisions
        land exactly as exported instead of starting at 0.
        """
        triples = list(functions)
        names = [name for name, _revision, _source in triples]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate function name in snapshot: {names!r}")
        with self._registry_lock:
            acquired: list[_Shard] = []
            try:
                with self.obs.span("shard_lock", mode="write"):
                    for shard in self._shards:
                        shard.lock.acquire_write()
                        acquired.append(shard)
                for name in names:
                    if name in self.service_for(name):
                        raise ValueError(f"duplicate function name {name!r}")
                for name, revision, source in triples:
                    self.service_for(name).import_function(
                        name, revision, source
                    )
                    self._order.append(name)
                    self._shard_index[name] = self.shard_of(name)
            finally:
                for shard in reversed(acquired):
                    shard.lock.release_write()

    def install_checker(self, name: str, checker) -> None:
        """Install a pre-built checker on the owning shard (restore path)."""
        with self.write_locked([name]):
            self.service_for(name).install_checker(name, checker)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_live_in(self, function: str, var: Variable, block: str) -> bool:
        """Live-in query under the owning shard's read lock."""
        with self.read_locked([function]):
            return self.service_for(function).is_live_in(function, var, block)

    def is_live_out(self, function: str, var: Variable, block: str) -> bool:
        """Live-out query under the owning shard's read lock."""
        with self.read_locked([function]):
            return self.service_for(function).is_live_out(function, var, block)

    def submit(
        self, requests: Sequence[LivenessRequest | tuple[str, str, Variable, str]]
    ) -> list[bool]:
        """Answer a mixed multi-function stream, in request order.

        Every involved shard's read lock is acquired up front (in shard
        index order) and held for the duration — the whole batch is one
        linearization point — then the stream is answered *in order*
        against the owning shards' checkers, with per-function checker
        lookups amortized over runs exactly like the serial service.
        This path is the single-thread no-regression budget the
        concurrency bench guards, so it stays allocation-lean: one
        routing pass that only collects the involved shard set, then one
        answering pass.
        """
        from repro.api.protocol import QueryKind

        shard_index = self._shard_index
        num_shards = len(self._shards)
        shards = self._shards
        # Pass 1: the involved-shard set (shard lookups amortized over
        # runs of the same function name, the common stream shape).
        involved: set[int] = set()
        last_name: str | None = None
        for request in requests:
            name = (
                request.function
                if isinstance(request, LivenessRequest)
                else request[0]
            )
            if name != last_name:
                index = shard_index.get(name)
                if index is None:  # unregistered: routed, then fails loudly
                    index = shard_of(name, num_shards)
                involved.add(index)
                last_name = name
        # Pass 2: answer in request order under the read locks.
        answers: list[bool] = []
        acquired: list[int] = []
        live_in = QueryKind.LIVE_IN
        live_out = QueryKind.LIVE_OUT
        try:
            with self.obs.span("shard_lock", mode="read"):
                for index in sorted(involved):
                    shards[index].lock.acquire_read()
                    acquired.append(index)
            current_name: str | None = None
            batch = None
            stats = None
            for request in requests:
                if not isinstance(request, LivenessRequest):
                    request = LivenessRequest(*request)
                name = request.function
                if name != current_name:
                    index = shard_index.get(name)
                    if index is None:
                        index = shard_of(name, num_shards)
                    service = shards[index].service
                    batch = service.checker(name).batch
                    stats = service.stats
                    current_name = name
                assert batch is not None and stats is not None
                stats.queries += 1
                kind = request.kind
                if kind == live_in:
                    answers.append(batch.is_live_in(request.variable, request.block))
                elif kind == live_out:
                    answers.append(batch.is_live_out(request.variable, request.block))
                else:
                    raise ValueError(f"unknown query kind {kind!r}")
        finally:
            for index in reversed(acquired):
                shards[index].lock.release_read()
        return answers

    # ------------------------------------------------------------------
    # Edit notifications and mutating passes (write-locked)
    # ------------------------------------------------------------------
    def notify_cfg_changed(self, function: str, delta=None) -> None:
        """CFG edit: exclusive on the owning shard, bumps the revision.

        ``delta`` (a :class:`~repro.core.incremental.CfgDelta`, when the
        caller can describe the edit) is forwarded so the owning shard's
        service can patch the precomputation instead of dropping it.
        """
        with self.write_locked([function]):
            self.service_for(function).notify_cfg_changed(function, delta)

    def notify_instructions_changed(self, function: str) -> None:
        """Instruction edit: exclusive on the owning shard."""
        with self.write_locked([function]):
            self.service_for(function).notify_instructions_changed(function)

    def notify_variable_changed(self, function: str, var: Variable) -> None:
        """Single-variable edit: exclusive on the owning shard."""
        with self.write_locked([function]):
            self.service_for(function).notify_variable_changed(function, var)

    def destruct(self, function: str, **kwargs):
        """Out-of-SSA translation, exclusive on the owning shard."""
        with self.write_locked([function]):
            return self.service_for(function).destruct(function, **kwargs)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServiceStats:
        """A snapshot summing every shard's counters."""
        return ServiceStats.aggregate(
            shard.service.stats for shard in self._shards
        )

    def shard_stats(self) -> list[ServiceStats]:
        """Per-shard stats objects (live, not snapshots), by shard index."""
        return [shard.service.stats for shard in self._shards]

    def __repr__(self) -> str:
        return (
            f"ShardedService(functions={len(self)}, shards={self.num_shards}, "
            f"capacity={self.capacity})"
        )
