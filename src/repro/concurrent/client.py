"""The thread-safe protocol front door: ``dispatch`` over a sharded service.

:class:`ShardedClient` speaks exactly the protocol of
:class:`~repro.api.client.CompilerClient` — same request/response types,
same structured errors, same never-raise boundary — but may be called
from any number of threads at once.  Internally it runs one serial
``CompilerClient`` per shard (each wrapping that shard's
:class:`~repro.service.LivenessService`) and brackets every request with
the owning shard's lock:

===========================  =======================================
request type                 locking
===========================  =======================================
``LivenessQuery``            read lock of the owning shard
``LiveSetRequest``           read lock of the owning shard
``BatchLiveness``            read locks of *every* involved shard,
                             acquired in shard-index order and held for
                             the whole batch (one linearization point)
``DestructRequest``          write lock of the owning shard
``AllocateRequest``          write lock of the owning shard
``CompileSourceRequest``     registry lock + write locks of the shards
                             receiving the new functions
===========================  =======================================

Every dispatch is thereby **linearizable**: it takes effect atomically at
a single point in time (while its locks are held).  The optional
``observer`` callback is invoked exactly once per dispatch with
``(request, response)`` — for lock-protected requests *while the locks
are still held*, which is what lets the differential concurrency harness
record a total order whose serial replay must produce bit-identical
responses.  Responses that depend on no mutable state (malformed
requests, compile errors, duplicate-name rejections — duplicates are
monotone: once taken, a name is never freed) are observed after the
guard instead; they commute with every other operation.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from repro.api.client import (
    CompilerClient,
    dispatch_json_via,
    failure_response,
    guarded_dispatch,
)
from repro.api.errors import ErrorCode, ProtocolError
from repro.api.handles import FunctionHandle
from repro.api.protocol import (
    AllocateRequest,
    BatchLiveness,
    BatchLivenessResponse,
    CompileSourceRequest,
    CompileSourceResponse,
    DestructRequest,
    EvictRequest,
    LivenessQuery,
    LiveSetRequest,
    NotifyRequest,
    Request,
    Response,
    StatsRequest,
    StatsResponse,
)
from repro.concurrent.sharded import DEFAULT_SHARDS, ShardedService
from repro.ir.function import Function
from repro.ir.module import Module
from repro.obs import Observability
from repro.service.service import DEFAULT_CAPACITY

#: Signature of the linearization hook (see module docstring).
Observer = Callable[[Request, Response], None]


class ShardedClient:
    """Concurrent drop-in for :class:`~repro.api.client.CompilerClient`."""

    def __init__(
        self,
        module: Module | Iterable[Function] | None = None,
        shards: int = DEFAULT_SHARDS,
        capacity: int = DEFAULT_CAPACITY,
        strategy: str = "exact",
        observer: Observer | None = None,
        obs: Observability | None = None,
    ) -> None:
        # Observability is on by default (tracing included): the PR-5
        # differential harness runs against this default, which is what
        # proves recording never changes a response.
        self.obs = obs if obs is not None else Observability()
        self._sharded = ShardedService(
            shards=shards, capacity=capacity, strategy=strategy, obs=self.obs
        )
        # Per-shard clients share the stack's Observability but do not
        # time dispatch themselves — this front door does, so each
        # request lands in dispatch.seconds exactly once.
        self._clients = tuple(
            CompilerClient(service=service, obs=self.obs, record_dispatch=False)
            for service in self._sharded.shard_services()
        )
        self._dispatch_seconds = self.obs.histogram("dispatch.seconds")
        self._observer = observer
        self._observed = threading.local()
        #: Lazily-created session backing :meth:`dispatch_bytes`.
        self._default_bytes_session = None
        if module is not None:
            self._sharded.register_all(list(module))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def service(self) -> ShardedService:
        """The underlying sharded service (stats, topology, locks)."""
        return self._sharded

    def handle(self, name: str) -> FunctionHandle:
        """A fresh handle for ``name`` at its current revision."""
        return self._sharded.handle(name)

    # ------------------------------------------------------------------
    # Snapshot export / import (delegated to the sharded service)
    # ------------------------------------------------------------------
    def export_state(self, pin=None):
        """A consistent state cut — see :meth:`ShardedService.export_state`."""
        return self._sharded.export_state(pin=pin)

    def import_state(self, functions) -> None:
        """Reinstate exported ``(name, revision, source)`` triples."""
        self._sharded.import_state(functions)

    def install_checker(self, name: str, checker) -> None:
        """Install a pre-built checker (snapshot-restore path)."""
        self._sharded.install_checker(name, checker)

    def topology(self) -> dict:
        """Serving geometry for snapshot headers: shards/capacity/strategy."""
        return {
            "shards": self._sharded.num_shards,
            "capacity": self._sharded.capacity,
            "strategy": self._sharded.strategy,
        }

    def compile(
        self, source: str, module_name: str = "module"
    ) -> tuple[FunctionHandle, ...]:
        """Compile and register ``source``; raise on failure."""
        response = self.dispatch(
            CompileSourceRequest(source=source, module_name=module_name)
        )
        if response.error is not None:
            raise ProtocolError(response.error.code, response.error.detail)
        assert response.functions is not None
        return response.functions

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> Response:
        """Answer one protocol request; thread-safe, never raises."""
        clock = self.obs.clock
        start = clock()
        self._observed.seen = False
        with self.obs.span("dispatch", request=type(request).__name__):
            response = guarded_dispatch(request, self._dispatch, self._failure)
        # Requests that never reached a locked section (stateless errors)
        # are observed here; everything else was observed under its locks.
        if not getattr(self._observed, "seen", True):
            self._notify(request, response)
        self._dispatch_seconds.observe(clock() - start)
        return response

    def dispatch_json(self, payload) -> dict:
        """Wire driver: JSON envelope in, JSON envelope out, thread-safe."""
        return dispatch_json_via(self.dispatch, payload, obs=self.obs)

    def bytes_session(self):
        """A fresh byte-speaking connection over this client.

        One session per connection (the string table is connection
        state); many submitter threads may share one session when the
        wire server serializes ingestion.  The binary fast-query lane is
        only taken when no :class:`Observer` is installed — the
        differential harness must see every request as a full dispatch.
        """
        from repro.api.codec import BytesServerSession

        return BytesServerSession(
            self.dispatch, obs=self.obs, fast_query=self._fast_query_raw
        )

    def dispatch_bytes(self, data) -> bytes:
        """Wire driver: one frame in, one frame out, never raises."""
        if self._default_bytes_session is None:
            self._default_bytes_session = self.bytes_session()
        return self._default_bytes_session.dispatch_frame(data)

    def _fast_query_raw(
        self,
        name: str,
        revision: int | None,
        want_in: bool,
        variable: str,
        block: str,
    ) -> bool | None:
        """Lean liveness lane under a directly-held shard read lock.

        ``None`` means "take the full dispatch path" — either an
        observer needs the linearization callback, the function is
        unregistered, or the per-shard client's own fast lane declined.
        """
        if self._observer is not None:
            return None
        entry = self._sharded.query_shard(name)
        if entry is None:
            return None
        index, lock, _service = entry
        lock.acquire_read()
        try:
            return self._clients[index].fast_liveness(
                name, revision, want_in, variable, block
            )
        finally:
            lock.release_read()

    _failure = staticmethod(failure_response)

    def _notify(self, request: Request, response: Response) -> None:
        self._observed.seen = True
        if self._observer is not None:
            self._observer(request, response)

    def _dispatch(self, request: Request) -> Response:
        if isinstance(request, (LivenessQuery, LiveSetRequest)):
            name = request.function.name
            with self._sharded.read_locked([name]):
                response = self._client_for(name).dispatch(request)
                self._notify(request, response)
                return response
        if isinstance(request, BatchLiveness):
            return self._batch(request)
        if isinstance(
            request, (DestructRequest, AllocateRequest, NotifyRequest, EvictRequest)
        ):
            name = request.function.name
            with self._sharded.write_locked([name]):
                response = self._client_for(name).dispatch(request)
                self._notify(request, response)
                return response
        if isinstance(request, CompileSourceRequest):
            return self._compile_source(request)
        if isinstance(request, StatsRequest):
            return self._stats(request)
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"unsupported request type {type(request).__name__}",
        )

    def _client_for(self, name: str) -> CompilerClient:
        return self._clients[self._sharded.shard_of(name)]

    # ------------------------------------------------------------------
    # Cross-shard requests
    # ------------------------------------------------------------------
    def _batch(self, request: BatchLiveness) -> BatchLivenessResponse:
        queries = request.queries
        if not queries:
            # Nothing to lock; observed post-guard like other stateless
            # responses.
            return BatchLivenessResponse(values=())
        # Hold every involved shard's read lock for the whole stream, then
        # answer it as maximal consecutive same-shard runs: relative order
        # is preserved (so the first failing query still decides the
        # batch's error, exactly as in the serial client) and each run
        # rides its shard client's per-function amortization.
        names = [query.function.name for query in queries]
        with self._sharded.read_locked(names):
            values: list[bool] = []
            start = 0
            while start < len(queries):
                shard = self._sharded.shard_of(queries[start].function.name)
                stop = start + 1
                while (
                    stop < len(queries)
                    and self._sharded.shard_of(queries[stop].function.name)
                    == shard
                ):
                    stop += 1
                sub = self._clients[shard].dispatch(
                    BatchLiveness(queries=queries[start:stop])
                )
                if sub.error is not None:
                    response = BatchLivenessResponse(error=sub.error)
                    self._notify(request, response)
                    return response
                assert sub.values is not None
                values.extend(sub.values)
                start = stop
            response = BatchLivenessResponse(values=tuple(values))
            self._notify(request, response)
            return response

    def _compile_source(
        self, request: CompileSourceRequest
    ) -> CompileSourceResponse:
        from repro.frontend.compile import compile_source

        try:
            module = compile_source(request.source, name=request.module_name)
        except ValueError as exc:
            raise ProtocolError(ErrorCode.COMPILE_ERROR, str(exc)) from None
        holder: list[CompileSourceResponse] = []

        def observe_registered(handles: list[FunctionHandle]) -> None:
            response = CompileSourceResponse(functions=tuple(handles))
            holder.append(response)
            self._notify(request, response)

        try:
            self._sharded.register_all(
                list(module), on_registered=observe_registered
            )
        except ValueError as exc:
            # Duplicate names (against the service or within the batch).
            raise ProtocolError(ErrorCode.DUPLICATE_FUNCTION, str(exc)) from None
        return holder[0]

    def _stats(self, request: StatsRequest) -> StatsResponse:
        """Whole-stack introspection: every shard's metrics in one snapshot.

        Lock-free by design — each counter read is individually atomic,
        and a stats request must never queue behind (or stall) serving
        traffic.  Observed post-guard: it reads no function state, so it
        commutes with every replayed operation.
        """
        response = StatsResponse(
            snapshot=self.obs.snapshot(),
            stats=self._sharded.stats.as_dict(),
        )
        if request.reset:
            for stats in self._sharded.shard_stats():
                stats.reset()
            self.obs.metrics.reset()
        return response

    def __repr__(self) -> str:
        return f"ShardedClient({self._sharded!r})"
