"""A writer-preferring reader/writer lock for the sharded serving layer.

The standard library has no RW lock; this one is built on a single
:class:`threading.Condition` and implements the policy the shard design
needs:

* any number of **readers** may hold the lock together — liveness queries
  against a shard are answered concurrently;
* a **writer** (edit notification, out-of-SSA translation, allocation,
  registration) is exclusive against readers and other writers;
* writers are **preferred**: once a writer is waiting, new readers queue
  behind it, so a steady query stream cannot starve edits.  Waiting
  readers are only admitted again when no writer is active or queued.

The lock is deliberately *not* reentrant — the concurrent layer never
nests acquisitions of the same shard (see the lock-order contract in
DESIGN.md), and non-reentrancy turns an ordering bug into a reproducible
deadlock the test watchdog reports instead of a silent self-upgrade.

Contention is observable: construct the lock with a :class:`LockMetrics`
(four :class:`repro.obs.Histogram`\\ s) and the ``read()``/``write()``
context managers record **wait** time (queueing for the lock — writer
preference shows up here) separately from **hold** time (inside the
critical section).  Without metrics the managers pay one ``None`` check.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.obs import Observability


class LockMetrics:
    """Wait/hold histograms for one :class:`RWLock`, labelled per shard."""

    __slots__ = ("clock", "read_wait", "read_hold", "write_wait", "write_hold")

    def __init__(self, obs: Observability, **labels) -> None:
        self.clock = obs.clock
        metrics = obs.metrics
        self.read_wait = metrics.histogram("lock.read.wait_seconds", **labels)
        self.read_hold = metrics.histogram("lock.read.hold_seconds", **labels)
        self.write_wait = metrics.histogram("lock.write.wait_seconds", **labels)
        self.write_hold = metrics.histogram("lock.write.hold_seconds", **labels)


class RWLock:
    """Many concurrent readers XOR one exclusive writer, writers first."""

    def __init__(self, metrics: LockMetrics | None = None) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._metrics = metrics

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def acquire_read(self, timeout: float | None = None) -> bool:
        """Take the lock shared; ``False`` on timeout (no lock held)."""
        with self._cond:
            # Uncontended fast path: no predicate lambda, no wait_for
            # machinery — this is the per-query cost of every read.
            if not self._writer_active and not self._writers_waiting:
                self._readers += 1
                return True
            ok = self._cond.wait_for(
                lambda: not self._writer_active and not self._writers_waiting,
                timeout=timeout,
            )
            if ok:
                self._readers += 1
            return ok

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire_read")
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def acquire_write(self, timeout: float | None = None) -> bool:
        """Take the lock exclusive; ``False`` on timeout (no lock held)."""
        with self._cond:
            self._writers_waiting += 1
            ok = False
            try:
                ok = self._cond.wait_for(
                    lambda: not self._writer_active and not self._readers,
                    timeout=timeout,
                )
                if ok:
                    self._writer_active = True
                return ok
            finally:
                self._writers_waiting -= 1
                if not ok and not self._writers_waiting:
                    # A timed-out (or interrupted) writer was the only
                    # thing holding readers back; without this wake-up
                    # readers parked on "no writer queued" sleep forever
                    # even though their predicate is now true.
                    self._cond.notify_all()

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Context managers
    # ------------------------------------------------------------------
    @contextmanager
    def read(self):
        """``with lock.read():`` — shared critical section."""
        metrics = self._metrics
        if metrics is None:
            self.acquire_read()
            try:
                yield self
            finally:
                self.release_read()
            return
        clock = metrics.clock
        queued = clock()
        self.acquire_read()
        acquired = clock()
        metrics.read_wait.observe(acquired - queued)
        try:
            yield self
        finally:
            metrics.read_hold.observe(clock() - acquired)
            self.release_read()

    @contextmanager
    def write(self):
        """``with lock.write():`` — exclusive critical section."""
        metrics = self._metrics
        if metrics is None:
            self.acquire_write()
            try:
                yield self
            finally:
                self.release_write()
            return
        clock = metrics.clock
        queued = clock()
        self.acquire_write()
        acquired = clock()
        metrics.write_wait.observe(acquired - queued)
        try:
            yield self
        finally:
            metrics.write_hold.observe(clock() - acquired)
            self.release_write()

    # ------------------------------------------------------------------
    # Introspection (tests and diagnostics only; inherently racy reads)
    # ------------------------------------------------------------------
    @property
    def readers(self) -> int:
        """Number of readers currently inside (snapshot)."""
        return self._readers

    @property
    def writer_active(self) -> bool:
        """Whether a writer currently holds the lock (snapshot)."""
        return self._writer_active

    def __repr__(self) -> str:
        return (
            f"RWLock(readers={self._readers}, writer={self._writer_active}, "
            f"waiting_writers={self._writers_waiting})"
        )
