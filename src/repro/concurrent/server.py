"""The wire-level server loop: a work queue feeding a worker pool.

This is the piece that turns ``dispatch_json`` into a *server*: many
clients enqueue JSON envelopes, a configurable pool of worker threads
drains the queue through a shared dispatcher (normally a
:class:`~repro.concurrent.client.ShardedClient`, whose per-shard locks
make the shared access safe), and every caller gets its response back —
in request order when driven through :func:`serve_loop`.

The boundary contract of the protocol extends to the pool: a worker that
hits an unexpected exception (a buggy dispatcher, say) answers with a
structured ``INTERNAL`` error envelope instead of dying silently and
leaving its caller waiting forever.

The pool is where wire-level time is measured: a queue-depth gauge (with
high-water mark), queue-wait and service-time histograms — the p50/p99
columns in ``BENCH_concurrency.json`` come straight from
``wire.request_seconds`` — and an optional **slow-request threshold**
that routes an over-threshold request's trace tree through the
:mod:`repro.obs` slow-request hook (never ``print``).
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from typing import Callable, Sequence

from repro.api.codec import BytesServerSession, IngestedFrame
from repro.api.errors import ApiError, ErrorCode
from repro.api.protocol import ErrorResponse, encode_response, trace_context
from repro.obs import Observability
from repro.utils import AtomicCounter

#: A ``dispatch_json``-shaped callable: JSON envelope in, envelope out.
JsonDispatcher = Callable[[dict], dict]

#: Queue sentinel telling a worker to exit.
_STOP = object()


class _Pending:
    """One enqueued request: a latch plus its eventual response.

    The latch is a bare ``threading.Lock`` held from construction until
    :meth:`resolve` releases it — the classic one-shot handoff, chosen
    over ``threading.Event`` because a raw lock's acquire/release are C
    operations with no condition-variable bookkeeping (one allocation
    and two lock words cheaper per request, which wire throughput sees).
    """

    __slots__ = ("_latch", "_response")

    def __init__(self) -> None:
        self._latch = threading.Lock()
        self._latch.acquire()
        self._response: dict | bytes | None = None

    def resolve(self, response) -> None:
        """Publish the response and open the latch (called exactly once)."""
        self._response = response
        self._latch.release()

    def result(self, timeout: float | None = None):
        """Block until the response arrives; raises ``TimeoutError``."""
        if self._response is None:
            if not self._latch.acquire(
                timeout=-1 if timeout is None else timeout
            ):
                raise TimeoutError("request was not answered in time")
            # Reopen for any other waiter parked on the same pending.
            self._latch.release()
        assert self._response is not None
        return self._response

    def done(self) -> bool:
        return self._response is not None


class WireServer:
    """``dispatch_json`` behind a work queue and a worker pool.

    Use as a context manager (or call :meth:`start`/:meth:`stop`):

    >>> with WireServer(client.dispatch_json, workers=4) as server:
    ...     pending = server.submit(envelope)
    ...     response = pending.result()

    ``workers=1`` degenerates to a serial server with queueing — the
    configuration the no-regression benchmark guard measures.
    """

    def __init__(
        self,
        dispatcher: JsonDispatcher,
        workers: int = 4,
        max_queue: int = 0,
        obs: Observability | None = None,
        slow_threshold: float | None = None,
        bytes_session: BytesServerSession | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if slow_threshold is not None and slow_threshold <= 0:
            raise ValueError(
                f"slow_threshold must be positive, got {slow_threshold}"
            )
        self._dispatcher = dispatcher
        self._workers = workers
        # SimpleQueue's C-implemented put/get is ~20x cheaper than
        # queue.Queue's; the locking Queue is only needed when the caller
        # asked for a bounded queue (backpressure).
        self._queue: queue.SimpleQueue | queue.Queue = (
            queue.SimpleQueue() if max_queue == 0 else queue.Queue(max_queue)
        )
        self._threads: list[threading.Thread] = []
        self._started = False
        #: Serializes start/stop/submit lifecycle decisions, so a submit
        #: racing a stop can never enqueue behind the stop sentinels
        #: (where no worker would ever answer it).
        self._lifecycle = threading.Lock()
        #: Requests answered so far (including internal-error answers).
        self.served = AtomicCounter()
        #: Requests slower than ``slow_threshold`` (0 when no threshold).
        self.slow = AtomicCounter()
        self.obs = obs if obs is not None else Observability()
        self._slow_threshold = slow_threshold
        #: When set, ``submit`` accepts raw byte frames too: the session
        #: ingests them at submit time (string defs in arrival order) and
        #: workers answer with bytes in the caller's own framing.
        self._bytes_session = bytes_session
        #: Envelopes enqueued but not yet dequeued; the gauge's
        #: high-water mark is the burst depth the pool actually absorbed.
        self._queue_depth = self.obs.gauge("wire.queue_depth")
        self._queue_seconds = self.obs.histogram("wire.queue_seconds")
        self._request_seconds = self.obs.histogram("wire.request_seconds")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WireServer":
        """Spin up the worker pool (idempotent)."""
        with self._lifecycle:
            if self._started:
                return self
            self._started = True
            for index in range(self._workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"wire-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
            return self

    def stop(self, timeout: float | None = 10.0) -> int:
        """Drain the pool: workers finish queued work, then exit.

        ``timeout`` bounds the *whole* drain, not each join — one shared
        deadline across the pool, so a wedged pool costs ``timeout``
        seconds, never ``workers × timeout``.  Survivors are reported:
        the count is returned and logged through the :mod:`repro.obs`
        logger (they are daemon threads, so they cannot block exit).
        """
        with self._lifecycle:
            if not self._started:
                return 0
            for _ in self._threads:
                self._queue.put(_STOP)
            threads = list(self._threads)
            self._threads.clear()
            self._started = False
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        survivors = 0
        for thread in threads:
            if deadline is None:
                thread.join()
            else:
                thread.join(max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                survivors += 1
        if survivors:
            logging.getLogger("repro.obs").warning(
                "WireServer.stop: %d of %d worker thread(s) still running "
                "after the %.3fs drain deadline (wedged dispatcher?)",
                survivors,
                len(threads),
                timeout if timeout is not None else float("inf"),
            )
        return survivors

    def __enter__(self) -> "WireServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(self, payload) -> _Pending:
        """Enqueue one envelope (JSON dict, or bytes with a session).

        Byte frames are ingested under the lifecycle lock so the binary
        codec's string definitions are applied in exact arrival order —
        the invariant that lets workers decode bodies out of order.
        """
        pending = _Pending()
        with self._lifecycle:
            if not self._started:
                raise RuntimeError("server is not running (call start())")
            if self._bytes_session is not None and isinstance(
                payload, (bytes, bytearray, memoryview)
            ):
                payload = self._bytes_session.ingest(payload)
            self._queue.put((payload, pending, self.obs.clock()))
            self._queue_depth.inc()
        return pending

    def submit_many(self, payloads) -> list[_Pending]:
        """Enqueue a whole batch under one lifecycle-lock acquisition.

        Semantically ``[submit(p) for p in payloads]`` but amortizes the
        lock, the clock read and the queue-depth update over the batch —
        the difference shows directly in wire req/s, which is why
        :func:`serve_loop` drives this path.
        """
        # Materialize once: callers may hand a generator, and the gauge
        # pre-charge below needs the batch size before the first put.
        payloads = list(payloads)
        pendings: list[_Pending] = []
        session = self._bytes_session
        put = self._queue.put
        clock = self.obs.clock
        with self._lifecycle:
            if not self._started:
                raise RuntimeError("server is not running (call start())")
            # Pre-charge the depth gauge: the burst's high-water mark is
            # the batch size the pool is about to absorb, even if workers
            # start draining before the last put lands.
            self._queue_depth.inc(len(payloads))
            for payload in payloads:
                if session is not None and isinstance(
                    payload, (bytes, bytearray, memoryview)
                ):
                    payload = session.ingest(payload)
                pending = _Pending()
                pendings.append(pending)
                put((payload, pending, clock()))
        return pendings

    def _worker_loop(self) -> None:
        # Bound methods hoisted out of the loop: at wire rates every
        # attribute lookup in here is a measurable fraction of a request.
        clock = self.obs.clock
        get = self._queue.get
        depth_dec = self._queue_depth.dec
        observe_queued = self._queue_seconds.observe
        observe_request = self._request_seconds.observe
        served_inc = self.served.add
        while True:
            item = get()
            if item is _STOP:
                return
            payload, pending, enqueued = item
            depth_dec()
            start = clock()
            observe_queued(start - enqueued)
            try:
                if isinstance(payload, IngestedFrame):
                    # complete() owns its own never-raise boundary and
                    # answers in the caller's framing (bytes).
                    response = self._bytes_session.complete(payload)
                else:
                    response = self._dispatcher(payload)
            except Exception as exc:  # noqa: BLE001 - keep callers unblocked
                # dispatch_json's contract is to never raise; if a broken
                # dispatcher does anyway, answer with a structured error
                # rather than leaving the caller waiting on a dead worker.
                response = encode_response(
                    ErrorResponse(
                        error=ApiError(
                            ErrorCode.INTERNAL,
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
                )
            elapsed = clock() - start
            observe_request(elapsed)
            threshold = self._slow_threshold
            if threshold is not None and elapsed > threshold:
                self.slow += 1
                self._report_slow(payload, elapsed, threshold)
            served_inc(1)
            pending.resolve(response)

    def _report_slow(self, payload, elapsed: float, threshold: float) -> None:
        """Route one over-threshold request through the obs hook.

        When the request carried a trace context the dispatcher's tracer
        retained its timing tree; attach it so the report says *where*
        the time went, not just that it was spent.  Reporting is
        best-effort and must never disturb serving.
        """
        if isinstance(payload, IngestedFrame):
            self.obs.emit_slow_request(
                elapsed,
                threshold,
                trace_root=None,
                request_type=payload.request_type,
                trace_id=None,
            )
            return
        trace_id, _parent = trace_context(payload)
        trace_root = None
        if trace_id is not None:
            trace_root = self.obs.tracer.find_trace(trace_id)
        request_type = (
            payload.get("type") if isinstance(payload, dict) else None
        )
        self.obs.emit_slow_request(
            elapsed,
            threshold,
            trace_root=trace_root,
            request_type=request_type,
            trace_id=trace_id,
        )


def serve_loop(
    dispatcher: JsonDispatcher,
    payloads: Sequence[dict],
    workers: int = 4,
    timeout: float | None = 60.0,
    obs: Observability | None = None,
    slow_threshold: float | None = None,
    bytes_session: BytesServerSession | None = None,
) -> list[dict]:
    """Answer ``payloads`` through a worker pool, in request order.

    The batch entry point over :class:`WireServer`: every envelope is
    enqueued up front, ``workers`` threads drain the queue concurrently,
    and the responses come back aligned with their requests.  ``timeout``
    bounds the wait per response so a deadlock in the dispatcher becomes
    a loud ``TimeoutError`` instead of a hung server.

    Pass the dispatcher's own ``obs`` to get one coherent picture (and to
    let ``slow_threshold`` reports find the request's trace tree); the
    queue-depth high-water mark then records how deep this batch stacked.
    """
    server = WireServer(
        dispatcher,
        workers=workers,
        obs=obs,
        slow_threshold=slow_threshold,
        bytes_session=bytes_session,
    )
    with server:
        pendings = server.submit_many(payloads)
        return [pending.result(timeout) for pending in pendings]
