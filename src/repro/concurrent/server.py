"""The wire-level server loop: a work queue feeding a worker pool.

This is the piece that turns ``dispatch_json`` into a *server*: many
clients enqueue JSON envelopes, a configurable pool of worker threads
drains the queue through a shared dispatcher (normally a
:class:`~repro.concurrent.client.ShardedClient`, whose per-shard locks
make the shared access safe), and every caller gets its response back —
in request order when driven through :func:`serve_loop`.

The boundary contract of the protocol extends to the pool: a worker that
hits an unexpected exception (a buggy dispatcher, say) answers with a
structured ``INTERNAL`` error envelope instead of dying silently and
leaving its caller waiting forever.

The pool is where wire-level time is measured: a queue-depth gauge (with
high-water mark), queue-wait and service-time histograms — the p50/p99
columns in ``BENCH_concurrency.json`` come straight from
``wire.request_seconds`` — and an optional **slow-request threshold**
that routes an over-threshold request's trace tree through the
:mod:`repro.obs` slow-request hook (never ``print``).
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Sequence

from repro.api.errors import ApiError, ErrorCode
from repro.api.protocol import ErrorResponse, encode_response, trace_context
from repro.obs import Observability
from repro.utils import AtomicCounter

#: A ``dispatch_json``-shaped callable: JSON envelope in, envelope out.
JsonDispatcher = Callable[[dict], dict]

#: Queue sentinel telling a worker to exit.
_STOP = object()


class _Pending:
    """One enqueued request: an event plus its eventual response."""

    __slots__ = ("_event", "_response")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: dict | None = None

    def resolve(self, response: dict) -> None:
        self._response = response
        self._event.set()

    def result(self, timeout: float | None = None) -> dict:
        """Block until the response arrives; raises ``TimeoutError``."""
        if not self._event.wait(timeout):
            raise TimeoutError("request was not answered in time")
        assert self._response is not None
        return self._response

    def done(self) -> bool:
        return self._event.is_set()


class WireServer:
    """``dispatch_json`` behind a work queue and a worker pool.

    Use as a context manager (or call :meth:`start`/:meth:`stop`):

    >>> with WireServer(client.dispatch_json, workers=4) as server:
    ...     pending = server.submit(envelope)
    ...     response = pending.result()

    ``workers=1`` degenerates to a serial server with queueing — the
    configuration the no-regression benchmark guard measures.
    """

    def __init__(
        self,
        dispatcher: JsonDispatcher,
        workers: int = 4,
        max_queue: int = 0,
        obs: Observability | None = None,
        slow_threshold: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if slow_threshold is not None and slow_threshold <= 0:
            raise ValueError(
                f"slow_threshold must be positive, got {slow_threshold}"
            )
        self._dispatcher = dispatcher
        self._workers = workers
        self._queue: queue.Queue = queue.Queue(max_queue)
        self._threads: list[threading.Thread] = []
        self._started = False
        #: Serializes start/stop/submit lifecycle decisions, so a submit
        #: racing a stop can never enqueue behind the stop sentinels
        #: (where no worker would ever answer it).
        self._lifecycle = threading.Lock()
        #: Requests answered so far (including internal-error answers).
        self.served = AtomicCounter()
        #: Requests slower than ``slow_threshold`` (0 when no threshold).
        self.slow = AtomicCounter()
        self.obs = obs if obs is not None else Observability()
        self._slow_threshold = slow_threshold
        #: Envelopes enqueued but not yet dequeued; the gauge's
        #: high-water mark is the burst depth the pool actually absorbed.
        self._queue_depth = self.obs.gauge("wire.queue_depth")
        self._queue_seconds = self.obs.histogram("wire.queue_seconds")
        self._request_seconds = self.obs.histogram("wire.request_seconds")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WireServer":
        """Spin up the worker pool (idempotent)."""
        with self._lifecycle:
            if self._started:
                return self
            self._started = True
            for index in range(self._workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"wire-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
            return self

    def stop(self, timeout: float | None = 10.0) -> None:
        """Drain the pool: workers finish queued work, then exit."""
        with self._lifecycle:
            if not self._started:
                return
            for _ in self._threads:
                self._queue.put(_STOP)
            threads = list(self._threads)
            self._threads.clear()
            self._started = False
        for thread in threads:
            thread.join(timeout)

    def __enter__(self) -> "WireServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(self, payload) -> _Pending:
        """Enqueue one JSON envelope; returns its pending response."""
        pending = _Pending()
        with self._lifecycle:
            if not self._started:
                raise RuntimeError("server is not running (call start())")
            self._queue.put((payload, pending, self.obs.clock()))
            self._queue_depth.inc()
        return pending

    def _worker_loop(self) -> None:
        clock = self.obs.clock
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            payload, pending, enqueued = item
            self._queue_depth.dec()
            start = clock()
            self._queue_seconds.observe(start - enqueued)
            try:
                response = self._dispatcher(payload)
            except Exception as exc:  # noqa: BLE001 - keep callers unblocked
                # dispatch_json's contract is to never raise; if a broken
                # dispatcher does anyway, answer with a structured error
                # rather than leaving the caller waiting on a dead worker.
                response = encode_response(
                    ErrorResponse(
                        error=ApiError(
                            ErrorCode.INTERNAL,
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
                )
            elapsed = clock() - start
            self._request_seconds.observe(elapsed)
            threshold = self._slow_threshold
            if threshold is not None and elapsed > threshold:
                self.slow += 1
                self._report_slow(payload, elapsed, threshold)
            self.served += 1
            pending.resolve(response)

    def _report_slow(self, payload, elapsed: float, threshold: float) -> None:
        """Route one over-threshold request through the obs hook.

        When the request carried a trace context the dispatcher's tracer
        retained its timing tree; attach it so the report says *where*
        the time went, not just that it was spent.  Reporting is
        best-effort and must never disturb serving.
        """
        trace_id, _parent = trace_context(payload)
        trace_root = None
        if trace_id is not None:
            trace_root = self.obs.tracer.find_trace(trace_id)
        request_type = (
            payload.get("type") if isinstance(payload, dict) else None
        )
        self.obs.emit_slow_request(
            elapsed,
            threshold,
            trace_root=trace_root,
            request_type=request_type,
            trace_id=trace_id,
        )


def serve_loop(
    dispatcher: JsonDispatcher,
    payloads: Sequence[dict],
    workers: int = 4,
    timeout: float | None = 60.0,
    obs: Observability | None = None,
    slow_threshold: float | None = None,
) -> list[dict]:
    """Answer ``payloads`` through a worker pool, in request order.

    The batch entry point over :class:`WireServer`: every envelope is
    enqueued up front, ``workers`` threads drain the queue concurrently,
    and the responses come back aligned with their requests.  ``timeout``
    bounds the wait per response so a deadlock in the dispatcher becomes
    a loud ``TimeoutError`` instead of a hung server.

    Pass the dispatcher's own ``obs`` to get one coherent picture (and to
    let ``slow_threshold`` reports find the request's trace tree); the
    queue-depth high-water mark then records how deep this batch stacked.
    """
    server = WireServer(
        dispatcher, workers=workers, obs=obs, slow_threshold=slow_threshold
    )
    with server:
        pendings = [server.submit(payload) for payload in payloads]
        return [pending.result(timeout) for pending in pendings]
