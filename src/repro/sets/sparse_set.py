"""Briggs--Torczon sparse sets.

The LAO baseline liveness analysis performs its *local* (per-block) phase
with the sparse-set representation of Briggs & Torczon ("An Efficient
Representation for Sparse Sets", LOPLAS 1993), which the paper cites as one
of the reasons the native analysis is hard to beat.  The structure offers
O(1) insertion, membership, deletion and clearing over a fixed universe of
dense integer indices, plus iteration proportional to the cardinality, at
the cost of two arrays of universe size.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class SparseSet:
    """A Briggs--Torczon sparse set over ``range(universe)``.

    Two arrays are maintained:

    * ``dense[0:n]`` lists the members in insertion order;
    * ``sparse[x]`` gives the position of ``x`` inside ``dense``.

    ``x`` is a member iff ``sparse[x] < n and dense[sparse[x]] == x``.
    Clearing is O(1) because it only resets ``n``; the stale contents of the
    arrays are harmless, which is exactly what makes this representation
    attractive inside a compiler's inner loops.
    """

    __slots__ = ("_universe", "_dense", "_sparse", "_size")

    def __init__(self, universe: int, items: Iterable[int] = ()) -> None:
        if universe < 0:
            raise ValueError(f"universe must be non-negative, got {universe}")
        self._universe = universe
        self._dense = [0] * universe
        self._sparse = [0] * universe
        self._size = 0
        for item in items:
            self.add(item)

    @property
    def universe(self) -> int:
        """The exclusive upper bound on members."""
        return self._universe

    def _check(self, item: int) -> None:
        if not 0 <= item < self._universe:
            raise ValueError(
                f"element {item} outside universe [0, {self._universe})"
            )

    def __contains__(self, item: int) -> bool:
        if not 0 <= item < self._universe:
            return False
        slot = self._sparse[item]
        return slot < self._size and self._dense[slot] == item

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[int]:
        # Iterate over a snapshot so callers may mutate during iteration,
        # matching the defensive style used by the rest of the library.
        return iter(self._dense[: self._size])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseSet):
            return NotImplemented
        return self._universe == other._universe and set(self) == set(other)

    def __repr__(self) -> str:
        return f"SparseSet(universe={self._universe}, items={sorted(self)})"

    def add(self, item: int) -> None:
        """Insert ``item`` in O(1); duplicates are ignored."""
        self._check(item)
        if item in self:
            return
        self._dense[self._size] = item
        self._sparse[item] = self._size
        self._size += 1

    def discard(self, item: int) -> None:
        """Remove ``item`` in O(1) if present (swap-with-last)."""
        if item not in self:
            return
        slot = self._sparse[item]
        last = self._dense[self._size - 1]
        self._dense[slot] = last
        self._sparse[last] = slot
        self._size -= 1

    def remove(self, item: int) -> None:
        """Remove ``item``; raise :class:`KeyError` if absent."""
        if item not in self:
            raise KeyError(item)
        self.discard(item)

    def clear(self) -> None:
        """Empty the set in O(1)."""
        self._size = 0

    def update(self, items: Iterable[int]) -> None:
        """Insert every element of ``items``."""
        for item in items:
            self.add(item)

    def copy(self) -> "SparseSet":
        """Return an independent copy with the same universe and members."""
        return SparseSet(self._universe, self)

    def to_sorted_list(self) -> list[int]:
        """Return the members as a sorted list (handy for stable output)."""
        return sorted(self._dense[: self._size])
