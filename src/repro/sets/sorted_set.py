"""Sorted dense-array sets with binary-search membership.

The paper describes the LAO global liveness sets as "sorted dense arrays of
pointers (to variables)" whose membership test is a binary search taking
logarithmic time in the cardinality (Section 6.2).  The baseline data-flow
liveness engine in :mod:`repro.liveness.dataflow` uses this representation
for its per-block live-in/live-out sets so that the query-time comparison in
Table 2 measures the same operations the paper measured: a binary-search
lookup for the native analysis versus a bitset scan plus def-use traversal
for the new one.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator


class SortedArraySet:
    """A set of hashable, orderable keys stored as a sorted list.

    The element type is generic in practice (the liveness baseline stores
    variable indices), but elements must be mutually comparable because the
    membership test is ``bisect``-based.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable = ()) -> None:
        self._items = sorted(set(items))

    def __contains__(self, item) -> bool:
        slot = bisect.bisect_left(self._items, item)
        return slot < len(self._items) and self._items[slot] == item

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SortedArraySet):
            return self._items == other._items
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"SortedArraySet({self._items!r})"

    def add(self, item) -> bool:
        """Insert ``item`` keeping the array sorted.

        Returns ``True`` if the element was actually inserted, ``False`` if
        it was already present.  The boolean return lets the data-flow solver
        detect fixpoint changes without a separate lookup.
        """
        slot = bisect.bisect_left(self._items, item)
        if slot < len(self._items) and self._items[slot] == item:
            return False
        self._items.insert(slot, item)
        return True

    def discard(self, item) -> bool:
        """Remove ``item`` if present; return whether a removal happened."""
        slot = bisect.bisect_left(self._items, item)
        if slot < len(self._items) and self._items[slot] == item:
            del self._items[slot]
            return True
        return False

    def update(self, items: Iterable) -> bool:
        """Union in ``items``; return ``True`` if the set grew."""
        changed = False
        for item in items:
            changed |= self.add(item)
        return changed

    def copy(self) -> "SortedArraySet":
        """Return an independent copy."""
        clone = SortedArraySet()
        clone._items = list(self._items)
        return clone

    def clear(self) -> None:
        """Remove all elements."""
        self._items.clear()

    def as_list(self) -> list:
        """Return the members as a new sorted list."""
        return list(self._items)

    def storage_bits(self, pointer_bits: int = 32) -> int:
        """Payload bits of a C implementation: one pointer per member.

        Used by the memory break-even ablation, which compares this against
        :meth:`repro.sets.bitset.BitSet.storage_bits` as the paper's
        Section 6.1 discussion does (array of 32-bit pointers vs. one bit
        per basic block).
        """
        return len(self._items) * pointer_bits
