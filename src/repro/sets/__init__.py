"""Set data structures used throughout the liveness-checking library.

The paper (Section 5.1) implements the precomputed ``R_v`` and ``T_v`` sets
as bitsets indexed by a dominance-preorder numbering of the basic blocks,
while the "native" LAO liveness analysis represents live sets as sorted
dense arrays of pointers and uses Briggs--Torczon sparse sets for the local
(per-block) analysis.  This package provides faithful Python counterparts of
all three representations:

* :class:`~repro.sets.bitset.BitSet` -- fixed-universe bitset with the
  ``next_set_bit`` primitive required by Algorithm 3.
* :class:`~repro.sets.sparse_set.SparseSet` -- the Briggs & Torczon sparse
  set (O(1) insert/member/clear, iteration proportional to cardinality).
* :class:`~repro.sets.sorted_set.SortedArraySet` -- a sorted dense array
  with binary-search membership, the representation used by the baseline
  data-flow liveness for global live sets.
"""

from repro.sets.bitset import BitSet, next_set_bit_in_mask
from repro.sets.sorted_set import SortedArraySet
from repro.sets.sparse_set import SparseSet

__all__ = ["BitSet", "SparseSet", "SortedArraySet", "next_set_bit_in_mask"]
