"""Fixed-universe bitsets.

The fast liveness checker stores, for every basic block ``v``, the sets
``R_v`` (reduced reachability) and ``T_v`` (relevant back-edge targets) as
bitsets over the blocks of the function, numbered in dominance-tree preorder
(paper, Section 5.1).  Python integers are arbitrary-precision, so a single
``int`` is the natural machine representation: bitwise operations are
implemented in C and a 512-block function still fits in a handful of
machine words, mirroring the paper's observation that two 32-bit words
suffice for the average procedure.

The class below wraps such an integer together with the universe size and
provides the operations Algorithm 3 needs, most importantly
:meth:`BitSet.next_set_bit` (the paper's ``bitset_next_set``).
"""

from __future__ import annotations

from typing import Iterable, Iterator


def next_set_bit_in_mask(mask: int, start: int) -> int:
    """Smallest set bit of ``mask`` at position ``>= start``, or ``-1``.

    The raw-integer counterpart of :meth:`BitSet.next_set_bit`, used by the
    numeric query core (:mod:`repro.core.bitset_query`) which operates on
    plain ``int`` masks with no :class:`BitSet` objects on the hot path.
    Returns ``-1`` when exhausted (the paper's ``MAX_INT`` sentinel).
    """
    if start > 0:
        mask >>= start
    else:
        start = 0
    if mask == 0:
        return -1
    return start + ((mask & -mask).bit_length() - 1)


class BitSet:
    """A mutable set of small non-negative integers drawn from ``range(universe)``.

    Parameters
    ----------
    universe:
        Exclusive upper bound on the elements the set may contain.
    items:
        Optional initial elements.

    The representation is a single Python integer ``_bits`` whose *i*-th bit
    is set iff *i* is a member.  All mutating operations validate their
    arguments against the universe so that indexing bugs in callers surface
    immediately instead of silently corrupting liveness answers.
    """

    __slots__ = ("_universe", "_bits")

    def __init__(self, universe: int, items: Iterable[int] = ()) -> None:
        if universe < 0:
            raise ValueError(f"universe must be non-negative, got {universe}")
        self._universe = universe
        self._bits = 0
        for item in items:
            self.add(item)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, universe: int) -> "BitSet":
        """Return a set containing every element of ``range(universe)``."""
        result = cls(universe)
        if universe:
            result._bits = (1 << universe) - 1
        return result

    @classmethod
    def from_mask(cls, universe: int, mask: int) -> "BitSet":
        """Build a set from a raw integer bit mask (used by tests)."""
        if mask < 0:
            raise ValueError("mask must be non-negative")
        if universe < mask.bit_length():
            raise ValueError(
                f"mask has bits beyond universe {universe}: {mask:#x}"
            )
        result = cls(universe)
        result._bits = mask
        return result

    def copy(self) -> "BitSet":
        """Return a shallow copy (bitsets hold only integers, so this is deep)."""
        result = BitSet(self._universe)
        result._bits = self._bits
        return result

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def universe(self) -> int:
        """The exclusive upper bound on members."""
        return self._universe

    @property
    def mask(self) -> int:
        """The raw integer bit mask (read-only view)."""
        return self._bits

    def _check(self, item: int) -> None:
        if not 0 <= item < self._universe:
            raise ValueError(
                f"element {item} outside universe [0, {self._universe})"
            )

    def __contains__(self, item: int) -> bool:
        if not 0 <= item < self._universe:
            return False
        return bool(self._bits >> item & 1)

    def __len__(self) -> int:
        return self._bits.bit_count()

    def __bool__(self) -> bool:
        return self._bits != 0

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitSet):
            return NotImplemented
        return self._bits == other._bits and self._universe == other._universe

    def __hash__(self) -> int:
        return hash((self._universe, self._bits))

    def __repr__(self) -> str:
        return f"BitSet(universe={self._universe}, items={sorted(self)})"

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, item: int) -> None:
        """Insert ``item`` (must lie inside the universe)."""
        self._check(item)
        self._bits |= 1 << item

    def discard(self, item: int) -> None:
        """Remove ``item`` if present; no error if absent."""
        if 0 <= item < self._universe:
            self._bits &= ~(1 << item)

    def remove(self, item: int) -> None:
        """Remove ``item``; raise :class:`KeyError` if it is not a member."""
        if item not in self:
            raise KeyError(item)
        self._bits &= ~(1 << item)

    def clear(self) -> None:
        """Remove all elements."""
        self._bits = 0

    def update(self, other: "BitSet | Iterable[int]") -> None:
        """In-place union with another bitset or iterable of elements."""
        if isinstance(other, BitSet):
            self._require_same_universe(other)
            self._bits |= other._bits
        else:
            for item in other:
                self.add(item)

    def intersection_update(self, other: "BitSet") -> None:
        """In-place intersection with another bitset over the same universe."""
        self._require_same_universe(other)
        self._bits &= other._bits

    def difference_update(self, other: "BitSet") -> None:
        """In-place difference with another bitset over the same universe."""
        self._require_same_universe(other)
        self._bits &= ~other._bits

    # ------------------------------------------------------------------
    # Pure set algebra
    # ------------------------------------------------------------------
    def _require_same_universe(self, other: "BitSet") -> None:
        if self._universe != other._universe:
            raise ValueError(
                "bitset universes differ: "
                f"{self._universe} vs {other._universe}"
            )

    def union(self, other: "BitSet") -> "BitSet":
        """Return a new set containing members of either operand."""
        self._require_same_universe(other)
        result = BitSet(self._universe)
        result._bits = self._bits | other._bits
        return result

    def intersection(self, other: "BitSet") -> "BitSet":
        """Return a new set containing members of both operands."""
        self._require_same_universe(other)
        result = BitSet(self._universe)
        result._bits = self._bits & other._bits
        return result

    def difference(self, other: "BitSet") -> "BitSet":
        """Return a new set containing members of ``self`` not in ``other``."""
        self._require_same_universe(other)
        result = BitSet(self._universe)
        result._bits = self._bits & ~other._bits
        return result

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def isdisjoint(self, other: "BitSet") -> bool:
        """True iff the two sets share no element."""
        self._require_same_universe(other)
        return (self._bits & other._bits) == 0

    def intersects(self, other: "BitSet") -> bool:
        """True iff the two sets share at least one element.

        This is the ``R_t ∩ uses(a) ≠ ∅`` test at the heart of Algorithm 1.
        """
        return not self.isdisjoint(other)

    def issubset(self, other: "BitSet") -> bool:
        """True iff every member of ``self`` is a member of ``other``."""
        self._require_same_universe(other)
        return (self._bits & ~other._bits) == 0

    def issuperset(self, other: "BitSet") -> bool:
        """True iff every member of ``other`` is a member of ``self``."""
        return other.issubset(self)

    # ------------------------------------------------------------------
    # Algorithm-3 primitives
    # ------------------------------------------------------------------
    def next_set_bit(self, start: int) -> int | None:
        """Return the smallest member ``>= start`` or ``None`` if there is none.

        This is the paper's ``bitset_next_set`` (which returns ``MAX_INT``
        when exhausted); returning ``None`` is the Pythonic equivalent.
        ``start`` may exceed the universe, in which case ``None`` is
        returned.
        """
        if start < 0:
            start = 0
        if start >= self._universe:
            return None
        shifted = self._bits >> start
        if shifted == 0:
            return None
        low = shifted & -shifted
        return start + low.bit_length() - 1

    def iter_range(self, start: int, stop: int) -> Iterator[int]:
        """Iterate members ``m`` with ``start <= m <= stop`` in ascending order.

        Algorithm 3 walks ``T[q]`` restricted to the preorder interval
        ``[num(def), maxnum(def)]``; this helper expresses that scan.
        """
        position = start
        while True:
            member = self.next_set_bit(position)
            if member is None or member > stop:
                return
            yield member
            position = member + 1

    # ------------------------------------------------------------------
    # Memory accounting (used by the memory break-even ablation)
    # ------------------------------------------------------------------
    def storage_bits(self) -> int:
        """Number of payload bits a C implementation would allocate.

        The paper rounds each per-block bitset up to whole machine words; we
        report the universe rounded up to 64-bit words so the memory
        break-even ablation (Section 6.1 discussion) can be reproduced
        deterministically, independent of CPython object overhead.
        """
        words = (self._universe + 63) // 64
        return words * 64
