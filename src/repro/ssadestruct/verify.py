"""Conventional-SSA and destruction-output verifiers.

*Conventional* SSA (CSSA) is the property the whole pipeline pivots on: a
strict-SSA program is conventional when replacing every φ congruence class
(φ results and operands, joined transitively across φs that share
resources) by a single representative preserves semantics — equivalently,
when no two members of a class interfere.  Freshly constructed SSA is
usually *not* conventional (the lost-copy and swap patterns are exactly
φ classes with interfering members); the output of
:func:`repro.ssadestruct.isolate.isolate_phis` always is, and coalescing
must keep it that way.  :func:`verify_conventional_ssa` checks the
property directly with interference tests, so the fuzz harness can assert
it on every generated program rather than trust the construction.

:func:`verify_destructed` checks the *end* state: no φs, no parallel
copies, and structural well-formedness — the contract the register
allocator and the interpreter rely on after :func:`repro.ssadestruct.destruct`.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instruction import ParallelCopy
from repro.ir.value import Variable
from repro.ir.verify import IRVerificationError, verify_function, verify_ssa
from repro.liveness.oracle import LivenessOracle
from repro.ssadestruct.coalesce import CongruenceClasses
from repro.ssadestruct.interference import InterferenceChecker


class ConventionalSSAError(ValueError):
    """Raised when a φ congruence class contains interfering members."""


def phi_congruence_classes(function: Function) -> list[list[Variable]]:
    """The φ congruence classes: φ resources joined transitively.

    Each φ contributes its result and every variable operand; classes of
    φs that share a resource are merged.  Variables unrelated to any φ do
    not appear.
    """
    classes = CongruenceClasses()
    roots: list[Variable] = []
    for phi in function.phis():
        result = phi.result
        assert result is not None
        classes.register(result)
        roots.append(result)
        for value in phi.incoming.values():
            if isinstance(value, Variable):
                classes.union(result, value)
    seen: set[int] = set()
    result_classes: list[list[Variable]] = []
    for root in roots:
        representative = classes.find(root)
        if id(representative) in seen:
            continue
        seen.add(id(representative))
        result_classes.append(classes.members(representative))
    return result_classes


def verify_conventional_ssa(
    function: Function,
    oracle: LivenessOracle | None = None,
) -> None:
    """Check strict SSA plus interference-freedom of every φ class.

    ``oracle`` defaults to a fresh fast checker; any
    :class:`~repro.liveness.oracle.LivenessOracle` covering the whole
    variable universe works.  Raises :class:`ConventionalSSAError` naming
    the first offending pair.
    """
    verify_ssa(function)
    if oracle is None:
        from repro.core.live_checker import FastLivenessChecker

        oracle = FastLivenessChecker(function)
    oracle.prepare()
    checker = InterferenceChecker(function, oracle)
    for members in phi_congruence_classes(function):
        for index, first in enumerate(members):
            for second in members[index + 1:]:
                if checker.interfere(first, second):
                    raise ConventionalSSAError(
                        f"{function.name}: φ congruence class members "
                        f"{first.name!r} and {second.name!r} interfere — the "
                        "program is not in conventional SSA form"
                    )


def verify_destructed(function: Function) -> None:
    """Check the output contract of the destruction pipeline.

    The function must be structurally well formed and contain neither
    φ-functions nor parallel copies.  (It is *not* SSA any more — class
    representatives are written in several places — so ``verify_ssa``
    deliberately does not run here.)
    """
    verify_function(function)
    for block in function:
        for inst in block.instructions:
            if inst.is_phi():
                raise IRVerificationError(
                    f"{function.name}:{block.name}: φ survived destruction: {inst}"
                )
            if isinstance(inst, ParallelCopy):
                raise IRVerificationError(
                    f"{function.name}:{block.name}: parallel copy survived "
                    f"destruction: {inst}"
                )
