"""Back-compat adapter: the pre-PR-3 ``destruct_ssa`` surface.

The original single-shot out-of-SSA pass (``repro.ssa.destruction``)
decided copy insertion φ-by-φ while analysing; PR 3 replaced it with the
staged, differentially-testable pipeline in this package.  This module
keeps the old *surface* alive on top of the single remaining
implementation: :func:`destruct_ssa` delegates to
:func:`repro.ssadestruct.pipeline.destruct` and projects its
:class:`~repro.ssadestruct.pipeline.DestructReport` onto the historical
:class:`DestructionReport` field names.

The mapping: each φ with *k* predecessors contributes one result resource
and *k* operand resources in the old accounting, and exactly ``k + 1``
parallel-copy pairs after isolation in the new one — so ``pairs`` are
``resources`` and a non-coalesced pair is an inserted copy.  The old
invariant ``resources_processed == resources_coalesced + copies_inserted``
therefore holds by construction.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

from repro.ir.function import Function
from repro.ir.value import Variable
from repro.liveness.oracle import LivenessOracle
from repro.ssadestruct.pipeline import destruct, phi_related_variables

OracleFactory = Callable[[Function], LivenessOracle]


@dataclass
class DestructionReport:
    """Statistics of one SSA-destruction run (historical field names)."""

    phis_processed: int = 0
    resources_processed: int = 0
    resources_coalesced: int = 0
    copies_inserted: int = 0
    critical_edges_split: int = 0
    interference_tests: int = 0
    parallel_copy_temps: int = 0
    #: φ-related variables (results and arguments of φ-functions) — the set
    #: LAO restricts its native liveness precomputation to.
    phi_related_variables: list[Variable] = field(default_factory=list)


def destruct_ssa(
    function: Function,
    oracle_factory: OracleFactory | None = None,
    oracle: LivenessOracle | None = None,
) -> DestructionReport:
    """Translate ``function`` out of SSA form in place (deprecated surface).

    Use :func:`repro.ssadestruct.destruct` in new code.  ``oracle_factory``
    (or a prebuilt ``oracle``) routes every liveness query of the
    coalescing through the supplied engine, exactly as before; factories
    run after φ isolation so their view covers the fresh φ resources.
    """
    warnings.warn(
        "destruct_ssa is deprecated; use repro.ssadestruct.destruct",
        DeprecationWarning,
        stacklevel=2,
    )
    related = phi_related_variables(function)
    factory: OracleFactory | None = None
    if oracle is not None:
        prebuilt = oracle
        factory = lambda fn: prebuilt  # noqa: E731 - tiny adapter
    elif oracle_factory is not None:
        factory = oracle_factory
    report = destruct(function, oracle_factory=factory)
    return DestructionReport(
        phis_processed=report.phis_isolated,
        resources_processed=report.pairs_inserted,
        resources_coalesced=report.pairs_coalesced,
        copies_inserted=report.pairs_inserted - report.pairs_coalesced,
        critical_edges_split=report.critical_edges_split,
        interference_tests=report.interference_tests,
        parallel_copy_temps=report.temps_inserted,
        phi_related_variables=related,
    )
