"""Budimlić interference tests and conservative copy coalescing.

The paper's runtime evaluation (Section 6.2) measures liveness queries
issued by the SSA destruction pass of LAO, which follows Sreedhar et al.'s
third method and decides coalescing with the interference test of Budimlić
et al.: *two SSA variables interfere iff one is live directly after the
instruction defining the other* (the variable whose definition dominates
the other's is the one whose liveness is queried).  This sidesteps building
an interference graph — each test is a constant number of liveness queries
plus a local scan.

Two clients of that test live here:

* :class:`InterferenceChecker` — the test itself, usable with any
  :class:`~repro.liveness.oracle.LivenessOracle`.  The out-of-SSA
  pipeline (:mod:`repro.ssadestruct.coalesce`) drives it for φ congruence
  classes, and the destructed-output verifier reuses it.
* :class:`CopyCoalescer` — a conservative coalescing pass over explicit
  ``copy`` instructions in an SSA function: a copy is removed (and its
  destination merged into its source) only when the two values do not
  interfere, i.e. when a register allocator could assign them the same
  register.  The pass updates the shared def–use chains incrementally and
  reports how many liveness-backed tests it issued, giving the benchmark
  harness a second query stream with a different shape from destruction
  (the "other passes" the paper's conclusion mentions as work in progress).

This module is the single implementation; the pre-PR-3 home
:mod:`repro.ssa.coalescing` survives as a deprecated shim over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cfg.dominance import DominatorTree
from repro.ir.function import Function
from repro.ir.instruction import Opcode, Phi
from repro.ir.value import Variable
from repro.liveness.oracle import LivenessOracle
from repro.ssa.defuse import DefUseChains


class InterferenceChecker:
    """Budimlić-style SSA interference tests driven by liveness queries."""

    def __init__(
        self,
        function: Function,
        oracle: LivenessOracle,
        defuse: DefUseChains | None = None,
        domtree: DominatorTree | None = None,
    ) -> None:
        self._function = function
        self._oracle = oracle
        self._defuse = defuse if defuse is not None else DefUseChains(function)
        cfg = function.build_cfg()
        self._domtree = domtree if domtree is not None else DominatorTree(cfg)
        #: Number of interference tests performed.
        self.tests = 0

    @property
    def defuse(self) -> DefUseChains:
        """The def–use chains consulted by the tests (shared, mutable)."""
        return self._defuse

    @property
    def oracle(self) -> LivenessOracle:
        """The liveness oracle answering the underlying queries."""
        return self._oracle

    # ------------------------------------------------------------------
    def interfere(self, a: Variable, b: Variable) -> bool:
        """True iff the live ranges of ``a`` and ``b`` intersect.

        Under strict SSA, if two live ranges intersect then the definition
        of one dominates the definition of the other, so it suffices to
        order the pair by dominance and ask whether the dominating variable
        is live at the dominated variable's definition point.
        """
        self.tests += 1
        if a is b:
            return False
        if a.definition is not None and a.definition is b.definition:
            # Both written by the same instruction — necessarily a parallel
            # copy, the one multi-definition instruction.  Their definition
            # points coincide, so their live ranges share at least that
            # point: they interfere (they carry different values written in
            # parallel and must not collapse onto one name).
            return True
        def_a = self._defuse.def_block(a)
        def_b = self._defuse.def_block(b)
        if def_a == def_b:
            # Same block: order the two definitions textually.
            block = self._function.block(def_a)
            first = self._first_defined(block, a, b)
            dominating, dominated = (a, b) if first is a else (b, a)
        elif self._domtree.dominates(def_a, def_b):
            dominating, dominated = a, b
        elif self._domtree.dominates(def_b, def_a):
            dominating, dominated = b, a
        else:
            # Definitions in dominance-unrelated blocks: the live ranges
            # cannot intersect in a strict SSA program.
            return False
        return self._live_at_definition(dominating, dominated)

    def _first_defined(self, block, a: Variable, b: Variable) -> Variable:
        for inst in block.instructions:
            defined = inst.defined_variables()
            if any(var is a for var in defined):
                return a
            if any(var is b for var in defined):
                return b
        raise ValueError(
            f"neither {a.name!r} nor {b.name!r} is defined in block {block.name!r}"
        )

    def _live_at_definition(self, var: Variable, other: Variable) -> bool:
        """Is ``var`` live directly after the instruction defining ``other``?

        Block-level liveness gives the answer when ``var`` is live-out of
        that block; otherwise ``var``'s live range ends inside the block
        and a local scan decides whether it extends past ``other``'s
        definition (i.e. whether ``var`` is still used strictly below it).
        """
        def_block_name = self._defuse.def_block(other)
        if self._oracle.is_live_out(var, def_block_name):
            return True
        if def_block_name not in self._defuse.use_blocks(var):
            # Not live-out and no use recorded in the block: the in-block
            # scan below could never find anything (φ-attributed uses sit
            # in successor blocks and are covered by the live-out query),
            # so skip it.  This keeps each interference test O(uses), not
            # O(block length).
            return False
        block = self._function.block(def_block_name)
        other_def = other.definition
        seen_other_def = False
        for inst in block.instructions:
            if seen_other_def and not isinstance(inst, Phi):
                if any(op is var for op in inst.operands):
                    return True
            if inst is other_def:
                seen_other_def = True
        return False


@dataclass
class CoalescingReport:
    """Outcome of a coalescing run."""

    copies_considered: int = 0
    copies_coalesced: int = 0
    copies_kept: int = 0
    interference_tests: int = 0


class CopyCoalescer:
    """Conservatively coalesce ``copy`` instructions in an SSA function."""

    def __init__(
        self,
        function: Function,
        interference: InterferenceChecker,
        on_change: Callable[[], None] | None = None,
    ) -> None:
        self._function = function
        self._interference = interference
        #: Called after every program edit; the benchmark harness hooks the
        #: conventional engine's invalidation here to model the cost of
        #: keeping its sets up to date.
        self._on_change = on_change

    def run(self) -> CoalescingReport:
        """Coalesce what can be coalesced; returns statistics."""
        report = CoalescingReport()
        defuse = self._interference.defuse
        for block in list(self._function):
            for inst in list(block.instructions):
                if inst.opcode != Opcode.COPY:
                    continue
                source = inst.operands[0]
                dest = inst.result
                if not isinstance(source, Variable) or dest is None:
                    continue
                if dest not in defuse or source not in defuse:
                    continue
                report.copies_considered += 1
                before = self._interference.tests
                interferes = self._interference.interfere(dest, source)
                report.interference_tests += self._interference.tests - before
                if interferes:
                    report.copies_kept += 1
                    continue
                self._coalesce(block, inst, dest, source)
                report.copies_coalesced += 1
        return report

    def _coalesce(self, block, copy_inst, dest: Variable, source: Variable) -> None:
        """Merge ``dest`` into ``source`` and delete the copy.

        Replacing the uses keeps the function in SSA form (``source``'s
        definition dominates the copy, which dominates every use of
        ``dest``), and the def–use chains are patched incrementally — no
        precomputation of the fast checker is invalidated.
        """
        defuse = self._interference.defuse
        for use_block in defuse.uses(dest):
            defuse.add_use(source, use_block)
        for other_block in self._function:
            for inst in other_block.instructions:
                inst.replace_uses(dest, source)
        defuse.remove_variable(dest)
        defuse.remove_use(source, block.name)
        block.remove(copy_inst)
        if self._on_change is not None:
            self._on_change()
