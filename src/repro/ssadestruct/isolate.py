"""φ isolation: rewrite every φ to talk only to fresh copy resources.

This is the first stage of the conservative out-of-SSA translation
(Sreedhar et al.'s Method I, as revisited by Boissinot et al.): for every

    a₀ ← φ(a₁ : p₁, …, aₙ : pₙ)

the pass introduces one fresh variable per φ resource and two kinds of
:class:`~repro.ir.instruction.ParallelCopy`:

* at the end of each predecessor ``pᵢ`` a parallel copy writes a fresh
  ``aᵢ'`` from the old operand ``aᵢ`` (one instruction per CFG edge, with
  one pair per φ of the successor);
* right after the φ prefix of the φ's own block, a parallel copy writes
  the old result ``a₀`` from a fresh ``a₀'`` that becomes the φ's new
  result.

Afterwards the φ mentions only the fresh resources, whose live ranges are
squeezed between a parallel copy and the φ itself — so each φ's resource
set is interference-free by construction.  A program in which every φ's
congruence class is interference-free is in *conventional* SSA form
(checked by :mod:`repro.ssadestruct.verify`): renaming each class to a
single representative is then semantics-preserving, which is what the
later coalescing and lowering stages exploit.

Isolation only *adds* variables and instructions; the CFG is untouched,
so a prepared :class:`~repro.core.live_checker.FastLivenessChecker`
survives the whole stage — the caller hands in its def–use chains (kept
exact through :meth:`~repro.ssa.defuse.DefUseChains.add_variable` /
``add_use``) and a per-variable invalidation callback, and never pays a
precomputation rebuild.  That is the paper's invalidation contract doing
real work inside a transformation pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.ir.function import Function
from repro.ir.instruction import ParallelCopy
from repro.ir.value import Value, Variable
from repro.ssa.defuse import DefUseChains
from repro.ssadestruct.names import NameAllocator


@dataclass
class IsolationReport:
    """What one isolation run did."""

    phis_isolated: int = 0
    parallel_copies: int = 0
    pairs_inserted: int = 0
    #: One congruence-class seed per φ: ``[result', operand'₁, …]``.  These
    #: are interference-free by construction and seed the coalescer.
    phi_classes: list[list[Variable]] = field(default_factory=list)
    #: Every variable the stage invented (for bookkeeping and tests).
    fresh_variables: list[Variable] = field(default_factory=list)


def isolate_phis(
    function: Function,
    defuse: DefUseChains | None = None,
    on_variable_changed: Callable[[Variable], None] | None = None,
) -> IsolationReport:
    """Isolate every φ of ``function`` behind parallel copies, in place.

    ``defuse`` (if given) is maintained incrementally — fresh variables are
    registered, φ-attributed uses move onto the parallel copies without
    changing any use multiset — and ``on_variable_changed`` is invoked for
    each variable whose *defining instruction* changes (the old φ results,
    now written by a parallel copy), so per-variable caches layered on top
    of the chains can drop exactly the stale entries.
    """
    report = IsolationReport()
    alloc = NameAllocator(function)

    for block in list(function):
        phis = block.phis()
        if not phis:
            continue
        # The verifier guarantees every φ carries one incoming value per
        # CFG predecessor, so the first φ's keys *are* the predecessor
        # list (avoiding a quadratic whole-function rescan per block).
        preds = list(phis[0].incoming)

        # One parallel copy per incoming edge, one pair per φ.
        per_pred_pairs: dict[str, list[tuple[Variable, Value]]] = {
            pred: [] for pred in preds
        }
        # The copy that reunites the old results with the fresh φ results.
        result_pairs: list[tuple[Variable, Value]] = []

        for phi in phis:
            result = phi.result
            assert result is not None
            report.phis_isolated += 1
            members: list[Variable] = []

            fresh_result = alloc.fresh(f"{result.name}.out")
            members.append(fresh_result)
            result_pairs.append((result, fresh_result))

            for pred in preds:
                old_value = phi.incoming[pred]
                fresh_operand = alloc.fresh(f"{result.name}.in")
                members.append(fresh_operand)
                per_pred_pairs[pred].append((fresh_operand, old_value))
                phi.set_incoming(pred, fresh_operand)
                if defuse is not None:
                    # The old operand's φ-attributed use at ``pred`` turns
                    # into a parallel-copy operand use at ``pred`` — the
                    # same multiset entry, so its chain needs no edit.  The
                    # fresh operand is defined by the copy and consumed by
                    # the φ, both attributed to ``pred``.
                    defuse.add_variable(fresh_operand, pred)
                    defuse.add_use(fresh_operand, pred)

            phi.result = fresh_result
            fresh_result.definition = phi
            if defuse is not None:
                defuse.add_variable(fresh_result, block.name)
                defuse.add_use(fresh_result, block.name)

            report.phi_classes.append(members)
            report.fresh_variables.extend(members)

        for pred in preds:
            pairs = per_pred_pairs[pred]
            pred_block = function.block(pred)
            pred_block.insert_before_terminator(ParallelCopy(pairs))
            report.parallel_copies += 1
            report.pairs_inserted += len(pairs)

        block.insert(len(phis), ParallelCopy(result_pairs))
        report.parallel_copies += 1
        report.pairs_inserted += len(result_pairs)
        if on_variable_changed is not None:
            # The old φ results are now written by the parallel copy; their
            # def *block* is unchanged but their defining instruction is
            # not, so per-variable artefacts must be dropped.
            for result, _ in result_pairs:
                on_variable_changed(result)

    return report
