"""Aggressive copy coalescing over φ congruence classes.

After :mod:`repro.ssadestruct.isolate` the program contains one parallel
copy per CFG edge into a φ block (plus one per φ block for the results),
and every φ talks only to fresh, interference-free resources.  Lowering
those copies verbatim would be correct but wasteful: most of them connect
variables whose live ranges never overlap, and a register allocator could
have assigned them the same register anyway.  This pass merges such
variables into common *congruence classes* so the later sequentialisation
can drop the corresponding copies.

The driver walks every parallel-copy pair ``dest ← src`` and merges the
two classes when **no member of one interferes with a member of the
other**.  How interference is answered is pluggable, and the difference is
exactly what the paper is about:

* :class:`QueryInterference` — the Budimlić value-interference test, a
  *constant number of liveness queries* per pair (through any
  :class:`~repro.liveness.oracle.LivenessOracle`, usually the fast
  checker).  Nothing is precomputed over the variable universe.
* :class:`GraphInterference` — the conventional alternative: materialise
  the full interference graph from per-point live sets up front, then
  answer pairs by set lookup.  ``bench/table_destruct.py`` measures how
  much that eager construction costs on workloads where destruction only
  ever asks about φ-related variables.

Both strategies answer identically (the interference property test pins
the Budimlić test to live-range overlap, which is what the graph encodes),
so the recorded :class:`CoalesceDecision` stream must match across
backends — the differential fuzz harness asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.registry import GRAPH
from repro.ir.function import Function
from repro.ir.instruction import ParallelCopy
from repro.ir.value import Variable
from repro.liveness.oracle import LivenessOracle
from repro.liveness.ranges import interference_pairs
from repro.ssa.defuse import DefUseChains
from repro.ssadestruct.interference import InterferenceChecker


# ----------------------------------------------------------------------
# Congruence classes (union–find with deterministic representatives)
# ----------------------------------------------------------------------
class CongruenceClasses:
    """A union–find over variables with stable, readable representatives.

    Representatives prefer *original* program variables over the fresh
    resources isolation invented (so coalesced output reads like the input
    program), breaking ties by registration order.  Determinism matters:
    the differential fuzz harness compares renamed programs produced under
    different liveness backends textually.
    """

    def __init__(self) -> None:
        self._parent: dict[int, Variable] = {}
        self._members: dict[int, list[Variable]] = {}
        #: id(var) -> (is_fresh, registration index): the minimum wins.
        self._rank: dict[int, tuple[bool, int]] = {}
        self._counter = 0

    def register(self, var: Variable, fresh: bool = False) -> None:
        """Make ``var`` a singleton class (idempotent)."""
        if id(var) in self._parent:
            return
        self._parent[id(var)] = var
        self._members[id(var)] = [var]
        self._rank[id(var)] = (fresh, self._counter)
        self._counter += 1

    def find(self, var: Variable) -> Variable:
        """The representative of ``var``'s class (registering it if new)."""
        self.register(var)
        root = var
        while self._parent[id(root)] is not root:
            root = self._parent[id(root)]
        # Path compression.
        while self._parent[id(var)] is not root:
            var, self._parent[id(var)] = self._parent[id(var)], root
        return root

    def members(self, var: Variable) -> list[Variable]:
        """Every member of ``var``'s class (representative included)."""
        return list(self._members[id(self.find(var))])

    def union(self, a: Variable, b: Variable) -> Variable:
        """Merge the two classes; returns the surviving representative."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a is root_b:
            return root_a
        if self._rank[id(root_b)] < self._rank[id(root_a)]:
            root_a, root_b = root_b, root_a
        self._parent[id(root_b)] = root_a
        self._members[id(root_a)].extend(self._members.pop(id(root_b)))
        return root_a

    def renaming(self) -> dict[int, Variable]:
        """``id(var) -> representative`` for every non-trivial member."""
        result: dict[int, Variable] = {}
        for root_id, members in self._members.items():
            root = self._parent[root_id]
            for member in members:
                if member is not root:
                    result[id(member)] = root
        return result


# ----------------------------------------------------------------------
# Pluggable interference strategies
# ----------------------------------------------------------------------
class QueryInterference:
    """Budimlić tests through liveness queries (no precomputation)."""

    name = "query"

    def __init__(
        self,
        function: Function,
        oracle: LivenessOracle,
        defuse: DefUseChains | None = None,
        domtree=None,
    ) -> None:
        self._checker = InterferenceChecker(
            function, oracle, defuse=defuse, domtree=domtree
        )

    @property
    def tests(self) -> int:
        return self._checker.tests

    def interfere(self, a: Variable, b: Variable) -> bool:
        return self._checker.interfere(a, b)


class GraphInterference:
    """Eager full interference graph; pair tests become set lookups."""

    name = GRAPH

    def __init__(self, function: Function) -> None:
        self._edges = interference_pairs(function)
        self.tests = 0

    def interfere(self, a: Variable, b: Variable) -> bool:
        self.tests += 1
        if a is b:
            return False
        return frozenset((id(a), id(b))) in self._edges


# ----------------------------------------------------------------------
# The coalescer
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoalesceDecision:
    """One parallel-copy pair's fate, for cross-backend comparison."""

    block: str
    dest: str
    source: str
    merged: bool
    #: ``merged`` / ``interference`` / ``same-class`` / ``constant``.
    reason: str


@dataclass
class CoalesceReport:
    """Statistics of one coalescing run."""

    pairs_considered: int = 0
    pairs_coalesced: int = 0
    classes_merged: int = 0
    interference_tests: int = 0
    decisions: list[CoalesceDecision] = field(default_factory=list)


def coalesce_parallel_copies(
    function: Function,
    classes: CongruenceClasses,
    interference,
    collect_decisions: bool = False,
) -> CoalesceReport:
    """Merge congruence classes across every parallel-copy pair.

    Two classes merge only when every cross pair of members passes the
    interference test — members *within* a class are already mutually
    non-interfering (the φ seeds by construction, merged classes by
    induction), so cross pairs are all that needs checking.

    The walk order (blocks in function order, copies in instruction order,
    pairs in pair order) is deterministic and independent of the
    interference strategy, which keeps decision streams comparable.
    """
    report = CoalesceReport()
    before = interference.tests
    for block in function:
        for inst in block.instructions:
            if not isinstance(inst, ParallelCopy):
                continue
            for dest, src in inst.pairs:
                report.pairs_considered += 1
                if not isinstance(src, Variable):
                    _record(report, collect_decisions, block.name, dest, src,
                            merged=False, reason="constant")
                    continue
                root_dest = classes.find(dest)
                root_src = classes.find(src)
                if root_dest is root_src:
                    # Already congruent (e.g. the same value reaching a φ
                    # through several predecessors): the copy will vanish.
                    report.pairs_coalesced += 1
                    _record(report, collect_decisions, block.name, dest, src,
                            merged=True, reason="same-class")
                    continue
                if _classes_interfere(classes, root_dest, root_src, interference):
                    _record(report, collect_decisions, block.name, dest, src,
                            merged=False, reason="interference")
                    continue
                classes.union(root_dest, root_src)
                report.classes_merged += 1
                report.pairs_coalesced += 1
                _record(report, collect_decisions, block.name, dest, src,
                        merged=True, reason="merged")
    report.interference_tests = interference.tests - before
    return report


def _classes_interfere(
    classes: CongruenceClasses,
    root_a: Variable,
    root_b: Variable,
    interference,
) -> bool:
    for a in classes.members(root_a):
        for b in classes.members(root_b):
            if interference.interfere(a, b):
                return True
    return False


def _record(
    report: CoalesceReport,
    collect: bool,
    block: str,
    dest: Variable,
    src,
    merged: bool,
    reason: str,
) -> None:
    if collect:
        source = src.name if isinstance(src, Variable) else str(src)
        report.decisions.append(
            CoalesceDecision(
                block=block, dest=dest.name, source=source,
                merged=merged, reason=reason,
            )
        )
