"""Out-of-SSA translation driven by liveness *queries* (the flagship client).

The paper's pitch is that passes like SSA destruction ask many scattered
``is_live_out(q, a)`` questions and never need whole live sets; this
package is that pass, built so every interference decision is a pair of
checker queries:

* :mod:`repro.ssadestruct.isolate` — φ isolation into
  :class:`~repro.ir.instruction.ParallelCopy` instructions (establishes
  conventional SSA);
* :mod:`repro.ssadestruct.coalesce` — congruence classes plus aggressive
  copy coalescing with pluggable interference strategies (liveness
  queries vs. a full interference graph);
* :mod:`repro.ssadestruct.sequential` — class renaming and parallel-copy
  sequentialisation with cycle breaking;
* :mod:`repro.ssadestruct.verify` — conventional-SSA and output verifiers;
* :mod:`repro.ssadestruct.pipeline` — the :func:`destruct` driver tying
  the stages together per backend.

* :mod:`repro.ssadestruct.interference` — the Budimlić interference
  test and the conservative copy coalescer (moved here from
  ``repro.ssa.coalescing``, which is now a deprecated shim);
* :mod:`repro.ssadestruct.legacy` — the pre-PR-3 ``destruct_ssa``
  surface, kept as a thin adapter over :func:`destruct`.
"""

from repro.ssadestruct.coalesce import (
    CoalesceDecision,
    CoalesceReport,
    CongruenceClasses,
    GraphInterference,
    QueryInterference,
    coalesce_parallel_copies,
)
from repro.ssadestruct.interference import (
    CoalescingReport,
    CopyCoalescer,
    InterferenceChecker,
)
from repro.ssadestruct.isolate import IsolationReport, isolate_phis
from repro.ssadestruct.legacy import DestructionReport, destruct_ssa
from repro.ssadestruct.names import NameAllocator
from repro.ssadestruct.pipeline import (
    BACKENDS,
    DestructReport,
    destruct,
    phi_related_variables,
)
from repro.ssadestruct.sequential import LoweringReport, apply_renaming_and_lower
from repro.ssadestruct.verify import (
    ConventionalSSAError,
    phi_congruence_classes,
    verify_conventional_ssa,
    verify_destructed,
)

__all__ = [
    "BACKENDS",
    "CoalesceDecision",
    "CoalesceReport",
    "CoalescingReport",
    "CopyCoalescer",
    "DestructionReport",
    "InterferenceChecker",
    "CongruenceClasses",
    "ConventionalSSAError",
    "DestructReport",
    "GraphInterference",
    "IsolationReport",
    "LoweringReport",
    "NameAllocator",
    "QueryInterference",
    "apply_renaming_and_lower",
    "coalesce_parallel_copies",
    "destruct",
    "destruct_ssa",
    "isolate_phis",
    "phi_related_variables",
    "phi_congruence_classes",
    "verify_conventional_ssa",
    "verify_destructed",
]
