"""The out-of-SSA driver: split → isolate → coalesce → lower.

:func:`destruct` composes the stages of this package into the paper's
flagship client workload.  The liveness backend is pluggable — resolved
through the engine registry (:mod:`repro.api.registry`) — and is the
experiment:

* the **fast** engine — interference is decided by Budimlić tests through
  a :class:`~repro.core.live_checker.FastLivenessChecker`; every test is a
  constant number of ``is_live_out`` queries answered by Algorithm 3, and
  the checker's CFG precomputation is built once (after the single CFG
  edit, critical-edge splitting) and survives the whole pass — isolation
  maintains the def–use chains incrementally and routes per-variable
  invalidation through ``notify_variable_changed``, so the per-variable
  :class:`~repro.core.plans.QueryPlan` cache stays warm across the many
  queries each φ resource receives.
* the **dataflow** engine — the same query-driven coalescing, but the
  queries hit a conventional :class:`~repro.liveness.DataflowLiveness`
  fixpoint (recomputed after isolation, since the universe grew).  Used by
  the differential tests to check the fast checker's answers change
  nothing.
* the **graph** engine — the conventional *structure*: build the full
  interference graph eagerly from per-point live sets, then coalesce by
  edge lookup.  This is the baseline ``bench/table_destruct.py`` measures
  against.

Which path a registered engine takes is decided by its capabilities:
``per_point_sets`` engines become a :class:`GraphInterference`,
``supports_edits`` engines ride the incrementally-maintained checker
path (they must expose the fast checker's surface: ``prepare``,
``defuse``, ``precomputation``, ``notify_variable_changed``), and
everything else answers the same query stream through its oracle built
after isolation.  All paths make identical coalescing decisions (asserted
by the fuzz harness); they differ only in how much answering them costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.api.registry import (
    DATAFLOW,
    FAST,
    GRAPH,
    EngineSpec,
    UnknownEngineError,
    available_engines,
    get_engine,
)
from repro.ir.function import Function
from repro.ir.value import Variable
from repro.liveness.oracle import CountingOracle, LivenessOracle
from repro.ssa.defuse import DefUseChains
from repro.ssadestruct.coalesce import (
    CoalesceDecision,
    CongruenceClasses,
    GraphInterference,
    QueryInterference,
    coalesce_parallel_copies,
)
from repro.ssadestruct.isolate import isolate_phis
from repro.ssadestruct.names import NameAllocator
from repro.ssadestruct.sequential import apply_renaming_and_lower
from repro.ssadestruct.verify import verify_destructed

#: Recognised liveness/interference backends, in reporting order.
BACKENDS = (FAST, DATAFLOW, GRAPH)


@dataclass
class DestructReport:
    """Everything one :func:`destruct` run did, for tests and benchmarks."""

    backend: str = FAST
    critical_edges_split: int = 0
    phis_isolated: int = 0
    parallel_copies: int = 0
    pairs_inserted: int = 0
    pairs_coalesced: int = 0
    classes_merged: int = 0
    interference_tests: int = 0
    #: Individual liveness queries issued (0 for the ``graph`` backend,
    #: which precomputes instead of querying).
    liveness_queries: int = 0
    copies_emitted: int = 0
    temps_inserted: int = 0
    phis_removed: int = 0
    decisions: list[CoalesceDecision] = field(default_factory=list)
    #: Representatives of every non-trivial congruence class — the
    #: variables whose live range *grew* by absorbing coalesced members.
    #: A register assignment computed before the translation is no longer
    #: trustworthy for exactly these variables (the allocator uses this to
    #: recolor them).
    coalesced_representatives: list[Variable] = field(default_factory=list)

    @property
    def coalesced_fraction(self) -> float:
        """Share of parallel-copy pairs that needed no actual copy."""
        if not self.pairs_inserted:
            return 0.0
        return self.pairs_coalesced / self.pairs_inserted


def phi_related_variables(function: Function) -> list[Variable]:
    """Results and variable arguments of every φ (the queried universe).

    This is the variable subset LAO restricts its native liveness
    precomputation to, and the denominator of the paper's
    queries-per-variable figures; it must be collected *before*
    destruction (afterwards the φs are gone).
    """
    related: dict[int, Variable] = {}
    for phi in function.phis():
        if phi.result is not None:
            related.setdefault(id(phi.result), phi.result)
        for value in phi.incoming.values():
            if isinstance(value, Variable):
                related.setdefault(id(value), value)
    return list(related.values())


def destruct(
    function: Function,
    backend: str | EngineSpec = FAST,
    checker=None,
    oracle_factory: Callable[[Function], LivenessOracle] | None = None,
    verify: bool = False,
    collect_decisions: bool = False,
    on_cfg_changed: Callable[[], None] | None = None,
) -> DestructReport:
    """Translate ``function`` out of SSA form in place.

    Parameters
    ----------
    backend:
        An engine name resolved through :func:`repro.api.registry.get_engine`
        (or a prebuilt :class:`~repro.api.registry.EngineSpec`); see the
        module docs for how capabilities pick the interference path.
    checker:
        A prebuilt :class:`~repro.core.live_checker.FastLivenessChecker`
        for the checker path (e.g. the one a
        :class:`~repro.service.LivenessService` has cached).  It may have
        been prepared for the unsplit CFG; if any edge is split the
        checker's ``notify_cfg_changed`` runs, followed by the optional
        ``on_cfg_changed`` observer (the service counts invalidations
        through it).
    oracle_factory:
        Escape hatch for driving the query-based coalescing through an
        arbitrary oracle (recorders, counters, third-party engines): the
        factory is invoked *after* φ isolation (the stage that grows the
        variable universe) and overrides the engine's own oracle.
    verify:
        Run :func:`~repro.ssadestruct.verify.verify_destructed` on the
        result (off by default so benchmarks time only the translation).
    collect_decisions:
        Record a :class:`~repro.ssadestruct.coalesce.CoalesceDecision` per
        parallel-copy pair for cross-backend differential comparison.
    """
    if isinstance(backend, EngineSpec):
        spec = backend
    else:
        try:
            spec = get_engine(backend)
        except UnknownEngineError as exc:
            raise ValueError(
                f"unknown destruction backend {backend!r}; expected one of "
                f"{available_engines()}"
            ) from exc
    report = DestructReport(backend=spec.name)

    # The one CFG edit of the pipeline, performed before any precomputation
    # is (re)built.
    split = function.split_critical_edges()
    report.critical_edges_split = len(split)
    if split:
        # The prebuilt checker is always invalidated (idempotent if the
        # observer below routes back to it); ``on_cfg_changed`` is an
        # *additional* notification, e.g. for the service's statistics.
        if checker is not None:
            checker.notify_cfg_changed()
        if on_cfg_changed is not None:
            on_cfg_changed()

    counting: CountingOracle | None = None
    if oracle_factory is None and spec.capabilities.supports_edits:
        if checker is None:
            checker = spec.make_oracle(function)
        checker.prepare()
        iso = isolate_phis(
            function,
            defuse=checker.defuse,
            on_variable_changed=checker.notify_variable_changed,
        )
        counting = CountingOracle(checker)
        interference = QueryInterference(
            function,
            counting,
            defuse=checker.defuse,
            # The checker's precomputation already holds the dominator
            # tree of the (split) CFG; no second one is built.
            domtree=checker.precomputation.domtree,
        )
    elif oracle_factory is None and spec.capabilities.per_point_sets:
        iso = isolate_phis(function)
        interference = GraphInterference(function)
    else:
        # The generic query path: the oracle is built after isolation so
        # its view includes the fresh φ resources.
        iso = isolate_phis(function)
        if oracle_factory is not None:
            oracle = oracle_factory(function)
            # A caller may hand back a prebuilt engine; drop any state it
            # accumulated against the pre-split, pre-isolation program
            # (``invalidate`` is the conventional engines' spelling).
            for hook in (
                "notify_cfg_changed",
                "notify_instructions_changed",
                "invalidate",
            ):
                notify = getattr(oracle, hook, None)
                if notify is not None:
                    notify()
        else:
            oracle = spec.make_oracle(function)
        counting = CountingOracle(oracle)
        counting.prepare()
        interference = QueryInterference(
            function, counting, defuse=DefUseChains(function)
        )

    report.phis_isolated = iso.phis_isolated
    report.parallel_copies = iso.parallel_copies
    report.pairs_inserted = iso.pairs_inserted

    # Seed the congruence classes with the (interference-free) φ resources.
    classes = CongruenceClasses()
    for members in iso.phi_classes:
        for member in members:
            classes.register(member, fresh=True)
        for member in members[1:]:
            classes.union(members[0], member)

    coalescing = coalesce_parallel_copies(
        function, classes, interference, collect_decisions=collect_decisions
    )
    report.pairs_coalesced = coalescing.pairs_coalesced
    report.classes_merged = coalescing.classes_merged
    report.interference_tests = coalescing.interference_tests
    report.decisions = coalescing.decisions
    if counting is not None:
        report.liveness_queries = counting.total_queries

    renaming = classes.renaming()
    seen_reps: set[int] = set()
    for representative in renaming.values():
        if id(representative) not in seen_reps:
            seen_reps.add(id(representative))
            report.coalesced_representatives.append(representative)

    lowering = apply_renaming_and_lower(
        function, renaming, NameAllocator(function)
    )
    report.copies_emitted = lowering.copies_emitted
    report.temps_inserted = lowering.temps_inserted
    report.phis_removed = lowering.phis_removed

    if checker is not None:
        # The lowering rewrote instructions wholesale and the function is
        # no longer SSA; whatever per-variable state the checker holds is
        # meaningless now.  Callers that keep the checker around (the
        # service evicts it instead) must not query this function again.
        checker.notify_instructions_changed()

    if verify:
        verify_destructed(function)
    return report
