"""The out-of-SSA driver: split → isolate → coalesce → lower.

:func:`destruct` composes the stages of this package into the paper's
flagship client workload.  The liveness backend is pluggable and is the
experiment:

* ``"fast"`` — interference is decided by Budimlić tests through a
  :class:`~repro.core.live_checker.FastLivenessChecker`; every test is a
  constant number of ``is_live_out`` queries answered by Algorithm 3, and
  the checker's CFG precomputation is built once (after the single CFG
  edit, critical-edge splitting) and survives the whole pass — isolation
  maintains the def–use chains incrementally and routes per-variable
  invalidation through ``notify_variable_changed``, so the per-variable
  :class:`~repro.core.plans.QueryPlan` cache stays warm across the many
  queries each φ resource receives.
* ``"dataflow"`` — the same query-driven coalescing, but the queries hit
  a conventional :class:`~repro.liveness.DataflowLiveness` fixpoint
  (recomputed after isolation, since the universe grew).  Used by the
  differential tests to check the fast checker's answers change nothing.
* ``"graph"`` — the conventional *structure*: build the full interference
  graph eagerly from per-point live sets, then coalesce by edge lookup.
  This is the baseline ``bench/table_destruct.py`` measures against.

All three make identical coalescing decisions (asserted by the fuzz
harness); they differ only in how much work answering them costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.ir.function import Function
from repro.liveness.dataflow import DataflowLiveness
from repro.liveness.oracle import CountingOracle
from repro.ssa.defuse import DefUseChains
from repro.ssadestruct.coalesce import (
    CoalesceDecision,
    CongruenceClasses,
    GraphInterference,
    QueryInterference,
    coalesce_parallel_copies,
)
from repro.ssadestruct.isolate import isolate_phis
from repro.ssadestruct.names import NameAllocator
from repro.ssadestruct.sequential import apply_renaming_and_lower
from repro.ssadestruct.verify import verify_destructed

#: Recognised liveness/interference backends, in reporting order.
BACKENDS = ("fast", "dataflow", "graph")


@dataclass
class DestructReport:
    """Everything one :func:`destruct` run did, for tests and benchmarks."""

    backend: str = "fast"
    critical_edges_split: int = 0
    phis_isolated: int = 0
    parallel_copies: int = 0
    pairs_inserted: int = 0
    pairs_coalesced: int = 0
    classes_merged: int = 0
    interference_tests: int = 0
    #: Individual liveness queries issued (0 for the ``graph`` backend,
    #: which precomputes instead of querying).
    liveness_queries: int = 0
    copies_emitted: int = 0
    temps_inserted: int = 0
    phis_removed: int = 0
    decisions: list[CoalesceDecision] = field(default_factory=list)

    @property
    def coalesced_fraction(self) -> float:
        """Share of parallel-copy pairs that needed no actual copy."""
        if not self.pairs_inserted:
            return 0.0
        return self.pairs_coalesced / self.pairs_inserted


def destruct(
    function: Function,
    backend: str = "fast",
    checker=None,
    verify: bool = False,
    collect_decisions: bool = False,
    on_cfg_changed: Callable[[], None] | None = None,
) -> DestructReport:
    """Translate ``function`` out of SSA form in place.

    Parameters
    ----------
    backend:
        ``"fast"``, ``"dataflow"`` or ``"graph"`` (see the module docs).
    checker:
        A prebuilt :class:`~repro.core.live_checker.FastLivenessChecker`
        for the ``"fast"`` backend (e.g. the one a
        :class:`~repro.service.LivenessService` has cached).  It may have
        been prepared for the unsplit CFG; if any edge is split the
        checker's ``notify_cfg_changed`` runs, followed by the optional
        ``on_cfg_changed`` observer (the service counts invalidations
        through it).
    verify:
        Run :func:`~repro.ssadestruct.verify.verify_destructed` on the
        result (off by default so benchmarks time only the translation).
    collect_decisions:
        Record a :class:`~repro.ssadestruct.coalesce.CoalesceDecision` per
        parallel-copy pair for cross-backend differential comparison.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown destruction backend {backend!r}; expected one of {BACKENDS}"
        )
    report = DestructReport(backend=backend)

    # The one CFG edit of the pipeline, performed before any precomputation
    # is (re)built.
    split = function.split_critical_edges()
    report.critical_edges_split = len(split)
    if split:
        # The prebuilt checker is always invalidated (idempotent if the
        # observer below routes back to it); ``on_cfg_changed`` is an
        # *additional* notification, e.g. for the service's statistics.
        if checker is not None:
            checker.notify_cfg_changed()
        if on_cfg_changed is not None:
            on_cfg_changed()

    counting: CountingOracle | None = None
    if backend == "fast":
        if checker is None:
            from repro.core.live_checker import FastLivenessChecker

            checker = FastLivenessChecker(function)
        checker.prepare()
        iso = isolate_phis(
            function,
            defuse=checker.defuse,
            on_variable_changed=checker.notify_variable_changed,
        )
        counting = CountingOracle(checker)
        interference = QueryInterference(
            function,
            counting,
            defuse=checker.defuse,
            # The checker's precomputation already holds the dominator
            # tree of the (split) CFG; no second one is built.
            domtree=checker.precomputation.domtree,
        )
    elif backend == "dataflow":
        iso = isolate_phis(function)
        counting = CountingOracle(DataflowLiveness(function))
        counting.prepare()
        interference = QueryInterference(
            function, counting, defuse=DefUseChains(function)
        )
    else:  # graph
        iso = isolate_phis(function)
        interference = GraphInterference(function)

    report.phis_isolated = iso.phis_isolated
    report.parallel_copies = iso.parallel_copies
    report.pairs_inserted = iso.pairs_inserted

    # Seed the congruence classes with the (interference-free) φ resources.
    classes = CongruenceClasses()
    for members in iso.phi_classes:
        for member in members:
            classes.register(member, fresh=True)
        for member in members[1:]:
            classes.union(members[0], member)

    coalescing = coalesce_parallel_copies(
        function, classes, interference, collect_decisions=collect_decisions
    )
    report.pairs_coalesced = coalescing.pairs_coalesced
    report.classes_merged = coalescing.classes_merged
    report.interference_tests = coalescing.interference_tests
    report.decisions = coalescing.decisions
    if counting is not None:
        report.liveness_queries = counting.total_queries

    lowering = apply_renaming_and_lower(
        function, classes.renaming(), NameAllocator(function)
    )
    report.copies_emitted = lowering.copies_emitted
    report.temps_inserted = lowering.temps_inserted
    report.phis_removed = lowering.phis_removed

    if checker is not None:
        # The lowering rewrote instructions wholesale and the function is
        # no longer SSA; whatever per-variable state the checker holds is
        # meaningless now.  Callers that keep the checker around (the
        # service evicts it instead) must not query this function again.
        checker.notify_instructions_changed()

    if verify:
        verify_destructed(function)
    return report
