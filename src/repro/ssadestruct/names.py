"""Fresh-name allocation for the destruction pipeline.

Every variable the pipeline invents — φ-resource copies, sequentialisation
temporaries — must carry a name that (a) is unique within the function so
the printed output still round-trips through the parser, and (b) survives
the textual syntax (letters, digits, dots and underscores only).
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.value import Variable


class NameAllocator:
    """Hands out variable names that are unused in one function."""

    def __init__(self, function: Function) -> None:
        self._taken = {var.name for var in function.variables()}
        self._counters: dict[str, int] = {}

    def fresh(self, stem: str) -> Variable:
        """A new :class:`Variable` named ``<stem><N>`` for the smallest free N."""
        counter = self._counters.get(stem, 0)
        while True:
            name = f"{stem}{counter}"
            counter += 1
            if name not in self._taken:
                break
        self._counters[stem] = counter
        self._taken.add(name)
        return Variable(name)
