"""Renaming and parallel-copy sequentialisation: the lowering stage.

Once coalescing has settled the congruence classes, leaving SSA form is
mechanical:

1. every φ is deleted — isolation guaranteed its result and operands sit
   in one class, so after renaming the φ would read and write a single
   variable;
2. every variable is renamed to its class representative, signature
   included;
3. every :class:`~repro.ir.instruction.ParallelCopy` is lowered in place:
   pairs whose destination and source renamed to the same variable vanish
   (these are the coalesced copies), the remainder is ordered into plain
   ``copy`` instructions by the classic worklist algorithm —
   :func:`repro.ssa.parallel_copy.sequentialize` — which emits a copy
   whose destination is no longer needed as a source until only cycles
   remain, then breaks each cycle with one temporary (the swap problem).

The output is an ordinary, φ-free, parallel-copy-free function; it is no
longer SSA (class representatives are written in several places), which
is the whole point of the translation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.function import Function
from repro.ir.instruction import Instruction, Opcode, ParallelCopy
from repro.ir.value import Value, Variable
from repro.ssa.parallel_copy import sequentialize
from repro.ssadestruct.names import NameAllocator


@dataclass
class LoweringReport:
    """Statistics of one renaming + sequentialisation run."""

    copies_emitted: int = 0
    pairs_dropped: int = 0
    temps_inserted: int = 0
    phis_removed: int = 0


def apply_renaming_and_lower(
    function: Function,
    renaming: dict[int, Variable],
    alloc: NameAllocator | None = None,
) -> LoweringReport:
    """Leave SSA form in place: rename classes, drop φs, lower copies."""
    report = LoweringReport()
    alloc = alloc if alloc is not None else NameAllocator(function)

    def rename(value: Value) -> Value:
        if isinstance(value, Variable):
            return renaming.get(id(value), value)
        return value

    # 1. φs first: after renaming they would be self-referential no-ops.
    for block in function:
        for phi in block.phis():
            block.remove(phi)
            report.phis_removed += 1

    # 2. Rename every remaining def and use, the signature included.
    function.parameters = [rename(param) for param in function.parameters]
    for block in function:
        for inst in block.instructions:
            if isinstance(inst, ParallelCopy):
                continue  # handled pair-wise below
            for index, operand in enumerate(inst.operands):
                replacement = rename(operand)
                if replacement is not operand:
                    inst.operands[index] = replacement
            if inst.result is not None:
                replacement = renaming.get(id(inst.result))
                if replacement is not None:
                    inst.result = replacement

    # 3. Lower each parallel copy where it stands.
    for block in function:
        for inst in list(block.instructions):
            if not isinstance(inst, ParallelCopy):
                continue
            pairs: list[tuple[Variable, Value]] = []
            for dest, src in inst.pairs:
                new_dest = renaming.get(id(dest), dest)
                new_src = rename(src)
                if new_dest is new_src:
                    report.pairs_dropped += 1  # coalesced away
                    continue
                pairs.append((new_dest, new_src))
            position = block.instructions.index(inst)
            block.remove(inst)
            if not pairs:
                continue

            temps_before = _TempCounter()

            def make_temp() -> Variable:
                temps_before.count += 1
                return alloc.fresh("swap")

            ordered = sequentialize(pairs, make_temp)
            report.temps_inserted += temps_before.count
            for dest, src in ordered:
                block.insert(
                    position,
                    Instruction(Opcode.COPY, result=dest, operands=[src]),
                )
                position += 1
                report.copies_emitted += 1
    return report


class _TempCounter:
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0
