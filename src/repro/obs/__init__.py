"""repro.obs — observability for the liveness-serving stack.

Request-scoped tracing, a metrics registry with latency histograms, and
wire-drivable introspection, threaded through all five layers (query
core, :class:`~repro.service.LivenessService`, the API clients, the
protocol, and the sharded/wire serving layer) without ever influencing
a response.  See DESIGN.md's "Observability" chapter for the span
points, label dimensions and the response-invariance argument.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
    to_prometheus,
)
from repro.obs.runtime import Observability
from repro.obs.tracing import Span, Tracer, current_span

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "current_span",
    "metric_key",
    "to_prometheus",
]
