"""The metrics half of :mod:`repro.obs`: counters, gauges, histograms.

A :class:`MetricsRegistry` is a named, labelled family of instruments:

* **counters** — :class:`~repro.utils.AtomicCounter`, monotone event
  counts (engine precomputations, slow requests);
* **gauges** — :class:`Gauge`, a settable level with a high-water mark
  (wire queue depth);
* **histograms** — :class:`Histogram`, fixed-bucket latency
  distributions from which p50/p90/p99 are derived without storing
  samples.

Every instrument is addressed by ``(name, labels)`` — e.g.
``registry.histogram("lock.read.wait_seconds", shard="3")`` — and the
canonical key ``name{shard=3}`` (labels key-sorted) is what snapshots
and the Prometheus exposition render.  Lookups are get-or-create: the
first caller builds the instrument under the registry lock, later
callers hit a lock-free dict probe, and hot paths may keep the returned
handle to skip even that.

Everything here is **exact under threads** (each update is one locked
read-modify-write, so a hammer test can assert totals to the unit) and
**response-invariant by construction**: instruments record, they never
feed answers back into the serving path.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Iterable, Mapping

from repro.utils import AtomicCounter

#: Default histogram bucket upper bounds, in seconds: ~exponential from
#: 10µs to 10s, the range wire requests and lock waits actually span.
#: Values above the last bound land in an implicit overflow bucket.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def metric_key(name: str, labels: Mapping[str, object]) -> str:
    """Canonical instrument key: ``name{k=v,...}`` with keys sorted."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Gauge:
    """A settable level that remembers its high-water mark."""

    __slots__ = ("_lock", "_value", "_high_water")

    def __init__(self, value: float = 0.0) -> None:
        self._lock = threading.Lock()
        self._value = value
        self._high_water = value

    @property
    def value(self) -> float:
        return self._value

    @property
    def high_water(self) -> float:
        """The largest value ever set (or reached via :meth:`inc`)."""
        return self._high_water

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            if value > self._high_water:
                self._high_water = value

    def inc(self, delta: float = 1.0) -> None:
        with self._lock:
            self._value += delta
            if self._value > self._high_water:
                self._high_water = self._value

    def dec(self, delta: float = 1.0) -> None:
        self.inc(-delta)

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0
            self._high_water = 0.0

    def __repr__(self) -> str:
        return f"Gauge(value={self._value}, high_water={self._high_water})"


class Histogram:
    """A fixed-bucket distribution; exact counts, derivable percentiles.

    ``boundaries`` are ascending bucket *upper* bounds; an observation
    lands in the first bucket whose bound is ≥ the value, or in the
    implicit overflow bucket past the last bound.  One short lock per
    ``observe`` keeps bucket counts, the total count and the sum
    mutually consistent — a hammer from N threads must find
    ``sum(bucket_counts) == count == observations made``, exactly.
    """

    __slots__ = ("_lock", "_boundaries", "_counts", "_sum", "_count")

    def __init__(self, boundaries: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"boundaries must be strictly ascending: {bounds!r}")
        self._lock = threading.Lock()
        self._boundaries = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self._sum = 0.0
        self._count = 0

    @property
    def boundaries(self) -> tuple[float, ...]:
        return self._boundaries

    def observe(self, value: float) -> None:
        """Record one observation (typically a duration in seconds)."""
        index = bisect_left(self._boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> list[int]:
        """Consistent per-bucket counts (last entry is the overflow)."""
        with self._lock:
            return list(self._counts)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0–100), interpolated within its bucket.

        Uses one consistent locked snapshot, walks the cumulative bucket
        counts to the bucket containing rank ``q% × count``, and
        interpolates linearly between the bucket's bounds (the first
        bucket's lower bound is 0; the overflow bucket reports the last
        finite boundary — there is nothing to interpolate toward).
        Cumulative counts make the result monotone in ``q``, so
        ``percentile(50) <= percentile(99)`` always holds.  Returns 0.0
        when empty.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = (q / 100.0) * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self._boundaries):
                    return self._boundaries[-1]
                lower = self._boundaries[index - 1] if index else 0.0
                upper = self._boundaries[index]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self._boundaries[-1]

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self._boundaries) + 1)
            self._sum = 0.0
            self._count = 0

    def as_dict(self) -> dict:
        """JSON-safe snapshot: bounds, counts (incl. overflow), count, sum."""
        with self._lock:
            return {
                "boundaries": list(self._boundaries),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
            }

    def __repr__(self) -> str:
        return f"Histogram(count={self._count}, sum={self._sum:.6f})"


class MetricsRegistry:
    """Named, labelled counters, gauges and histograms in one place."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: key → (kind, name, sorted label items, instrument)
        self._instruments: dict[str, tuple[str, str, tuple, object]] = {}

    def _get_or_create(self, kind: str, name: str, labels: dict, factory):
        key = metric_key(name, labels)
        entry = self._instruments.get(key)  # lock-free fast path
        if entry is None:
            with self._lock:
                entry = self._instruments.get(key)
                if entry is None:
                    entry = (kind, name, tuple(sorted(labels.items())), factory())
                    self._instruments[key] = entry
        if entry[0] != kind:
            raise ValueError(
                f"metric {key!r} is a {entry[0]}, requested as a {kind}"
            )
        return entry[3]

    def counter(self, name: str, **labels) -> AtomicCounter:
        """The counter registered under ``(name, labels)``."""
        return self._get_or_create("counter", name, labels, AtomicCounter)

    def register_counter(
        self, name: str, counter: AtomicCounter, **labels
    ) -> AtomicCounter:
        """Expose an *existing* counter under ``(name, labels)``.

        This is the zero-overhead instrumentation path: a component that
        already maintains an :class:`AtomicCounter` (``ServiceStats``)
        registers the very same object, so snapshots see its live value
        without the hot path paying a second locked add per event.
        Re-registering a key rebinds it (the newest owner wins).
        """
        key = metric_key(name, labels)
        with self._lock:
            self._instruments[key] = (
                "counter",
                name,
                tuple(sorted(labels.items())),
                counter,
            )
        return counter

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge registered under ``(name, labels)``."""
        return self._get_or_create("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        **labels,
    ) -> Histogram:
        """The histogram registered under ``(name, labels)``."""
        return self._get_or_create(
            "histogram", name, labels, lambda: Histogram(buckets)
        )

    def snapshot(self) -> dict:
        """Canonical JSON-safe snapshot: key-sorted maps per instrument kind.

        The snapshot is a *copy* — mutating it cannot reach back into
        the live instruments, and (being plain dicts/lists/numbers) it
        survives a protocol round trip losslessly.
        """
        with self._lock:
            entries = list(self._instruments.items())
        counters: dict[str, int] = {}
        gauges: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        for key, (kind, _name, _labels, instrument) in entries:
            if kind == "counter":
                counters[key] = int(instrument)
            elif kind == "gauge":
                gauges[key] = {
                    "value": instrument.value,
                    "high_water": instrument.high_water,
                }
            else:
                histograms[key] = instrument.as_dict()
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def reset(self) -> None:
        """Zero every instrument (registrations and handles stay valid)."""
        with self._lock:
            entries = list(self._instruments.values())
        for _kind, _name, _labels, instrument in entries:
            instrument.reset()

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry(instruments={len(self._instruments)})"


_PROM_NAME = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "repro_" + _PROM_NAME.sub("_", name)


def _prom_labels(labels: tuple, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every instrument in ``registry``.

    Counters render as ``repro_<name>_total``, gauges as two series
    (value and ``_high_water``), histograms in the standard cumulative
    ``_bucket{le=...}`` / ``_sum`` / ``_count`` form.
    """
    with registry._lock:
        entries = sorted(registry._instruments.items())
    lines: list[str] = []
    seen_types: set[str] = set()

    def typeline(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for _key, (kind, name, labels, instrument) in entries:
        if kind == "counter":
            prom = _prom_name(name) + "_total"
            typeline(prom, "counter")
            lines.append(f"{prom}{_prom_labels(labels)} {int(instrument)}")
        elif kind == "gauge":
            prom = _prom_name(name)
            typeline(prom, "gauge")
            lines.append(f"{prom}{_prom_labels(labels)} {instrument.value}")
            hw = prom + "_high_water"
            typeline(hw, "gauge")
            lines.append(f"{hw}{_prom_labels(labels)} {instrument.high_water}")
        else:
            prom = _prom_name(name)
            typeline(prom, "histogram")
            snap = instrument.as_dict()
            cumulative = 0
            for bound, count in zip(snap["boundaries"], snap["counts"]):
                cumulative += count
                le = 'le="{}"'.format(bound)
                lines.append(f"{prom}_bucket{_prom_labels(labels, le)} {cumulative}")
            le_inf = 'le="+Inf"'
            lines.append(
                f"{prom}_bucket{_prom_labels(labels, le_inf)} {snap['count']}"
            )
            lines.append(f"{prom}_sum{_prom_labels(labels)} {snap['sum']}")
            lines.append(f"{prom}_count{_prom_labels(labels)} {snap['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
