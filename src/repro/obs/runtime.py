"""The :class:`Observability` facade each layer of the stack plugs into.

One object bundles the three seams the tentpole needs:

* a :class:`~repro.obs.metrics.MetricsRegistry` for counters, gauges
  and latency histograms;
* a :class:`~repro.obs.tracing.Tracer` for request-scoped span trees;
* the **monotonic clock injection seam** (``clock``) both of them share,
  so tests can freeze time and the differential harness can prove that
  enabling observability changes no response byte.

Plus the slow-request side: :meth:`Observability.emit_slow_request`
routes an over-threshold request's trace tree to registered hooks (or
the ``repro.obs`` logger when none are registered) — never ``print``.

Layers accept ``obs=None`` and default to a private instance, so unit
tests see clean metrics and independent services never share counters;
wiring one shared instance through client + server is exactly how an
application gets a whole-stack snapshot.
"""

from __future__ import annotations

import logging
import time
from typing import Callable

from repro.obs.metrics import MetricsRegistry, to_prometheus
from repro.obs.tracing import Span, Tracer

logger = logging.getLogger("repro.obs")


class Observability:
    """Metrics registry + tracer + clock, as one pluggable unit."""

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        tracing: bool = True,
        trace_capacity: int = 64,
    ) -> None:
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock, capacity=trace_capacity, enabled=tracing)
        self._slow_hooks: list[Callable[[dict], None]] = []

    # -- convenience passthroughs ---------------------------------------
    def counter(self, name: str, **labels):
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels):
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels):
        return self.metrics.histogram(name, **labels)

    def span(self, name: str, **attributes):
        return self.tracer.span(name, **attributes)

    def request_trace(self, name: str, trace_id: str | None = None, **attributes):
        return self.tracer.request_trace(name, trace_id=trace_id, **attributes)

    def snapshot(self) -> dict:
        """Canonical JSON metrics snapshot (see MetricsRegistry.snapshot)."""
        return self.metrics.snapshot()

    def prometheus(self) -> str:
        """Prometheus text exposition of the current metrics."""
        return to_prometheus(self.metrics)

    # -- slow-request reporting -----------------------------------------
    def on_slow_request(self, hook: Callable[[dict], None]) -> None:
        """Register a hook receiving each slow request's report dict.

        The report carries ``duration_seconds``, the configured
        ``threshold_seconds``, and (when the request was traced) the
        full ``trace`` timing tree.
        """
        self._slow_hooks.append(hook)

    def emit_slow_request(
        self,
        duration: float,
        threshold: float,
        trace_root: Span | None = None,
        **context,
    ) -> None:
        """Report one over-threshold request to hooks, or the logger.

        Hook failures are swallowed (logged at debug): the serving path
        must never die because a reporting callback did.
        """
        report = {
            "duration_seconds": duration,
            "threshold_seconds": threshold,
            **context,
        }
        if trace_root is not None:
            report["trace"] = trace_root.tree()
        self.counter("obs.slow_requests").add(1)
        if self._slow_hooks:
            for hook in self._slow_hooks:
                try:
                    hook(report)
                except Exception:  # noqa: BLE001 — reporting must not raise
                    logger.debug("slow-request hook failed", exc_info=True)
        else:
            logger.warning("slow request: %s", report)

    def __repr__(self) -> str:
        return (
            f"Observability(metrics={len(self.metrics)}, "
            f"tracing={self.tracer.enabled})"
        )
