"""Request-scoped tracing: one request in, one structured timing tree out.

A :class:`Tracer` hands out :class:`Span` trees.  The client opens a
root span per request (:meth:`Tracer.request_trace`); every layer it
passes through — dispatch, shard-lock acquisition, checker-cache lookup,
the kernel query itself — brackets its work in :meth:`Tracer.span`.
Nesting is tracked with a :mod:`contextvars` context variable, so the
tree assembles itself without any layer knowing about the others, and
concurrent requests on different threads (the :class:`WireServer`
worker pool) never see each other's spans.

Two properties matter more than the feature itself:

* **response invariance** — spans only *read* the injected monotonic
  clock and *write* to the tracer's record buffer; nothing here can
  alter a response.  The PR-5 differential harness runs with tracing
  enabled to prove it.
* **negligible cost when idle** — with no active trace, ``span()``
  checks one context variable and yields a shared no-op; no clock
  reads, no allocation beyond the generator frame.

Trace ids are deterministic (a per-tracer ``itertools.count``) unless a
caller supplies one explicitly — e.g. propagated off the wire envelope.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator

#: The innermost open span for the *current* logical context (thread /
#: task).  Module-level so independent Tracer instances cannot nest
#: into each other's trees by accident: a span opened while a different
#: tracer's trace is active simply no-ops.
_ACTIVE_SPAN: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)

#: How many finished traces a tracer retains (oldest evicted first).
DEFAULT_TRACE_CAPACITY = 64


class Span:
    """One timed region: name, attributes, duration, child spans."""

    __slots__ = ("name", "trace_id", "attributes", "start", "end", "children")

    def __init__(self, name: str, trace_id: str, start: float, **attributes) -> None:
        self.name = name
        self.trace_id = trace_id
        self.attributes = attributes
        self.start = start
        self.end: float | None = None
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def as_dict(self) -> dict:
        """JSON-safe rendering of the span subtree rooted here."""
        node = {
            "name": self.name,
            "duration_seconds": self.duration,
        }
        if self.attributes:
            node["attributes"] = dict(self.attributes)
        if self.children:
            node["children"] = [child.as_dict() for child in self.children]
        return node

    def tree(self) -> dict:
        """The whole timing tree with its trace id, wire/log ready."""
        return {"trace_id": self.trace_id, "root": self.as_dict()}

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        state = f"{self.duration * 1e3:.3f}ms" if self.end is not None else "open"
        return f"Span({self.name!r}, trace_id={self.trace_id!r}, {state})"


class Tracer:
    """Builds span trees for requests and retains the finished ones.

    ``clock`` is the monotonic-clock seam: tests inject a fake clock to
    make durations deterministic, and the differential harness relies on
    the fact that *nothing else* in the tracer touches ambient state.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        capacity: int = DEFAULT_TRACE_CAPACITY,
        enabled: bool = True,
    ) -> None:
        self._clock = clock
        self.enabled = enabled
        self._lock = threading.Lock()
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._auto_ids = itertools.count(1)

    # -- root spans ------------------------------------------------------
    @contextmanager
    def request_trace(self, name: str, trace_id: str | None = None, **attributes):
        """Open a root span for one request; record the tree on exit.

        ``trace_id`` is honoured when the caller propagates one (say,
        off a wire envelope); otherwise a deterministic local id is
        minted.  When the tracer is disabled *and* no explicit id was
        supplied, this is a no-op yielding ``None`` — but an explicit id
        always produces a trace, so wire callers asking to be traced
        get their tree even against a quiet default tracer.
        """
        if not self.enabled and trace_id is None:
            yield None
            return
        if trace_id is None:
            trace_id = f"local-{next(self._auto_ids)}"
        root = Span(name, trace_id, self._clock(), **attributes)
        token = _ACTIVE_SPAN.set(root)
        try:
            yield root
        finally:
            root.end = self._clock()
            _ACTIVE_SPAN.reset(token)
            with self._lock:
                self._finished.append(root)

    # -- child spans -----------------------------------------------------
    @contextmanager
    def span(self, name: str, **attributes):
        """Bracket a timed region under the current trace, if any.

        Without an active trace this yields ``None`` after a single
        context-variable read — the instrumented hot paths stay hot.
        """
        parent = _ACTIVE_SPAN.get()
        if parent is None:
            yield None
            return
        child = Span(name, parent.trace_id, self._clock(), **attributes)
        parent.children.append(child)
        token = _ACTIVE_SPAN.set(child)
        try:
            yield child
        finally:
            child.end = self._clock()
            _ACTIVE_SPAN.reset(token)

    # -- retained traces -------------------------------------------------
    def finished_traces(self) -> list[Span]:
        """Finished root spans, oldest first (bounded by capacity)."""
        with self._lock:
            return list(self._finished)

    def find_trace(self, trace_id: str) -> Span | None:
        """The most recent finished trace with this id, if retained."""
        with self._lock:
            for root in reversed(self._finished):
                if root.trace_id == trace_id:
                    return root
        return None

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()


def current_span() -> Span | None:
    """The innermost open span in this context, or ``None``."""
    return _ACTIVE_SPAN.get()
