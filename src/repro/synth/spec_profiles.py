"""SPEC2000 CINT benchmark profiles (Tables 1 and 2 of the paper).

The paper evaluates ten integer SPEC2000 benchmarks compiled by the LAO
code generator.  We cannot run that compiler, but the paper itself
publishes the structural statistics of the workload (Table 1) and the
query counts of the SSA-destruction pass (Table 2).  This module encodes
those published numbers and provides generators that synthesise procedure
populations whose block-count distribution matches each benchmark's
profile, so the benchmark harness can regenerate the tables with the same
row structure and compare measured columns against the paper's.

Scaling: generating all 4 823 procedures per run would make the pytest
benchmarks take far too long in pure Python, so the harness generates a
scaled-down population per benchmark (``scale`` procedures) while keeping
the per-procedure size distribution faithful; EXPERIMENTS.md records the
scale used for each table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.frontend.compile import compile_source
from repro.ir.function import Function
from repro.synth.program_gen import ProgramGeneratorConfig, random_program_source


@dataclass(frozen=True)
class BenchmarkProfile:
    """Published per-benchmark statistics (Tables 1 and 2)."""

    name: str
    #: Table 2: number of compiled procedures.
    procedures: int
    #: Table 1: average number of basic blocks per procedure.
    avg_blocks: float
    #: Table 1: total number of basic blocks.
    sum_blocks: int
    #: Table 1: percentage of procedures with at most 32 blocks.
    pct_blocks_le_32: float
    #: Table 1: percentage of procedures with at most 64 blocks.
    pct_blocks_le_64: float
    #: Table 1: maximum block count.
    max_blocks: int
    #: Table 1: uses-per-variable CDF (% of variables with ≤ 1, 2, 3, 4 uses).
    pct_uses_le: tuple[float, float, float, float]
    #: Table 2: native (data-flow) precomputation cycles per procedure.
    native_precompute_cycles: float
    #: Table 2: new (checker) precomputation cycles per procedure.
    new_precompute_cycles: float
    #: Table 2: precomputation speed-up reported by the paper.
    precompute_speedup: float
    #: Table 2: number of liveness queries during SSA destruction.
    queries: int
    #: Table 2: native cycles per query.
    native_query_cycles: float
    #: Table 2: new cycles per query.
    new_query_cycles: float
    #: Table 2: query "speed-up" (below 1: the checker's query is slower).
    query_speedup: float
    #: Table 2: combined speed-up (precomputation + queries).
    combined_speedup: float


#: The ten benchmarks of the paper, in table order.
SPEC_PROFILES: tuple[BenchmarkProfile, ...] = (
    BenchmarkProfile(
        "164.gzip", 82, 33.35, 2735, 69.51, 85.36, 51,
        (65.64, 86.38, 92.81, 95.94),
        174000.82, 55054.62, 3.12, 90659, 86.84, 162.23, 0.53, 1.16,
    ),
    BenchmarkProfile(
        "175.vpr", 225, 34.45, 7752, 68.88, 84.44, 75,
        (70.36, 88.90, 93.93, 96.28),
        116963.18, 54291.50, 2.17, 55670, 85.71, 179.38, 0.48, 1.41,
    ),
    BenchmarkProfile(
        "176.gcc", 2019, 38.96, 78666, 72.85, 86.03, 422,
        (73.99, 87.81, 92.42, 94.84),
        205923.64, 67310.79, 3.03, 1109202, 88.17, 339.54, 0.26, 1.00,
    ),
    BenchmarkProfile(
        "181.mcf", 26, 20.31, 528, 84.61, 100.00, 46,
        (66.91, 83.50, 89.33, 94.46),
        65544.73, 35696.62, 1.85, 2369, 84.09, 190.37, 0.44, 1.39,
    ),
    BenchmarkProfile(
        "186.crafty", 109, 69.28, 7551, 59.63, 76.14, 620,
        (72.98, 90.09, 93.85, 95.75),
        437037.94, 156418.57, 2.78, 858121, 81.07, 166.14, 0.49, 0.73,
    ),
    BenchmarkProfile(
        "197.parser", 323, 23.60, 7623, 84.82, 93.49, 96,
        (65.12, 86.75, 94.26, 96.62),
        85194.79, 40392.45, 2.13, 38719, 86.54, 177.81, 0.49, 1.54,
    ),
    BenchmarkProfile(
        "254.gap", 852, 32.89, 28020, 67.60, 87.44, 156,
        (70.46, 85.95, 91.26, 94.54),
        191000.39, 55515.27, 3.45, 245540, 87.38, 168.82, 0.52, 2.08,
    ),
    BenchmarkProfile(
        "255.vortex", 923, 26.46, 24425, 77.57, 90.68, 254,
        (65.99, 90.80, 95.02, 96.97),
        71444.18, 42651.30, 1.67, 88554, 85.09, 187.21, 0.45, 1.32,
    ),
    BenchmarkProfile(
        "256.bzip2", 74, 22.97, 1700, 78.37, 91.89, 36,
        (69.89, 89.89, 94.47, 96.17),
        137544.10, 40178.87, 3.45, 10100, 95.00, 184.86, 0.51, 2.32,
    ),
    BenchmarkProfile(
        "300.twolf", 190, 56.97, 10825, 59.47, 77.36, 165,
        (69.71, 87.59, 93.23, 95.92),
        446186.87, 94197.44, 4.76, 184621, 94.89, 193.81, 0.49, 1.92,
    ),
)

#: Totals row of Tables 1/2 (for reporting convenience).
TOTAL_PROFILE = BenchmarkProfile(
    "Total", 4823, 35.21, 169825, 72.71, 87.18, 620,
    (71.30, 87.85, 92.76, 95.31),
    177655.50, 60375.69, 2.94, 2683555, 86.09, 241.06, 0.36, 1.16,
)


def profile_by_name(name: str) -> BenchmarkProfile:
    """Look up a profile by benchmark name (e.g. ``"176.gcc"``)."""
    for profile in SPEC_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown benchmark {name!r}")


# ----------------------------------------------------------------------
# Block-count sampling
# ----------------------------------------------------------------------
def sample_block_count(rng: random.Random, profile: BenchmarkProfile) -> int:
    """Draw a procedure block count matching the profile's distribution.

    The paper only publishes the mean, two CDF points (≤32, ≤64) and the
    maximum, so the sampler uses a log-normal shape — the textbook model
    for procedure sizes — whose median is tuned to hit the ≤32 percentile
    and whose spread is tuned to the mean, then clips at the published
    maximum.  The Table 1 benchmark asserts that the *measured* statistics
    of the generated population land near the published columns.
    """
    import math

    # Choose sigma so that P(X <= 32) matches the published percentile for
    # a log-normal with the published mean:  mean = exp(mu + sigma^2/2).
    mean = profile.avg_blocks
    target = max(min(profile.pct_blocks_le_32 / 100.0, 0.995), 0.05)
    # Solve for sigma with a small fixed-point search (the relationship is
    # monotone in sigma for the sizes involved).
    best_sigma = 0.8
    best_error = float("inf")
    for step in range(5, 30):
        sigma = step / 10.0
        mu = math.log(mean) - sigma * sigma / 2.0
        z = (math.log(32) - mu) / sigma
        cdf = 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
        error = abs(cdf - target)
        if error < best_error:
            best_error = error
            best_sigma = sigma
    sigma = best_sigma
    mu = math.log(mean) - sigma * sigma / 2.0
    value = int(round(rng.lognormvariate(mu, sigma)))
    return max(3, min(value, profile.max_blocks))


def _config_for_statements(
    statements: int, target_blocks: int, rng: random.Random
) -> ProgramGeneratorConfig:
    """Generator knobs for a given top-level statement budget."""
    return ProgramGeneratorConfig(
        num_statements=max(1, statements),
        max_depth=2 if target_blocks < 40 else 3,
        num_variables=min(4 + target_blocks // 10, 12),
        assign_weight=0.34,
        if_weight=0.26,
        while_weight=0.20,
        dowhile_weight=0.06,
        print_weight=0.07,
        call_weight=0.07,
    )


def generate_function_with_blocks(
    rng: random.Random,
    target_blocks: int,
    name: str,
    max_blocks: int | None = None,
    attempts: int = 4,
) -> Function:
    """Generate one SSA-form function with roughly ``target_blocks`` blocks.

    Program size is controlled indirectly (through the number of
    control-flow statements), so the generator compiles a candidate,
    measures the actual block count and re-scales the statement budget
    until it lands within ~35 % of the target (or attempts run out, in
    which case the closest candidate wins).  An optional hard ``max_blocks``
    cap mirrors the per-benchmark maxima of Table 1.
    """
    statements = max(1, round(target_blocks / 6))
    best: Function | None = None
    best_error = float("inf")
    for _ in range(attempts):
        config = _config_for_statements(statements, target_blocks, rng)
        source = random_program_source(rng, config, name=name)
        function = next(iter(compile_source(source, verify=False)))
        blocks = len(function.blocks)
        over_cap = max_blocks is not None and blocks > max_blocks
        error = abs(blocks - target_blocks) / max(target_blocks, 1)
        if not over_cap and error < best_error:
            best, best_error = function, error
        if not over_cap and error <= 0.35:
            break
        # Re-scale the statement budget proportionally to the miss.
        ratio = target_blocks / max(blocks, 1)
        statements = max(1, round(statements * ratio)) or 1
        if over_cap and statements > 1:
            statements -= 1
    if best is None:
        # Every attempt blew through the cap: fall back to the smallest
        # possible program so the cap is honoured.
        config = _config_for_statements(1, target_blocks, rng)
        source = random_program_source(rng, config, name=name)
        best = next(iter(compile_source(source, verify=False)))
    return best


#: One benchmark procedure in this many is generated over an *irreducible*
#: CFG.  The paper's §6.1 found 60 irreducible back edges across all of
#: SPEC2000 CINT — rare but present — and a workload without any would
#: never exercise the checker's loop-forest fallback (the multi-candidate
#: ``T_q`` loop of Algorithm 3), leaving that path untested by the tables.
IRREDUCIBLE_PERIOD = 12


def generate_benchmark_functions(
    profile: BenchmarkProfile,
    scale: int,
    seed: int = 0,
) -> list[Function]:
    """Generate ``scale`` SSA-form functions shaped like one benchmark.

    The block counts are drawn from :func:`sample_block_count`; most
    bodies come from the terminating program generator and are compiled
    through the normal front-end + SSA pipeline (with a feedback loop that
    keeps the realised block counts close to the sampled targets), and
    every :data:`IRREDUCIBLE_PERIOD`-th procedure is instead generated
    over an irreducible CFG so the population, like SPEC, is not purely
    reducible.
    """
    rng = random.Random((hash(profile.name) & 0xFFFF) * 7919 + seed)
    functions: list[Function] = []
    for index in range(scale):
        target_blocks = sample_block_count(rng, profile)
        name = f"proc_{profile.name.replace('.', '_')}_{index}"
        if index % IRREDUCIBLE_PERIOD == IRREDUCIBLE_PERIOD - 1:
            functions.append(
                _irreducible_procedure(rng, target_blocks, name)
            )
            continue
        functions.append(
            generate_function_with_blocks(
                rng,
                target_blocks,
                name=name,
                max_blocks=int(profile.max_blocks * 1.2),
            )
        )
    return functions


def _irreducible_procedure(
    rng: random.Random, target_blocks: int, name: str
) -> Function:
    """One procedure over an (almost certainly) irreducible CFG.

    Uses the random-CFG function generator with irreducibility enabled,
    retrying a few times because tiny graphs occasionally stay reducible
    after the goto-like edges are added; a reducible straggler is kept
    rather than looping forever (the regression test asserts the
    *population* contains irreducible members, not every sample).
    """
    from repro.cfg.reducibility import is_reducible
    from repro.synth.random_function import random_ssa_function

    blocks = max(6, min(target_blocks, 60))
    best = None
    for _ in range(8):
        function = random_ssa_function(
            rng,
            num_blocks=blocks,
            num_variables=4,
            instructions_per_block=4,
            force_irreducible=True,
            name=name,
        )
        # Without φs the procedure would record no destruction queries at
        # all, defeating the purpose of including it in the workload.
        if function.phis() and not is_reducible(function.build_cfg()):
            return function
        if best is None or (function.phis() and not best.phis()):
            best = function
    return best
