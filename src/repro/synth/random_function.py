"""Random IR functions over random CFGs.

These functions are used by the liveness differential tests: they do not
need to terminate (they are never executed), but they must be valid strict
SSA and should exhibit the full variety of shapes the checker has to deal
with — loop-carried φs, variables live across many blocks, variables with a
single local use, dead definitions, parameters, and (optionally)
irreducible control flow.

The generator first builds a random CFG, then emits non-SSA code over a
small pool of named variables (each block assigns a few and uses a few),
then runs SSA construction, which inserts the φs.  The terminators follow
the CFG: one successor → ``jump``, two → ``branch`` on a generated value;
CFG nodes with more than two successors are therefore rejected at
generation time (the CFG generator only produces ≤ 2 for the shapes used
here).
"""

from __future__ import annotations

import random

from repro.cfg.graph import ControlFlowGraph
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.value import Constant, Variable
from repro.ssa.construction import construct_ssa
from repro.synth.random_cfg import random_cfg, random_irreducible_cfg, random_reducible_cfg

_BINOPS = ("add", "sub", "mul", "xor", "and", "or", "cmplt", "cmpeq", "max")


def random_ssa_function(
    rng: random.Random,
    num_blocks: int = 8,
    num_variables: int = 4,
    instructions_per_block: int = 3,
    allow_irreducible: bool = True,
    force_irreducible: bool = False,
    name: str = "synthetic",
) -> Function:
    """Generate a strict-SSA function over a random CFG.

    ``num_variables`` is the size of the pre-SSA named-variable pool; after
    construction each of them typically splits into several SSA versions
    joined by φs.  ``force_irreducible`` requests the dedicated
    irreducible-CFG generator instead of the occasional mix (callers that
    must exercise the loop-forest fallback use it; tiny graphs may still
    come out reducible, so check if it matters).
    """
    if force_irreducible:
        graph = random_irreducible_cfg(rng, max(num_blocks, 4))
    elif allow_irreducible:
        graph = random_cfg(rng, num_blocks)
    else:
        graph = random_reducible_cfg(rng, num_blocks)
    function = _populate(rng, graph, num_variables, instructions_per_block, name)
    construct_ssa(function)
    return function


def _populate(
    rng: random.Random,
    graph: ControlFlowGraph,
    num_variables: int,
    instructions_per_block: int,
    name: str,
) -> Function:
    pool = [Variable(f"v{index}") for index in range(num_variables)]
    builder = FunctionBuilder(name, parameters=[f"p{index}" for index in range(2)])
    params = list(builder.function.parameters)

    blocks = {}
    entry_node = graph.entry
    entry_block = builder.function.block("entry")
    blocks[entry_node] = entry_block
    for node in graph.nodes():
        if node == entry_node:
            continue
        blocks[node] = builder.add_block(f"b{node}")

    # Seed every pool variable in the entry block so later uses are never
    # completely undefined (SSA construction would otherwise wire in Undef,
    # which is legal but makes the workload less interesting).
    builder.set_insertion_point(entry_block)
    for variable in pool:
        source = rng.choice(params + [Constant(rng.randrange(64))])
        builder.copy(source, result=variable)

    for node in graph.nodes():
        block = blocks[node]
        builder.set_insertion_point(block)
        available = pool + params
        for _ in range(rng.randrange(instructions_per_block + 1)):
            kind = rng.random()
            if kind < 0.55:
                target = rng.choice(pool)
                left = rng.choice(available)
                right = (
                    rng.choice(available)
                    if rng.random() < 0.7
                    else Constant(rng.randrange(16))
                )
                builder.binop(rng.choice(_BINOPS), left, right, result=target)
            elif kind < 0.75:
                target = rng.choice(pool)
                builder.copy(rng.choice(available), result=target)
            elif kind < 0.9:
                builder.store(Constant(rng.randrange(8)), rng.choice(available))
            else:
                target = rng.choice(pool)
                builder.call(
                    f"ext{rng.randrange(4)}",
                    [rng.choice(available) for _ in range(rng.randrange(3))],
                    result=target,
                )
        successors = graph.successors(node)
        if not successors:
            builder.ret(rng.choice(available))
        elif len(successors) == 1:
            builder.jump(blocks[successors[0]].name)
        elif len(successors) == 2:
            condition = builder.binop(
                "cmplt", rng.choice(available), rng.choice(available)
            )
            builder.branch(condition, blocks[successors[0]].name, blocks[successors[1]].name)
        else:
            # Chain extra successors through nested branches on fresh values
            # so arbitrary out-degrees remain expressible.
            remaining = [blocks[succ].name for succ in successors]
            while len(remaining) > 2:
                helper = builder.add_block()
                condition = builder.binop(
                    "cmpeq", rng.choice(available), Constant(rng.randrange(4))
                )
                builder.branch(condition, remaining.pop(), helper.name)
                builder.set_insertion_point(helper)
            condition = builder.binop(
                "cmplt", rng.choice(available), rng.choice(available)
            )
            builder.branch(condition, remaining[0], remaining[1])
    return builder.function
