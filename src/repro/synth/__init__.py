"""Synthetic workload generation.

The paper evaluates on SPEC2000 CINT compiled by an industrial compiler;
neither is available here, so this package produces the closest synthetic
equivalents (see the substitution table in ``DESIGN.md``):

* :mod:`repro.synth.random_cfg` — random reducible and irreducible
  control-flow graphs at the graph level, used to exercise the CFG
  analyses and the checker on shapes no structured front-end would emit.
* :mod:`repro.synth.random_function` — random IR functions over such CFGs
  (non-SSA, then converted), used by the liveness differential tests.
* :mod:`repro.synth.program_gen` — random *terminating* mini-language
  programs, used by the interpreter-based semantic property tests and the
  benchmark harness.
* :mod:`repro.synth.spec_profiles` — the per-benchmark statistics the paper
  publishes in Tables 1 and 2, plus generators that synthesise procedure
  populations matching those block-count and uses-per-variable profiles.
"""

from repro.synth.program_gen import ProgramGeneratorConfig, random_program_source
from repro.synth.random_cfg import (
    random_cfg,
    random_irreducible_cfg,
    random_reducible_cfg,
)
from repro.synth.random_function import random_ssa_function
from repro.synth.spec_profiles import (
    SPEC_PROFILES,
    BenchmarkProfile,
    generate_benchmark_functions,
    generate_function_with_blocks,
    sample_block_count,
)

__all__ = [
    "random_cfg",
    "random_reducible_cfg",
    "random_irreducible_cfg",
    "random_ssa_function",
    "ProgramGeneratorConfig",
    "random_program_source",
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "sample_block_count",
    "generate_benchmark_functions",
    "generate_function_with_blocks",
]
