"""Random, terminating mini-language programs.

The interpreter-based property tests need programs that both exercise the
whole pipeline (front-end → SSA → destruction) and finish in bounded time
for any input.  This generator therefore emits only structurally bounded
loops: every ``while`` uses a dedicated counter variable with a small
constant bound and a mandatory increment as its first body statement, so
the interpreter can run the program before and after a transformation and
compare traces.

Size is controlled by :class:`ProgramGeneratorConfig`; the defaults produce
functions in the "average SPEC procedure" range reported in the paper's
Table 1 (a few dozen basic blocks after lowering).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class ProgramGeneratorConfig:
    """Knobs for :func:`random_program_source`."""

    #: Number of top-level statements in the function body.
    num_statements: int = 8
    #: Maximum statement nesting depth (if/while inside if/while …).
    max_depth: int = 3
    #: Number of mutable named variables the program works with.
    num_variables: int = 5
    #: Upper bound of every generated loop counter (keeps execution short).
    loop_bound: int = 4
    #: Probability weights for statement kinds at depth < max_depth.
    assign_weight: float = 0.40
    if_weight: float = 0.22
    while_weight: float = 0.18
    dowhile_weight: float = 0.06
    print_weight: float = 0.08
    call_weight: float = 0.06


def random_program_source(
    rng: random.Random,
    config: ProgramGeneratorConfig | None = None,
    name: str = "generated",
    num_params: int = 2,
) -> str:
    """Return the source text of one random, terminating function."""
    config = config or ProgramGeneratorConfig()
    generator = _Generator(rng, config)
    return generator.generate(name, num_params)


class _Generator:
    def __init__(self, rng: random.Random, config: ProgramGeneratorConfig) -> None:
        self.rng = rng
        self.config = config
        self.params = []
        self.variables: list[str] = []
        self.counter_index = 0

    # ------------------------------------------------------------------
    def generate(self, name: str, num_params: int) -> str:
        self.params = [f"p{i}" for i in range(num_params)]
        self.variables = [f"v{i}" for i in range(self.config.num_variables)]
        lines = [f"func {name}({', '.join(self.params)}) {{"]
        # Initialise every variable so uses are always defined.
        for index, var in enumerate(self.variables):
            lines.append(f"    {var} = {self._initial_value(index)};")
        for _ in range(self.config.num_statements):
            lines.extend(self._statement(depth=0, indent=1))
        lines.append(f"    return {self._expression(2)};")
        lines.append("}")
        return "\n".join(lines)

    def _initial_value(self, index: int) -> str:
        if self.params and index % 2 == 0:
            return self.rng.choice(self.params)
        return str(self.rng.randrange(16))

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _statement(self, depth: int, indent: int) -> list[str]:
        pad = "    " * indent
        config = self.config
        if depth >= config.max_depth:
            return [f"{pad}{self._simple_statement()}"]
        weights = [
            ("assign", config.assign_weight),
            ("if", config.if_weight),
            ("while", config.while_weight),
            ("dowhile", config.dowhile_weight),
            ("print", config.print_weight),
            ("call", config.call_weight),
        ]
        total = sum(weight for _, weight in weights)
        pick = self.rng.random() * total
        cumulative = 0.0
        kind = "assign"
        for candidate, weight in weights:
            cumulative += weight
            if pick <= cumulative:
                kind = candidate
                break

        if kind == "assign":
            return [f"{pad}{self._simple_statement()}"]
        if kind == "print":
            return [f"{pad}print({self._expression(2)});"]
        if kind == "call":
            target = self.rng.choice(self.variables)
            return [f"{pad}{target} = helper({self._expression(1)}, {self._expression(1)});"]
        if kind == "if":
            lines = [f"{pad}if ({self._condition()}) {{"]
            for _ in range(self.rng.randrange(1, 3)):
                lines.extend(self._statement(depth + 1, indent + 1))
            if self.rng.random() < 0.5:
                lines.append(f"{pad}}} else {{")
                for _ in range(self.rng.randrange(1, 3)):
                    lines.extend(self._statement(depth + 1, indent + 1))
            lines.append(f"{pad}}}")
            return lines
        # Bounded loops: a dedicated counter guarantees termination.
        counter = f"c{self.counter_index}"
        self.counter_index += 1
        bound = self.rng.randrange(1, self.config.loop_bound + 1)
        if kind == "while":
            lines = [f"{pad}{counter} = 0;"]
            lines.append(f"{pad}while ({counter} < {bound}) {{")
            lines.append(f"{pad}    {counter} = {counter} + 1;")
            for _ in range(self.rng.randrange(1, 3)):
                lines.extend(self._statement(depth + 1, indent + 1))
            if self.rng.random() < 0.2:
                lines.append(f"{pad}    if ({self._condition()}) {{ break; }}")
            elif self.rng.random() < 0.2:
                lines.append(f"{pad}    if ({self._condition()}) {{ continue; }}")
            lines.append(f"{pad}}}")
            return lines
        # do-while
        lines = [f"{pad}{counter} = 0;"]
        lines.append(f"{pad}do {{")
        lines.append(f"{pad}    {counter} = {counter} + 1;")
        for _ in range(self.rng.randrange(1, 3)):
            lines.extend(self._statement(depth + 1, indent + 1))
        lines.append(f"{pad}}} while ({counter} < {bound});")
        return lines

    def _simple_statement(self) -> str:
        target = self.rng.choice(self.variables)
        return f"{target} = {self._expression(2)};"

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _expression(self, depth: int) -> str:
        if depth <= 0 or self.rng.random() < 0.35:
            return self._atom()
        op = self.rng.choice(["+", "-", "*", "/", "%", "&", "|", "^"])
        return f"({self._expression(depth - 1)} {op} {self._expression(depth - 1)})"

    def _condition(self) -> str:
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        combine = self.rng.random()
        simple = f"{self._atom()} {op} {self._atom()}"
        if combine < 0.15:
            other_op = self.rng.choice(["<", ">", "=="])
            logic = self.rng.choice(["&&", "||"])
            return f"{simple} {logic} {self._atom()} {other_op} {self._atom()}"
        return simple

    def _atom(self) -> str:
        choices = self.variables + self.params
        if self.rng.random() < 0.3:
            return str(self.rng.randrange(16))
        return self.rng.choice(choices)
