"""Random control-flow graph generators.

Two families are produced:

* *reducible* CFGs, built the way structured programs build them: starting
  from a single block, repeatedly expand a random block into a sequence, an
  if/else diamond, or a while loop.  Every back edge then targets a
  dominator of its source by construction, and the edges-per-block ratio
  stays in the ~1.3 region the paper reports for SPEC (§6.1).
* *irreducible* CFGs, obtained from a reducible skeleton by adding a small
  number of "goto-like" edges that jump into the middle of a loop from
  outside, creating multi-entry loops.  The paper found 60 such edges in
  the whole of SPEC2000 CINT; the generator keeps them similarly rare but
  lets tests dial the amount up.

Nodes are consecutive integers with 0 as the entry, which keeps the graphs
cheap to generate in bulk for property-based testing.
"""

from __future__ import annotations

import random

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.reducibility import is_reducible


def random_reducible_cfg(
    rng: random.Random,
    num_blocks: int,
    loop_bias: float = 0.3,
) -> ControlFlowGraph:
    """Generate a reducible CFG with exactly ``num_blocks`` nodes.

    ``loop_bias`` is the probability that an expansion step introduces a
    loop rather than straight-line/branching structure.
    """
    if num_blocks < 1:
        raise ValueError("num_blocks must be at least 1")
    # Successor lists; node 0 is the entry.  We repeatedly pick an existing
    # edge (or a block with no successor) and expand structure into it.
    succs: dict[int, list[int]] = {0: []}

    def new_node() -> int:
        node = len(succs)
        succs[node] = []
        return node

    while len(succs) < num_blocks:
        remaining = num_blocks - len(succs)
        node = rng.randrange(len(succs))
        choice = rng.random()
        if not succs[node]:
            # Dead-end block: extend it with a successor (keeps a single
            # exit region growing rather than fanning out endlessly).
            succs[node].append(new_node())
            continue
        if choice < loop_bias and remaining >= 2:
            # Wrap a new while-style loop around one outgoing edge:
            # node -> header -> body -> header, header -> old target.
            target = rng.choice(succs[node])
            header = new_node()
            body = new_node()
            succs[node][succs[node].index(target)] = header
            succs[header].extend([body, target])
            succs[body].append(header)
        elif choice < loop_bias + 0.45 and remaining >= 2:
            # If/else diamond on one outgoing edge.
            target = rng.choice(succs[node])
            then_node = new_node()
            else_node = new_node()
            succs[node][succs[node].index(target)] = then_node
            succs[node].append(else_node)
            succs[then_node].append(target)
            succs[else_node].append(target)
        else:
            # Simple sequence split: node -> fresh -> old target.
            target = rng.choice(succs[node])
            middle = new_node()
            succs[node][succs[node].index(target)] = middle
            succs[middle].append(target)

    graph = ControlFlowGraph()
    for node in range(len(succs)):
        graph.add_node(node)
    graph.set_entry(0)
    for node, targets in succs.items():
        for target in targets:
            graph.add_edge(node, target)
    graph.validate()
    return graph


def random_irreducible_cfg(
    rng: random.Random,
    num_blocks: int,
    extra_edges: int = 2,
) -> ControlFlowGraph:
    """Generate an (almost certainly) irreducible CFG.

    Starts from a reducible skeleton with loops and adds ``extra_edges``
    jumps from a block into a dominance-unrelated block, which creates
    loops with several entries.  The result is not *guaranteed* irreducible
    for tiny graphs; callers that need the property should check
    :func:`repro.cfg.reducibility.is_reducible` (the helper retries a few
    times to make that rare).
    """
    for _ in range(8):
        graph = random_reducible_cfg(rng, num_blocks, loop_bias=0.45)
        nodes = graph.nodes()
        for _ in range(extra_edges):
            source = rng.choice(nodes)
            target = rng.choice(nodes)
            if (
                source != target
                and target != graph.entry
                and not graph.has_edge(source, target)
            ):
                graph.add_edge(source, target)
        if not is_reducible(graph):
            return graph
    return graph


def random_cfg(
    rng: random.Random,
    num_blocks: int,
    irreducible_probability: float = 0.15,
) -> ControlFlowGraph:
    """Generate a CFG, occasionally irreducible (like real benchmark code)."""
    if num_blocks >= 4 and rng.random() < irreducible_probability:
        return random_irreducible_cfg(rng, num_blocks)
    return random_reducible_cfg(rng, num_blocks)
