"""A small SSA intermediate representation.

The liveness algorithms only need a CFG, def–use chains and a dominator
tree, but a credible library has to offer the layer a compiler back-end
actually works with: named values, instructions, φ-functions, basic blocks
and functions, plus a textual format and a verifier enforcing the paper's
prerequisites (strict SSA / dominance property, Section 2.2).

The IR is deliberately conventional:

* :class:`~repro.ir.value.Variable` — a scalar variable; in SSA form it has
  exactly one defining instruction.
* :class:`~repro.ir.instruction.Instruction` — ``result ← opcode(operands)``
  plus branch/jump/return terminators.
* :class:`~repro.ir.instruction.Phi` — φ-functions with per-predecessor
  incoming values, whose operands are *used in the predecessor blocks*
  exactly as Definition 1 of the paper prescribes.
* :class:`~repro.ir.block.BasicBlock` and
  :class:`~repro.ir.function.Function` — containers; ``Function.build_cfg``
  projects the block-level control-flow graph the analyses run on.
* :mod:`repro.ir.printer` / :mod:`repro.ir.parser` — a round-trippable
  textual syntax used by the examples and tests.
* :mod:`repro.ir.verify` — checks CFG sanity, φ well-formedness and the
  SSA dominance property.
"""

from repro.ir.block import BasicBlock
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instruction import Instruction, Opcode, ParallelCopy, Phi
from repro.ir.module import Module
from repro.ir.parser import parse_function, parse_module
from repro.ir.printer import print_function, print_module
from repro.ir.value import Constant, Undef, Value, Variable
from repro.ir.verify import IRVerificationError, verify_function, verify_ssa

__all__ = [
    "Value",
    "Variable",
    "Constant",
    "Undef",
    "Instruction",
    "Phi",
    "ParallelCopy",
    "Opcode",
    "BasicBlock",
    "Function",
    "Module",
    "FunctionBuilder",
    "print_function",
    "print_module",
    "parse_function",
    "parse_module",
    "verify_function",
    "verify_ssa",
    "IRVerificationError",
]
