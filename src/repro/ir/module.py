"""Modules: named collections of functions.

A module is little more than an ordered dictionary of functions, but having
one keeps the front-end, the workload generator and the benchmark harness
symmetrical with a real compiler pipeline, where passes run module-wide and
report per-function statistics (as the paper's Tables 1 and 2 do).
"""

from __future__ import annotations

from typing import Iterator

from repro.ir.function import Function


class Module:
    """An ordered collection of functions."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}

    def add_function(self, function: Function) -> Function:
        """Register ``function``; names must be unique within the module."""
        if function.name in self.functions:
            raise ValueError(f"duplicate function name {function.name!r}")
        self.functions[function.name] = function
        return function

    def function(self, name: str) -> Function:
        """Look up a function by name."""
        return self.functions[name]

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __len__(self) -> int:
        return len(self.functions)

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __repr__(self) -> str:
        return f"Module({self.name!r}, functions={len(self.functions)})"
