"""Functions and the projection to the block-level CFG."""

from __future__ import annotations

from typing import Iterator

from repro.cfg.graph import ControlFlowGraph
from repro.ir.block import BasicBlock
from repro.ir.instruction import Instruction, Opcode, Phi
from repro.ir.value import Variable


class Function:
    """A function: an ordered collection of basic blocks plus parameters.

    The first block added is the entry block.  Parameters are modelled as
    variables defined by ``param`` instructions that the builder places at
    the top of the entry block, which keeps the "every variable has a
    defining instruction" invariant uniform.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: dict[str, BasicBlock] = {}
        self.parameters: list[Variable] = []

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        """The entry block (the first block added)."""
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        return next(iter(self.blocks.values()))

    def add_block(self, name: str) -> BasicBlock:
        """Create and register a new block with a unique name."""
        if name in self.blocks:
            raise ValueError(f"duplicate block name {name!r}")
        block = BasicBlock(name)
        block.function = self
        self.blocks[name] = block
        return block

    def block(self, name: str) -> BasicBlock:
        """Look up a block by name."""
        return self.blocks[name]

    def remove_block(self, name: str) -> None:
        """Remove a block (callers must have rewired control flow first)."""
        block = self.blocks.pop(name)
        block.function = None

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def __len__(self) -> int:
        return len(self.blocks)

    def __contains__(self, name: str) -> bool:
        return name in self.blocks

    def __repr__(self) -> str:
        return f"Function({self.name!r}, blocks={len(self.blocks)})"

    # ------------------------------------------------------------------
    # Instruction / variable views
    # ------------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order."""
        for block in self:
            yield from block.instructions

    def variables(self) -> list[Variable]:
        """Every variable defined in the function (parameters first)."""
        result: list[Variable] = []
        seen: set[int] = set()
        for param in self.parameters:
            if id(param) not in seen:
                seen.add(id(param))
                result.append(param)
        for inst in self.instructions():
            for var in inst.defined_variables():
                if id(var) not in seen:
                    seen.add(id(var))
                    result.append(var)
        return result

    def variable_by_name(self, name: str) -> Variable:
        """Find a variable by its (unique, post-SSA) name."""
        for var in self.variables():
            if var.name == name:
                return var
        raise KeyError(f"no variable named {name!r} in function {self.name!r}")

    def phis(self) -> list[Phi]:
        """Every φ-function in the function, in block order."""
        return [inst for inst in self.instructions() if inst.is_phi()]

    # ------------------------------------------------------------------
    # CFG projection and maintenance
    # ------------------------------------------------------------------
    def build_cfg(self) -> ControlFlowGraph:
        """Project the block-level control-flow graph.

        Nodes are block *names* so the graph is independent of IR object
        identity — exactly the variable-independence the precomputation of
        the liveness checker relies on.
        """
        graph = ControlFlowGraph()
        for name in self.blocks:
            graph.add_node(name)
        graph.set_entry(self.entry.name)
        for name, block in self.blocks.items():
            for succ in block.successors():
                graph.add_edge(name, succ)
        return graph

    def predecessors(self, name: str) -> list[str]:
        """Predecessor block names of ``name`` (derived from terminators)."""
        return [
            other.name
            for other in self
            if name in other.successors()
        ]

    def split_critical_edges(self) -> list[str]:
        """Split every critical edge by inserting a fresh forwarding block.

        An edge is critical when its source has several successors and its
        target several predecessors.  SSA destruction requires critical
        edges to be split so φ-copies can be placed on the edge without
        affecting other paths.  Returns the names of the blocks created.
        """
        created: list[str] = []
        counter = 0
        # Predecessor counts, computed once: splitting an edge re-routes it
        # through a fresh forwarding block without changing how many
        # predecessors the original target has, so the counts stay valid
        # throughout the loop (and the quadratic per-edge rescan is avoided).
        pred_count: dict[str, int] = {name: 0 for name in self.blocks}
        for block in self:
            for succ in block.successors():
                pred_count[succ] += 1
        for block in list(self):
            successors = block.successors()
            if len(successors) < 2:
                continue
            terminator = block.terminator()
            assert terminator is not None
            for succ_name in successors:
                succ = self.blocks[succ_name]
                if pred_count[succ_name] < 2:
                    continue
                # Insert a forwarding block on the critical edge.
                while True:
                    new_name = f"split.{block.name}.{succ_name}.{counter}"
                    counter += 1
                    if new_name not in self.blocks:
                        break
                new_block = self.add_block(new_name)
                new_block.append(Instruction(Opcode.JUMP, targets=[succ_name]))
                terminator.targets = [
                    new_name if target == succ_name else target
                    for target in terminator.targets
                ]
                for phi in succ.phis():
                    if block.name in phi.incoming:
                        phi.rename_predecessor(block.name, new_name)
                created.append(new_name)
        return created
