"""IR and SSA verification.

The liveness checker's correctness argument rests on the paper's
prerequisites (Sections 1 and 2.2):

* the CFG has a single entry with no incoming edges and every block is
  reachable;
* every block ends in exactly one terminator and φ-functions form a prefix
  of their block;
* each φ has exactly one incoming value per CFG predecessor;
* the program is in *strict* SSA form: every variable has a single
  definition and that definition dominates every use — where a φ use counts
  as a use at the end of the corresponding predecessor (Definition 1).

``verify_function`` checks the structural part, ``verify_ssa`` additionally
checks the dominance property.  Every workload produced by the front-end or
the synthetic generators is run through these before being fed to the
analyses, so the differential tests compare engines only on valid inputs.
"""

from __future__ import annotations

from repro.cfg.dominance import DominatorTree
from repro.ir.function import Function
from repro.ir.instruction import Phi
from repro.ir.value import Variable


class IRVerificationError(ValueError):
    """Raised when a function violates an IR or SSA invariant."""


def verify_function(function: Function) -> None:
    """Check the structural (non-SSA) invariants of ``function``.

    Raises :class:`IRVerificationError` describing the first violation.
    """
    if not function.blocks:
        raise IRVerificationError(f"function {function.name!r} has no blocks")
    cfg = function.build_cfg()
    try:
        cfg.validate()
    except ValueError as exc:
        raise IRVerificationError(f"{function.name}: {exc}") from exc

    for block in function:
        terminator = block.terminator()
        if terminator is None:
            raise IRVerificationError(
                f"{function.name}:{block.name}: block has no terminator"
            )
        for inst in block.instructions[:-1]:
            if inst.is_terminator():
                raise IRVerificationError(
                    f"{function.name}:{block.name}: terminator in the middle "
                    f"of the block: {inst}"
                )
        seen_non_phi = False
        for inst in block.instructions:
            if inst.is_phi():
                if seen_non_phi:
                    raise IRVerificationError(
                        f"{function.name}:{block.name}: phi after non-phi "
                        f"instruction: {inst}"
                    )
            else:
                seen_non_phi = True
        for target in getattr(terminator, "targets", []):
            if target not in function:
                raise IRVerificationError(
                    f"{function.name}:{block.name}: branch to unknown block "
                    f"{target!r}"
                )

    preds = {name: cfg.predecessors(name) for name in cfg.nodes()}
    for block in function:
        for phi in block.phis():
            expected = set(preds[block.name])
            actual = set(phi.incoming)
            if expected != actual:
                raise IRVerificationError(
                    f"{function.name}:{block.name}: phi predecessors {sorted(actual)} "
                    f"do not match CFG predecessors {sorted(expected)}"
                )
            if not expected:
                raise IRVerificationError(
                    f"{function.name}:{block.name}: phi in a block without "
                    f"predecessors"
                )


def verify_ssa(function: Function) -> None:
    """Check strict-SSA invariants on top of :func:`verify_function`."""
    verify_function(function)
    cfg = function.build_cfg()
    domtree = DominatorTree(cfg)

    # Single static definition per variable.  Duplicate definitions are
    # reported before the weaker backlink/name checks so the error message
    # names the actual SSA violation.
    definitions: dict[int, str] = {}
    names: dict[str, Variable] = {}
    for block in function:
        for inst in block.instructions:
            for var in inst.defined_variables():
                if id(var) in definitions:
                    raise IRVerificationError(
                        f"{function.name}: variable {var.name!r} defined more than "
                        f"once (blocks {definitions[id(var)]!r} and {block.name!r})"
                    )
                definitions[id(var)] = block.name
    for block in function:
        for inst in block.instructions:
            for var in inst.defined_variables():
                if var.name in names and names[var.name] is not var:
                    raise IRVerificationError(
                        f"{function.name}: two distinct variables share the name "
                        f"{var.name!r}"
                    )
                names[var.name] = var
                if var.definition is not inst:
                    raise IRVerificationError(
                        f"{function.name}: variable {var.name!r} does not point back "
                        f"to its defining instruction"
                    )

    # Dominance property: definition dominates every use.
    for block in function:
        for inst in block.instructions:
            if isinstance(inst, Phi):
                for pred, value in inst.incoming.items():
                    if not isinstance(value, Variable):
                        continue
                    def_block = _definition_block(value, function)
                    if not domtree.dominates(def_block, pred):
                        raise IRVerificationError(
                            f"{function.name}:{block.name}: phi operand "
                            f"{value.name!r} (defined in {def_block!r}) does not "
                            f"dominate predecessor {pred!r}"
                        )
                continue
            for value in inst.operands:
                if not isinstance(value, Variable):
                    continue
                def_block = _definition_block(value, function)
                if def_block == block.name:
                    if not _defined_before_use(block, value, inst):
                        raise IRVerificationError(
                            f"{function.name}:{block.name}: {value.name!r} used "
                            f"before its definition within the block"
                        )
                elif not domtree.strictly_dominates(def_block, block.name):
                    raise IRVerificationError(
                        f"{function.name}:{block.name}: use of {value.name!r} is "
                        f"not dominated by its definition in {def_block!r}"
                    )


def _definition_block(var: Variable, function: Function) -> str:
    if var.definition is None or var.definition.block is None:
        raise IRVerificationError(
            f"{function.name}: variable {var.name!r} has no defining instruction"
        )
    return var.definition.block.name


def _defined_before_use(block, var: Variable, use_inst) -> bool:
    for inst in block.instructions:
        if inst is use_inst:
            return False
        if any(defined is var for defined in inst.defined_variables()):
            return True
    raise IRVerificationError(
        f"{block.name}: instruction not found in its own block"
    )
