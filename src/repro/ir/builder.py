"""A convenience builder for constructing IR functions.

The builder keeps an insertion point (the current block) and offers one
method per opcode, generating fresh variable names on demand.  The mini
front-end, the synthetic program generator, the tests and the examples all
construct IR through this interface, so it doubles as the library's primary
"how do I make a function" API.
"""

from __future__ import annotations

from typing import Iterable

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instruction import Instruction, Opcode, Phi
from repro.ir.value import Constant, Value, Variable


class FunctionBuilder:
    """Builds a :class:`~repro.ir.function.Function` block by block."""

    def __init__(self, name: str, parameters: Iterable[str] = ()) -> None:
        self.function = Function(name)
        self._current: BasicBlock | None = None
        self._temp_counter = 0
        self._block_counter = 0
        self._used_names: set[str] = set()
        param_names = list(parameters)
        if param_names:
            entry = self.add_block("entry")
            self.set_insertion_point(entry)
            for param_name in param_names:
                self.param(param_name)

    # ------------------------------------------------------------------
    # Blocks and insertion point
    # ------------------------------------------------------------------
    def add_block(self, name: str | None = None) -> BasicBlock:
        """Create a new block; a unique name is generated when omitted."""
        if name is None:
            while True:
                name = f"bb{self._block_counter}"
                self._block_counter += 1
                if name not in self.function:
                    break
        return self.function.add_block(name)

    def set_insertion_point(self, block: BasicBlock | str) -> BasicBlock:
        """Subsequent emissions go to ``block`` (given as object or name)."""
        if isinstance(block, str):
            block = self.function.block(block)
        self._current = block
        return block

    @property
    def current_block(self) -> BasicBlock:
        """The block instructions are currently appended to."""
        if self._current is None:
            raise ValueError("no insertion point set; call set_insertion_point")
        return self._current

    def _emit(self, instruction: Instruction) -> Instruction:
        return self.current_block.append(instruction)

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    def fresh_variable(self, hint: str = "t") -> Variable:
        """Return a new variable with a unique name derived from ``hint``."""
        while True:
            name = f"{hint}{self._temp_counter}"
            self._temp_counter += 1
            if name not in self._used_names:
                self._used_names.add(name)
                return Variable(name)

    # ------------------------------------------------------------------
    # Non-terminator instructions
    # ------------------------------------------------------------------
    def param(self, name: str) -> Variable:
        """Declare a function parameter (defined at the top of the entry)."""
        var = Variable(name)
        self._used_names.add(name)
        inst = Instruction(Opcode.PARAM, result=var, detail=name)
        entry = self.function.entry
        position = sum(
            1 for existing in entry.instructions if existing.opcode == Opcode.PARAM
        )
        entry.insert(position, inst)
        self.function.parameters.append(var)
        return var

    def const(self, value: int, result: Variable | None = None) -> Variable:
        """``result ← const value``."""
        result = result if result is not None else self.fresh_variable()
        self._emit(Instruction(Opcode.CONST, result=result, operands=[Constant(value)]))
        return result

    def copy(self, source: Value, result: Variable | None = None) -> Variable:
        """``result ← copy source``."""
        result = result if result is not None else self.fresh_variable()
        self._emit(Instruction(Opcode.COPY, result=result, operands=[source]))
        return result

    def unop(self, op: str, operand: Value, result: Variable | None = None) -> Variable:
        """``result ← op operand`` (e.g. ``neg``, ``not``)."""
        result = result if result is not None else self.fresh_variable()
        self._emit(
            Instruction(Opcode.UNOP, result=result, operands=[operand], detail=op)
        )
        return result

    def binop(
        self,
        op: str,
        left: Value,
        right: Value,
        result: Variable | None = None,
    ) -> Variable:
        """``result ← left op right`` (e.g. ``add``, ``mul``, ``cmplt``)."""
        result = result if result is not None else self.fresh_variable()
        self._emit(
            Instruction(
                Opcode.BINOP, result=result, operands=[left, right], detail=op
            )
        )
        return result

    def call(
        self,
        callee: str,
        args: Iterable[Value] = (),
        result: Variable | None = None,
    ) -> Variable:
        """``result ← call callee(args…)``."""
        result = result if result is not None else self.fresh_variable()
        self._emit(
            Instruction(
                Opcode.CALL, result=result, operands=list(args), detail=callee
            )
        )
        return result

    def load(self, address: Value, result: Variable | None = None) -> Variable:
        """``result ← load address``."""
        result = result if result is not None else self.fresh_variable()
        self._emit(Instruction(Opcode.LOAD, result=result, operands=[address]))
        return result

    def store(self, address: Value, value: Value) -> Instruction:
        """``store address, value`` (no result)."""
        return self._emit(
            Instruction(Opcode.STORE, operands=[address, value])
        )

    def phi(
        self,
        incoming: dict[str, Value] | Iterable[tuple[str, Value]],
        result: Variable | None = None,
    ) -> Variable:
        """``result ← φ(value : pred, …)``."""
        result = result if result is not None else self.fresh_variable()
        self._emit(Phi(result=result, incoming=incoming))
        return result

    # ------------------------------------------------------------------
    # Terminators
    # ------------------------------------------------------------------
    def jump(self, target: BasicBlock | str) -> Instruction:
        """Unconditional branch to ``target``."""
        name = target.name if isinstance(target, BasicBlock) else target
        return self._emit(Instruction(Opcode.JUMP, targets=[name]))

    def branch(
        self,
        condition: Value,
        if_true: BasicBlock | str,
        if_false: BasicBlock | str,
    ) -> Instruction:
        """Conditional branch on ``condition``."""
        true_name = if_true.name if isinstance(if_true, BasicBlock) else if_true
        false_name = if_false.name if isinstance(if_false, BasicBlock) else if_false
        return self._emit(
            Instruction(
                Opcode.BRANCH,
                operands=[condition],
                targets=[true_name, false_name],
            )
        )

    def ret(self, value: Value | None = None) -> Instruction:
        """Return, optionally with a value."""
        operands = [value] if value is not None else []
        return self._emit(Instruction(Opcode.RETURN, operands=operands))
