"""A reference interpreter for the IR.

The interpreter exists for testing, not performance: it executes both
SSA-form functions (φs are evaluated with the usual parallel, lazy,
"on the incoming edge" semantics) and the non-SSA functions produced by SSA
destruction, so the property tests can check that construction and
destruction preserve behaviour on thousands of randomly generated programs
— the strongest end-to-end evidence that the liveness queries driving the
destruction pass were answered correctly.

Semantics are deliberately small and total:

* every value is a Python integer; ``Undef`` reads as 0;
* ``binop``/``unop`` details map to wrapping integer arithmetic and
  comparisons; division and modulo by zero yield 0;
* ``call`` is a deterministic pure function of the callee name and the
  argument values (so traces are reproducible without modelling effects);
* ``load``/``store`` act on a per-execution integer-addressed memory;
* ``branch`` takes the first target on a non-zero condition.

Execution produces an :class:`ExecutionTrace` recording the return value,
the visited block sequence and all observable events (stores and calls),
which is what the differential tests compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.instruction import Instruction, Opcode
from repro.ir.value import Constant, Undef, Value, Variable

_MASK = (1 << 64) - 1


def _wrap(value: int) -> int:
    """Wrap to signed 64-bit, keeping arithmetic total and deterministic."""
    value &= _MASK
    if value >= 1 << 63:
        value -= 1 << 64
    return value


class InterpreterError(RuntimeError):
    """Raised when a program cannot be executed (bad IR or step overflow)."""


@dataclass
class ExecutionTrace:
    """Observable behaviour of one execution."""

    return_value: int | None = None
    blocks: list[str] = field(default_factory=list)
    #: (kind, payload) events: ("store", (address, value)) and
    #: ("call", (callee, args tuple, result)).
    events: list[tuple[str, tuple]] = field(default_factory=list)
    steps: int = 0

    def observable(self) -> tuple:
        """The parts of the trace two equivalent programs must share.

        The visited block sequence is deliberately *excluded*: SSA
        construction/destruction may add forwarding blocks.  Return value
        plus the ordered store/call events capture the semantics.
        """
        return (self.return_value, tuple(self.events))


def execute(
    function: Function,
    args: list[int] | None = None,
    max_steps: int = 100_000,
) -> ExecutionTrace:
    """Run ``function`` on integer arguments and return its trace."""
    args = list(args) if args is not None else []
    env: dict[str, int] = {}
    memory: dict[int, int] = {}
    trace = ExecutionTrace()

    params = function.parameters
    for index, param in enumerate(params):
        env[param.name] = _wrap(args[index]) if index < len(args) else 0

    block = function.entry
    previous_block: str | None = None
    while True:
        trace.blocks.append(block.name)
        # φs execute in parallel using values observed on entry to the block.
        phis = block.phis()
        if phis:
            if previous_block is None:
                raise InterpreterError(
                    f"phi in entry block {block.name!r} cannot be evaluated"
                )
            staged = []
            for phi in phis:
                incoming = phi.incoming_value(previous_block)
                staged.append((phi.result, _read(incoming, env)))
            for result, value in staged:
                env[result.name] = value

        next_block_name: str | None = None
        for inst in block.instructions:
            if inst.is_phi():
                continue
            trace.steps += 1
            if trace.steps > max_steps:
                raise InterpreterError(
                    f"execution exceeded {max_steps} steps (non-terminating?)"
                )
            outcome = _step(inst, env, memory, trace)
            if inst.opcode == Opcode.RETURN:
                trace.return_value = outcome
                return trace
            if inst.is_terminator():
                next_block_name = outcome
                break
        if next_block_name is None:
            raise InterpreterError(
                f"block {block.name!r} fell through without a terminator"
            )
        previous_block = block.name
        block = function.block(next_block_name)


def _read(value: Value, env: dict[str, int]) -> int:
    if isinstance(value, Constant):
        return _wrap(value.value)
    if isinstance(value, Undef):
        return 0
    if isinstance(value, Variable):
        if value.name not in env:
            # A read of a never-written variable can only happen for
            # non-strict programs; treat it like Undef so fuzzing does not
            # have to avoid them, but keep it deterministic.
            return 0
        return env[value.name]
    raise InterpreterError(f"cannot read operand {value!r}")


def _binop(detail: str, left: int, right: int) -> int:
    if detail in ("add", ""):
        return _wrap(left + right)
    if detail == "sub":
        return _wrap(left - right)
    if detail == "mul":
        return _wrap(left * right)
    if detail == "div":
        if right == 0:
            return 0
        quotient = abs(left) // abs(right)
        return _wrap(quotient if (left >= 0) == (right >= 0) else -quotient)
    if detail == "mod":
        if right == 0:
            return 0
        quotient = abs(left) // abs(right)
        if (left >= 0) != (right >= 0):
            quotient = -quotient
        return _wrap(left - quotient * right)
    if detail == "and":
        return _wrap(left & right)
    if detail == "or":
        return _wrap(left | right)
    if detail == "xor":
        return _wrap(left ^ right)
    if detail == "shl":
        return _wrap(left << (right % 64))
    if detail == "shr":
        return _wrap(left >> (right % 64))
    if detail == "cmplt":
        return int(left < right)
    if detail == "cmple":
        return int(left <= right)
    if detail == "cmpgt":
        return int(left > right)
    if detail == "cmpge":
        return int(left >= right)
    if detail == "cmpeq":
        return int(left == right)
    if detail == "cmpne":
        return int(left != right)
    if detail == "min":
        return min(left, right)
    if detail == "max":
        return max(left, right)
    raise InterpreterError(f"unknown binop detail {detail!r}")


def _unop(detail: str, operand: int) -> int:
    if detail in ("neg", ""):
        return _wrap(-operand)
    if detail == "not":
        return int(operand == 0)
    if detail == "bnot":
        return _wrap(~operand)
    if detail == "abs":
        return _wrap(abs(operand))
    raise InterpreterError(f"unknown unop detail {detail!r}")


def _call_result(callee: str, args: tuple[int, ...]) -> int:
    # A deterministic, effect-free stand-in for an external call: mix the
    # callee name and arguments so different calls yield different values.
    accumulator = sum((index + 1) * value for index, value in enumerate(args))
    accumulator += sum(ord(ch) for ch in callee)
    return _wrap(accumulator * 2654435761)


def _step(
    inst: Instruction,
    env: dict[str, int],
    memory: dict[int, int],
    trace: ExecutionTrace,
):
    opcode = inst.opcode
    if opcode == Opcode.PARAM:
        # Parameters were seeded into the environment before execution.
        return None
    if opcode == Opcode.CONST:
        env[inst.result.name] = _read(inst.operands[0], env)
        return None
    if opcode == Opcode.COPY:
        env[inst.result.name] = _read(inst.operands[0], env)
        return None
    if opcode == Opcode.PARCOPY:
        # All sources are read before any destination is written.
        staged = [(dest, _read(src, env)) for dest, src in inst.pairs]
        for dest, value in staged:
            env[dest.name] = value
        return None
    if opcode == Opcode.UNOP:
        env[inst.result.name] = _unop(inst.detail, _read(inst.operands[0], env))
        return None
    if opcode == Opcode.BINOP:
        env[inst.result.name] = _binop(
            inst.detail,
            _read(inst.operands[0], env),
            _read(inst.operands[1], env),
        )
        return None
    if opcode == Opcode.CALL:
        args = tuple(_read(op, env) for op in inst.operands)
        result = _call_result(inst.detail, args)
        trace.events.append(("call", (inst.detail, args, result)))
        env[inst.result.name] = result
        return None
    if opcode == Opcode.LOAD:
        address = _read(inst.operands[0], env)
        env[inst.result.name] = memory.get(address, 0)
        return None
    if opcode == Opcode.STORE:
        address = _read(inst.operands[0], env)
        value = _read(inst.operands[1], env)
        memory[address] = value
        trace.events.append(("store", (address, value)))
        return None
    if opcode == Opcode.JUMP:
        return inst.targets[0]
    if opcode == Opcode.BRANCH:
        condition = _read(inst.operands[0], env)
        return inst.targets[0] if condition != 0 else inst.targets[1]
    if opcode == Opcode.RETURN:
        return _read(inst.operands[0], env) if inst.operands else None
    raise InterpreterError(f"cannot execute opcode {opcode!r}")
