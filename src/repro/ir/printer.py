"""Textual printing of the IR.

The syntax round-trips through :mod:`repro.ir.parser` and looks like::

    function f(a, b) {
    entry:
      t0 = const 1
      t1 = binop.add a, t0
      branch t1, loop, exit
    loop:
      x = phi [t1 : entry] [y : loop]
      y = binop.add x, t0
      branch y, loop, exit
    exit:
      r = phi [t1 : entry] [y : loop]
      return r
    }

Printing exists for three reasons: the examples show readable output, the
tests use round-tripping as a structural invariant, and debugging liveness
queries is vastly easier when a function can be dumped next to the query.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instruction import Instruction, Opcode, ParallelCopy, Phi
from repro.ir.module import Module
from repro.ir.value import Constant, Undef, Value, Variable


def format_value(value: Value) -> str:
    """Render an operand."""
    if isinstance(value, Variable):
        return value.name
    if isinstance(value, Constant):
        return str(value.value)
    if isinstance(value, Undef):
        return "undef"
    raise TypeError(f"unknown value type: {value!r}")


def format_instruction(inst: Instruction) -> str:
    """Render a single instruction (without indentation)."""
    if isinstance(inst, Phi):
        incoming = " ".join(
            f"[{format_value(value)} : {pred}]" for pred, value in inst.incoming.items()
        )
        return f"{inst.result.name} = phi {incoming}"
    if isinstance(inst, ParallelCopy):
        pairs = ", ".join(
            f"{dest.name} <- {format_value(src)}" for dest, src in inst.pairs
        )
        return f"parcopy {pairs}"
    opcode = inst.opcode
    if inst.detail and opcode in {Opcode.BINOP, Opcode.UNOP, Opcode.CALL}:
        opcode = f"{inst.opcode}.{inst.detail}"
    operands = ", ".join(format_value(op) for op in inst.operands)
    if opcode == Opcode.PARAM:
        return f"{inst.result.name} = param"
    if inst.opcode in (Opcode.JUMP, Opcode.BRANCH):
        pieces = []
        if operands:
            pieces.append(operands)
        pieces.extend(inst.targets)
        return f"{opcode} " + ", ".join(pieces)
    if inst.opcode == Opcode.RETURN:
        return f"return {operands}".rstrip()
    if inst.result is not None:
        return f"{inst.result.name} = {opcode} {operands}".rstrip()
    return f"{opcode} {operands}".rstrip()


def print_function(function: Function) -> str:
    """Render a whole function in the textual syntax."""
    params = ", ".join(param.name for param in function.parameters)
    lines = [f"function {function.name}({params}) {{"]
    for block in function:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            if inst.opcode == Opcode.PARAM:
                continue
            lines.append(f"  {format_instruction(inst)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render every function of a module, separated by blank lines."""
    return "\n\n".join(print_function(function) for function in module)
