"""IR values: variables, constants and undefined values.

Variables are the objects liveness talks about.  Before SSA construction a
variable may be assigned in several places; after construction each variable
has a single defining instruction (its ``definition``), which is what allows
the checker to speak of *the* block ``def(a)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for type hints
    from repro.ir.instruction import Instruction


class Value:
    """Base class of everything an instruction may take as an operand."""

    __slots__ = ()

    def is_variable(self) -> bool:
        """True for :class:`Variable` operands (the ones liveness tracks)."""
        return isinstance(self, Variable)


class Constant(Value):
    """An immediate constant operand."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Constant({self.value})"

    def __str__(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Constant", self.value))


class Undef(Value):
    """An explicitly undefined operand (used for φ inputs on paths that
    cannot define the variable; keeps the IR strict)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Undef()"

    def __str__(self) -> str:
        return "undef"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Undef)

    def __hash__(self) -> int:
        return hash("Undef")


class Variable(Value):
    """A scalar program variable.

    Identity semantics: two distinct ``Variable`` objects with the same name
    are different variables.  The textual printer keeps names unique, and
    SSA construction derives new versions as ``base.N``.

    Attributes
    ----------
    name:
        Human-readable name, unique within a function after SSA renaming.
    definition:
        The defining :class:`~repro.ir.instruction.Instruction` once the
        function is in SSA form (``None`` before renaming or for function
        parameters that are modelled as defined by the entry block's
        implicit ``param`` instructions).
    """

    __slots__ = ("name", "definition")

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name
        self.definition: "Instruction | None" = None

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def with_version(self, version: int) -> "Variable":
        """Return a fresh variable named ``<name>.<version>`` (SSA renaming)."""
        return Variable(f"{self.name}.{version}")

    @property
    def base_name(self) -> str:
        """The name with any SSA version suffix stripped."""
        head, _, tail = self.name.rpartition(".")
        if head and tail.isdigit():
            return head
        return self.name
