"""Parsing of the textual IR syntax produced by :mod:`repro.ir.printer`.

The parser is a small hand-written line-oriented parser; it exists so that
tests and examples can express functions (such as the paper's Figure 3
program) as readable text, and so that printing/parsing round-trips can be
used as a structural property test.
"""

from __future__ import annotations

import re

from repro.ir.function import Function
from repro.ir.instruction import Instruction, Opcode, ParallelCopy, Phi
from repro.ir.module import Module
from repro.ir.value import Constant, Undef, Value, Variable


class IRParseError(ValueError):
    """Raised when the textual IR does not conform to the grammar."""


_FUNCTION_RE = re.compile(r"^function\s+([A-Za-z_][\w.]*)\s*\(([^)]*)\)\s*\{$")
_BLOCK_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_ASSIGN_RE = re.compile(r"^([A-Za-z_][\w.]*)\s*=\s*(.+)$")
_PHI_ARG_RE = re.compile(r"\[\s*([^\]:]+?)\s*:\s*([A-Za-z_][\w.]*)\s*\]")


class _FunctionParser:
    """Parses one function's worth of lines."""

    def __init__(self, name: str, param_names: list[str]) -> None:
        self.function = Function(name)
        self.variables: dict[str, Variable] = {}
        self.current = None
        # Parameter instructions are materialised at the top of the first
        # block the text declares (which is the entry block).
        self._pending_params = list(param_names)

    def _variable(self, name: str) -> Variable:
        if name not in self.variables:
            self.variables[name] = Variable(name)
        return self.variables[name]

    def _value(self, token: str) -> Value:
        token = token.strip()
        if token == "undef":
            return Undef()
        if re.fullmatch(r"-?\d+", token):
            return Constant(int(token))
        if re.fullmatch(r"[A-Za-z_][\w.]*", token):
            return self._variable(token)
        raise IRParseError(f"cannot parse operand {token!r}")

    def start_block(self, name: str) -> None:
        if name in self.function:
            self.current = self.function.block(name)
        else:
            self.current = self.function.add_block(name)
        if self._pending_params:
            for position, param_name in enumerate(self._pending_params):
                var = self._variable(param_name)
                inst = Instruction(Opcode.PARAM, result=var, detail=param_name)
                self.current.insert(position, inst)
                self.function.parameters.append(var)
            self._pending_params = []

    def parse_line(self, line: str) -> None:
        if self.current is None:
            raise IRParseError(f"instruction outside any block: {line!r}")
        match = _ASSIGN_RE.match(line)
        if match:
            result_name, rhs = match.groups()
            self._parse_assignment(result_name, rhs.strip())
            return
        self._parse_statement(line)

    # ------------------------------------------------------------------
    def _parse_assignment(self, result_name: str, rhs: str) -> None:
        result = self._variable(result_name)
        head, _, rest = rhs.partition(" ")
        rest = rest.strip()
        opcode, _, detail = head.partition(".")
        if opcode == Opcode.PHI:
            incoming = [
                (pred, self._value(value_text))
                for value_text, pred in _PHI_ARG_RE.findall(rhs)
            ]
            if not incoming:
                raise IRParseError(f"phi without incoming values: {rhs!r}")
            self.current.append(Phi(result=result, incoming=incoming))
            return
        if opcode == Opcode.PARAM:
            inst = Instruction(Opcode.PARAM, result=result, detail=result_name)
            self.current.append(inst)
            self.function.parameters.append(result)
            return
        if opcode == Opcode.CONST:
            self.current.append(
                Instruction(Opcode.CONST, result=result, operands=[self._value(rest)])
            )
            return
        if opcode in (Opcode.COPY, Opcode.LOAD, Opcode.UNOP):
            self.current.append(
                Instruction(
                    opcode,
                    result=result,
                    operands=[self._value(rest)],
                    detail=detail,
                )
            )
            return
        if opcode in (Opcode.BINOP, Opcode.CALL):
            operands = [
                self._value(token) for token in rest.split(",") if token.strip()
            ]
            self.current.append(
                Instruction(opcode, result=result, operands=operands, detail=detail)
            )
            return
        raise IRParseError(f"unknown instruction {rhs!r}")

    def _parse_statement(self, line: str) -> None:
        head, _, rest = line.partition(" ")
        rest = rest.strip()
        opcode, _, detail = head.partition(".")
        if opcode == Opcode.JUMP:
            self.current.append(Instruction(Opcode.JUMP, targets=[rest.strip()]))
            return
        if opcode == Opcode.BRANCH:
            parts = [part.strip() for part in rest.split(",")]
            if len(parts) != 3:
                raise IRParseError(f"branch needs 'cond, t, f': {line!r}")
            self.current.append(
                Instruction(
                    Opcode.BRANCH,
                    operands=[self._value(parts[0])],
                    targets=[parts[1], parts[2]],
                )
            )
            return
        if opcode == Opcode.RETURN:
            operands = [self._value(rest)] if rest else []
            self.current.append(Instruction(Opcode.RETURN, operands=operands))
            return
        if opcode == Opcode.PARCOPY:
            pairs = []
            for chunk in rest.split(","):
                dest_text, arrow, src_text = chunk.partition("<-")
                dest_name = dest_text.strip()
                if not arrow or not re.fullmatch(r"[A-Za-z_][\w.]*", dest_name):
                    raise IRParseError(f"parcopy needs 'dest <- src' pairs: {line!r}")
                pairs.append((self._variable(dest_name), self._value(src_text)))
            self.current.append(ParallelCopy(pairs))
            return
        if opcode == Opcode.STORE:
            parts = [part.strip() for part in rest.split(",")]
            if len(parts) != 2:
                raise IRParseError(f"store needs 'addr, value': {line!r}")
            self.current.append(
                Instruction(
                    Opcode.STORE,
                    operands=[self._value(parts[0]), self._value(parts[1])],
                    detail=detail,
                )
            )
            return
        raise IRParseError(f"cannot parse statement {line!r}")


def parse_function(text: str) -> Function:
    """Parse a single ``function … { … }`` definition."""
    functions = list(_parse_functions(text))
    if len(functions) != 1:
        raise IRParseError(f"expected exactly one function, found {len(functions)}")
    return functions[0]


def parse_module(text: str, name: str = "module") -> Module:
    """Parse any number of function definitions into a module."""
    module = Module(name)
    for function in _parse_functions(text):
        module.add_function(function)
    return module


def _parse_functions(text: str):
    parser: _FunctionParser | None = None
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        match = _FUNCTION_RE.match(line)
        if match:
            if parser is not None:
                raise IRParseError("nested function definition")
            name, params_text = match.groups()
            params = [p.strip() for p in params_text.split(",") if p.strip()]
            parser = _FunctionParser(name, params)
            continue
        if line == "}":
            if parser is None:
                raise IRParseError("unmatched '}'")
            yield parser.function
            parser = None
            continue
        block_match = _BLOCK_RE.match(line)
        if block_match:
            if parser is None:
                raise IRParseError(f"block label outside function: {line!r}")
            parser.start_block(block_match.group(1))
            continue
        if parser is None:
            raise IRParseError(f"instruction outside function: {line!r}")
        parser.parse_line(line)
    if parser is not None:
        raise IRParseError("missing closing '}'")
