"""IR instructions, including φ-functions and terminators.

The instruction set is intentionally small — the liveness algorithms only
care about which variables an instruction defines and uses, and which block
control transfers to — but it is rich enough for the mini front-end, the
synthetic workload generator and the SSA destruction pass to produce
realistic code:

=============  =============================================  ==============
opcode         meaning                                         operands
=============  =============================================  ==============
``param``      function parameter definition                   none
``const``      load an immediate                               Constant
``copy``       register-to-register move                       value
``unop``       unary arithmetic (detail in ``detail``)         value
``binop``      binary arithmetic (detail in ``detail``)        value, value
``call``       opaque call (may use many values)               values…
``load``       opaque memory read                              value
``store``      opaque memory write (no result)                 value, value
``phi``        SSA φ-function                                  per-pred values
``parcopy``    parallel copy (all reads before any write)      per-pair sources
``jump``       unconditional branch                            none
``branch``     conditional branch                              value
``return``     function return                                 optional value
=============  =============================================  ==============

φ-operands follow Definition 1 of the paper: the *i*-th operand of a φ in
block ``b`` is used at the *i*-th predecessor of ``b``, not at ``b`` itself.
That convention is enforced by :mod:`repro.ssa.defuse` which is the single
source of truth for use sites.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.ir.value import Value, Variable

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.block import BasicBlock


class Opcode:
    """String constants for the supported opcodes."""

    PARAM = "param"
    CONST = "const"
    COPY = "copy"
    UNOP = "unop"
    BINOP = "binop"
    CALL = "call"
    LOAD = "load"
    STORE = "store"
    PHI = "phi"
    PARCOPY = "parcopy"
    JUMP = "jump"
    BRANCH = "branch"
    RETURN = "return"

    TERMINATORS = frozenset({JUMP, BRANCH, RETURN})
    ALL = frozenset(
        {
            PARAM,
            CONST,
            COPY,
            UNOP,
            BINOP,
            CALL,
            LOAD,
            STORE,
            PHI,
            PARCOPY,
            JUMP,
            BRANCH,
            RETURN,
        }
    )


class Instruction:
    """A single IR instruction.

    Parameters
    ----------
    opcode:
        One of the :class:`Opcode` constants.
    result:
        The variable defined by the instruction, or ``None``.
    operands:
        The values read by the instruction (excluding φ incoming values,
        which are handled by :class:`Phi`).
    targets:
        Successor block *names* for terminators (one for ``jump``, two for
        ``branch`` in (true, false) order, none for ``return``).
    detail:
        Free-form refinement of the opcode, e.g. ``"add"`` for a ``binop``
        or the callee name for a ``call``.
    """

    def __init__(
        self,
        opcode: str,
        result: Variable | None = None,
        operands: Iterable[Value] = (),
        targets: Iterable[str] = (),
        detail: str = "",
    ) -> None:
        if opcode not in Opcode.ALL:
            raise ValueError(f"unknown opcode {opcode!r}")
        self.opcode = opcode
        self.result = result
        self.operands: list[Value] = list(operands)
        self.targets: list[str] = list(targets)
        self.detail = detail
        self.block: "BasicBlock | None" = None
        self._validate_shape()
        if result is not None:
            result.definition = self

    def _validate_shape(self) -> None:
        if self.opcode == Opcode.JUMP and len(self.targets) != 1:
            raise ValueError("jump needs exactly one target")
        if self.opcode == Opcode.BRANCH and len(self.targets) != 2:
            raise ValueError("branch needs exactly two targets")
        if self.opcode == Opcode.RETURN and self.targets:
            raise ValueError("return takes no targets")
        if self.opcode in Opcode.TERMINATORS and self.result is not None:
            raise ValueError("terminators do not define a result")
        if self.opcode == Opcode.STORE and self.result is not None:
            raise ValueError("store does not define a result")

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    def is_terminator(self) -> bool:
        """True for jump/branch/return."""
        return self.opcode in Opcode.TERMINATORS

    def is_phi(self) -> bool:
        """True for φ-functions."""
        return self.opcode == Opcode.PHI

    def defined_variable(self) -> Variable | None:
        """The variable this instruction defines, if any."""
        return self.result

    def defined_variables(self) -> list[Variable]:
        """Every variable this instruction defines.

        Ordinary instructions define at most one variable (``result``);
        :class:`ParallelCopy` overrides this to return all of its
        destinations.  Analyses that walk definitions should prefer this
        over ``result`` so multi-definition instructions are handled.
        """
        return [self.result] if self.result is not None else []

    def used_variables(self) -> list[Variable]:
        """Variables read by this instruction.

        For φ-functions this returns *all* incoming variables; callers that
        need the per-predecessor attribution of Definition 1 must use
        :class:`Phi.incoming` or the def–use chain module.
        """
        return [op for op in self.operands if isinstance(op, Variable)]

    def replace_uses(self, old: Variable, new: Value) -> int:
        """Replace every operand occurrence of ``old`` by ``new``.

        Returns the number of replacements performed.
        """
        count = 0
        for index, operand in enumerate(self.operands):
            if operand is old:
                self.operands[index] = new
                count += 1
        return count

    def __repr__(self) -> str:
        return f"Instruction({self!s})"

    def __str__(self) -> str:
        from repro.ir.printer import format_instruction

        return format_instruction(self)


class Phi(Instruction):
    """An SSA φ-function ``result ← φ(value₁ : pred₁, …, valueₙ : predₙ)``.

    Incoming values are stored as an ordered mapping from predecessor block
    name to value.  The order follows the block's predecessor list; the
    verifier checks the two stay consistent.
    """

    def __init__(
        self,
        result: Variable,
        incoming: dict[str, Value] | Iterable[tuple[str, Value]] = (),
    ) -> None:
        incoming_pairs = (
            list(incoming.items()) if isinstance(incoming, dict) else list(incoming)
        )
        self.incoming: dict[str, Value] = dict(incoming_pairs)
        super().__init__(
            Opcode.PHI,
            result=result,
            operands=[value for _, value in incoming_pairs],
        )

    def set_incoming(self, pred: str, value: Value) -> None:
        """Set (or overwrite) the value flowing in from predecessor ``pred``."""
        self.incoming[pred] = value
        self.operands = list(self.incoming.values())

    def incoming_value(self, pred: str) -> Value:
        """The value selected when control arrives from ``pred``."""
        return self.incoming[pred]

    def replace_uses(self, old: Variable, new: Value) -> int:
        count = 0
        for pred, value in list(self.incoming.items()):
            if value is old:
                self.incoming[pred] = new
                count += 1
        self.operands = list(self.incoming.values())
        return count

    def rename_predecessor(self, old: str, new: str) -> None:
        """Re-key an incoming edge after a CFG edit (e.g. edge splitting)."""
        if old not in self.incoming:
            raise KeyError(f"phi has no incoming value from {old!r}")
        value = self.incoming.pop(old)
        self.incoming[new] = value
        self.operands = list(self.incoming.values())


class ParallelCopy(Instruction):
    """A parallel copy ``(d₁, …, dₙ) ← (s₁, …, sₙ)``.

    All sources are read before any destination is written — exactly the
    semantics of the copies a φ-function conceptually performs on each
    incoming edge.  SSA destruction (:mod:`repro.ssadestruct`) isolates φs
    by materialising these instructions at the ends of predecessor blocks
    and right after the φ prefix; a later sequentialisation pass lowers
    each one into an equivalent sequence of plain ``copy`` instructions,
    breaking cycles with a temporary.

    Unlike every other instruction, a parallel copy defines *several*
    variables; ``result`` stays ``None`` and :meth:`defined_variables`
    returns the destinations.  Destinations must be pairwise distinct.
    """

    def __init__(self, pairs: Iterable[tuple[Variable, Value]]) -> None:
        pair_list = list(pairs)
        if not pair_list:
            raise ValueError("parallel copy needs at least one (dest, src) pair")
        dests = [dest for dest, _ in pair_list]
        if len({id(dest) for dest in dests}) != len(dests):
            raise ValueError("parallel copy has duplicate destinations")
        self.pairs: list[tuple[Variable, Value]] = pair_list
        super().__init__(
            Opcode.PARCOPY,
            result=None,
            operands=[src for _, src in pair_list],
        )
        for dest, _ in pair_list:
            dest.definition = self

    @property
    def destinations(self) -> list[Variable]:
        """The variables written (in pair order)."""
        return [dest for dest, _ in self.pairs]

    @property
    def sources(self) -> list[Value]:
        """The values read (in pair order)."""
        return [src for _, src in self.pairs]

    def defined_variables(self) -> list[Variable]:
        return self.destinations

    def replace_pairs(self, pairs: Iterable[tuple[Variable, Value]]) -> None:
        """Swap in a new pair list (e.g. after congruence-class renaming)."""
        pair_list = list(pairs)
        if not pair_list:
            raise ValueError("parallel copy needs at least one (dest, src) pair")
        dests = [dest for dest, _ in pair_list]
        if len({id(dest) for dest in dests}) != len(dests):
            raise ValueError("parallel copy has duplicate destinations")
        self.pairs = pair_list
        self.operands = [src for _, src in pair_list]
        for dest, _ in pair_list:
            dest.definition = self

    def replace_uses(self, old: Variable, new: Value) -> int:
        count = 0
        for index, (dest, src) in enumerate(self.pairs):
            if src is old:
                self.pairs[index] = (dest, new)
                count += 1
        self.operands = [src for _, src in self.pairs]
        return count
