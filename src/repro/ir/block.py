"""Basic blocks.

A block is a named sequence of instructions: zero or more φ-functions,
followed by ordinary instructions, terminated by exactly one terminator
(``jump``, ``branch`` or ``return``).  Block successors are derived from
the terminator's targets, so the function-level CFG is always consistent
with the instruction stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.ir.instruction import Instruction, Opcode, Phi

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.function import Function


class BasicBlock:
    """A labelled basic block owned by a :class:`~repro.ir.function.Function`."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("block name must be non-empty")
        self.name = name
        self.instructions: list[Instruction] = []
        self.function: "Function | None" = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def append(self, instruction: Instruction) -> Instruction:
        """Append ``instruction``; φ-functions are inserted after existing φs."""
        if instruction.is_phi():
            position = len(self.phis())
            self.instructions.insert(position, instruction)
        else:
            self.instructions.append(instruction)
        instruction.block = self
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        """Insert ``instruction`` at ``index`` in the instruction list."""
        self.instructions.insert(index, instruction)
        instruction.block = self
        return instruction

    def remove(self, instruction: Instruction) -> None:
        """Remove ``instruction`` from the block."""
        self.instructions.remove(instruction)
        instruction.block = None

    def insert_before_terminator(self, instruction: Instruction) -> Instruction:
        """Insert ``instruction`` just before the terminator (or append).

        SSA destruction uses this to place the parallel copies that realise
        φ-semantics "on the way" to the successor block.
        """
        terminator = self.terminator()
        if terminator is None:
            return self.append(instruction)
        index = self.instructions.index(terminator)
        return self.insert(index, instruction)

    def phis(self) -> list[Phi]:
        """The φ-functions at the head of the block."""
        result = []
        for instruction in self.instructions:
            if instruction.is_phi():
                result.append(instruction)
            else:
                break
        return result

    def non_phi_instructions(self) -> list[Instruction]:
        """Instructions after the φ prefix."""
        return [inst for inst in self.instructions if not inst.is_phi()]

    def terminator(self) -> Instruction | None:
        """The block's terminator, or ``None`` while under construction."""
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def successors(self) -> list[str]:
        """Successor block names, derived from the terminator."""
        terminator = self.terminator()
        if terminator is None:
            return []
        if terminator.opcode == Opcode.RETURN:
            return []
        # A branch whose arms coincide is a single CFG edge.
        seen: dict[str, None] = {}
        for target in terminator.targets:
            seen.setdefault(target, None)
        return list(seen)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"BasicBlock({self.name!r}, {len(self.instructions)} instructions)"

    # ------------------------------------------------------------------
    # Variable-level views
    # ------------------------------------------------------------------
    def defined_variables(self) -> list:
        """Variables defined by the block's instructions (including φs)."""
        result = []
        for inst in self.instructions:
            result.extend(inst.defined_variables())
        return result

    def used_variables(self) -> list:
        """Variables used by non-φ instructions of this block.

        φ uses are attributed to predecessor blocks (Definition 1) and are
        therefore *not* included here; :mod:`repro.ssa.defuse` adds them to
        the appropriate predecessors.
        """
        result = []
        for inst in self.instructions:
            if inst.is_phi():
                continue
            result.extend(inst.used_variables())
        return result
