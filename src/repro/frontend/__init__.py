"""A small imperative front-end.

The liveness algorithms operate on CFGs and def–use chains, but the
examples, the tests and the synthetic workloads are far more convincing
when they start from real-looking programs.  This package provides a tiny
C-like language — integer variables, arithmetic, ``if``/``else``,
``while``, ``do … while``, ``break``/``continue``, calls, ``return`` — and
compiles it through the usual pipeline:

    source text → AST → non-SSA IR → (pruned) SSA form

so every downstream component sees exactly the kind of input an SSA-based
compiler back-end would see.

>>> from repro.frontend import compile_source
>>> module = compile_source('''
... func gcd(a, b) {
...     while (b != 0) { t = b; b = a % b; a = t; }
...     return a;
... }
... ''')
>>> sorted(module.function("gcd").blocks)[:2]
['body', 'entry']
"""

from repro.frontend.compile import compile_function, compile_source
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.lowering import lower_program
from repro.frontend.parser import ParseError, parse_program

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "ParseError",
    "parse_program",
    "lower_program",
    "compile_source",
    "compile_function",
]
