"""Lowering the mini-language AST to (non-SSA) IR.

The lowering is deliberately conventional: every source variable becomes a
single :class:`~repro.ir.value.Variable` that may be assigned many times,
structured control flow becomes explicit blocks and branches, short-circuit
``&&``/``||`` become control flow (which is what makes the generated CFGs
interesting for liveness), and ``print`` becomes an observable ``store`` so
the interpreter-based differential tests have events to compare.

The resulting functions are *not* in SSA form; run
:func:`repro.ssa.construction.construct_ssa` afterwards (or use
:func:`repro.frontend.compile.compile_source`, which does both).
"""

from __future__ import annotations

from repro.frontend import ast_nodes as ast
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.value import Constant, Value, Variable

#: Pseudo memory address targeted by ``print`` statements.
PRINT_ADDRESS = 1

_BINOP_DETAILS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<": "cmplt",
    "<=": "cmple",
    ">": "cmpgt",
    ">=": "cmpge",
    "==": "cmpeq",
    "!=": "cmpne",
}


class LoweringError(ValueError):
    """Raised on AST constructs that cannot be lowered (e.g. stray break)."""


class _FunctionLowerer:
    """Lowers one function definition."""

    def __init__(self, definition: ast.FunctionDef) -> None:
        self.definition = definition
        self.builder = FunctionBuilder(definition.name, parameters=definition.params)
        self.variables: dict[str, Variable] = {
            param.name: param for param in self.builder.function.parameters
        }
        #: Stack of (continue target, break target) block names.
        self.loop_stack: list[tuple[str, str]] = []
        self.terminated = False

    # ------------------------------------------------------------------
    def lower(self) -> Function:
        if not self.definition.params:
            entry = self.builder.add_block("entry")
            self.builder.set_insertion_point(entry)
        else:
            self.builder.set_insertion_point(self.builder.function.block("entry"))
        self.lower_block(self.definition.body)
        if not self.terminated:
            self.builder.ret(Constant(0))
        _remove_unreachable_blocks(self.builder.function)
        return self.builder.function

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def lower_block(self, block: ast.Block) -> None:
        for statement in block.statements:
            if self.terminated:
                # Dead code after return/break/continue: skip it entirely so
                # we never create unreachable blocks.
                return
            self.lower_statement(statement)

    def lower_statement(self, statement: ast.Node) -> None:
        if isinstance(statement, ast.Block):
            self.lower_block(statement)
        elif isinstance(statement, ast.Assignment):
            value = self.lower_expression(statement.value)
            target = self._variable(statement.name)
            self.builder.copy(value, result=target)
        elif isinstance(statement, ast.PrintStatement):
            value = self.lower_expression(statement.value)
            self.builder.store(Constant(PRINT_ADDRESS), value)
        elif isinstance(statement, ast.ExpressionStatement):
            self.lower_expression(statement.value)
        elif isinstance(statement, ast.ReturnStatement):
            value = (
                self.lower_expression(statement.value)
                if statement.value is not None
                else Constant(0)
            )
            self.builder.ret(value)
            self.terminated = True
        elif isinstance(statement, ast.BreakStatement):
            if not self.loop_stack:
                raise LoweringError("'break' outside of a loop")
            self.builder.jump(self.loop_stack[-1][1])
            self.terminated = True
        elif isinstance(statement, ast.ContinueStatement):
            if not self.loop_stack:
                raise LoweringError("'continue' outside of a loop")
            self.builder.jump(self.loop_stack[-1][0])
            self.terminated = True
        elif isinstance(statement, ast.IfStatement):
            self.lower_if(statement)
        elif isinstance(statement, ast.WhileStatement):
            self.lower_while(statement)
        elif isinstance(statement, ast.DoWhileStatement):
            self.lower_do_while(statement)
        elif isinstance(statement, ast.ForStatement):
            self.lower_for(statement)
        else:
            raise LoweringError(f"cannot lower statement {statement!r}")

    def lower_if(self, statement: ast.IfStatement) -> None:
        condition = self.lower_expression(statement.condition)
        then_block = self.builder.add_block()
        join_block = self.builder.add_block()
        if statement.else_block is not None:
            else_block = self.builder.add_block()
        else:
            else_block = join_block
        self.builder.branch(condition, then_block, else_block)

        self.builder.set_insertion_point(then_block)
        self.terminated = False
        self.lower_block(statement.then_block)
        if not self.terminated:
            self.builder.jump(join_block)

        if statement.else_block is not None:
            self.builder.set_insertion_point(else_block)
            self.terminated = False
            self.lower_block(statement.else_block)
            if not self.terminated:
                self.builder.jump(join_block)

        self.builder.set_insertion_point(join_block)
        self.terminated = False

    def lower_while(self, statement: ast.WhileStatement) -> None:
        header = self.builder.add_block()
        body = self.builder.add_block()
        exit_block = self.builder.add_block()
        self.builder.jump(header)

        self.builder.set_insertion_point(header)
        self.terminated = False
        condition = self.lower_expression(statement.condition)
        self.builder.branch(condition, body, exit_block)

        self.builder.set_insertion_point(body)
        self.terminated = False
        self.loop_stack.append((header.name, exit_block.name))
        self.lower_block(statement.body)
        self.loop_stack.pop()
        if not self.terminated:
            self.builder.jump(header)

        self.builder.set_insertion_point(exit_block)
        self.terminated = False

    def lower_do_while(self, statement: ast.DoWhileStatement) -> None:
        body = self.builder.add_block()
        latch = self.builder.add_block()
        exit_block = self.builder.add_block()
        self.builder.jump(body)

        self.builder.set_insertion_point(body)
        self.terminated = False
        self.loop_stack.append((latch.name, exit_block.name))
        self.lower_block(statement.body)
        self.loop_stack.pop()
        if not self.terminated:
            self.builder.jump(latch)

        self.builder.set_insertion_point(latch)
        self.terminated = False
        condition = self.lower_expression(statement.condition)
        self.builder.branch(condition, body, exit_block)

        self.builder.set_insertion_point(exit_block)
        self.terminated = False

    def lower_for(self, statement: ast.ForStatement) -> None:
        if statement.init is not None:
            self.lower_statement(statement.init)
        header = self.builder.add_block()
        body = self.builder.add_block()
        step = self.builder.add_block()
        exit_block = self.builder.add_block()
        self.builder.jump(header)

        self.builder.set_insertion_point(header)
        self.terminated = False
        if statement.condition is not None:
            condition = self.lower_expression(statement.condition)
        else:
            condition = Constant(1)
        self.builder.branch(condition, body, exit_block)

        self.builder.set_insertion_point(body)
        self.terminated = False
        self.loop_stack.append((step.name, exit_block.name))
        self.lower_block(statement.body)
        self.loop_stack.pop()
        if not self.terminated:
            self.builder.jump(step)

        self.builder.set_insertion_point(step)
        self.terminated = False
        if statement.step is not None:
            self.lower_statement(statement.step)
        self.builder.jump(header)

        self.builder.set_insertion_point(exit_block)
        self.terminated = False

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def lower_expression(self, expression: ast.Node) -> Value:
        if isinstance(expression, ast.NumberLiteral):
            return self.builder.const(expression.value)
        if isinstance(expression, ast.VariableRef):
            if expression.name not in self.variables:
                raise LoweringError(
                    f"use of undefined variable {expression.name!r} in "
                    f"function {self.definition.name!r}"
                )
            return self.variables[expression.name]
        if isinstance(expression, ast.UnaryOp):
            operand = self.lower_expression(expression.operand)
            detail = "neg" if expression.op == "-" else "not"
            return self.builder.unop(detail, operand)
        if isinstance(expression, ast.BinaryOp):
            if expression.op in ("&&", "||"):
                return self._lower_short_circuit(expression)
            detail = _BINOP_DETAILS[expression.op]
            left = self.lower_expression(expression.left)
            right = self.lower_expression(expression.right)
            return self.builder.binop(detail, left, right)
        if isinstance(expression, ast.CallExpr):
            args = [self.lower_expression(arg) for arg in expression.args]
            return self.builder.call(expression.callee, args)
        raise LoweringError(f"cannot lower expression {expression!r}")

    def _lower_short_circuit(self, expression: ast.BinaryOp) -> Value:
        """``a && b`` / ``a || b`` become explicit control flow.

        The boolean result lives in a dedicated mutable temporary that the
        two arms assign; SSA construction later turns it into a φ at the
        join, exactly the Figure-2 pattern of the paper.
        """
        result = self.builder.fresh_variable("bool")
        left = self.lower_expression(expression.left)
        left_bool = self.builder.binop("cmpne", left, Constant(0))
        self.builder.copy(left_bool, result=result)

        evaluate_right = self.builder.add_block()
        join = self.builder.add_block()
        if expression.op == "&&":
            self.builder.branch(left_bool, evaluate_right, join)
        else:
            self.builder.branch(left_bool, join, evaluate_right)

        self.builder.set_insertion_point(evaluate_right)
        right = self.lower_expression(expression.right)
        right_bool = self.builder.binop("cmpne", right, Constant(0))
        # Assigning the same temporary again gives the non-SSA
        # multiple-assignment shape that SSA construction resolves with a φ.
        self.builder.copy(right_bool, result=result)
        self.builder.jump(join)

        self.builder.set_insertion_point(join)
        return result

    # ------------------------------------------------------------------
    def _variable(self, name: str) -> Variable:
        if name not in self.variables:
            self.variables[name] = Variable(name)
        return self.variables[name]


def lower_function(definition: ast.FunctionDef) -> Function:
    """Lower a single function definition to non-SSA IR."""
    return _FunctionLowerer(definition).lower()


def lower_program(program: ast.Program, name: str = "module") -> Module:
    """Lower a whole program to a module of non-SSA functions."""
    module = Module(name)
    for definition in program.functions:
        module.add_function(lower_function(definition))
    return module


def _remove_unreachable_blocks(function: Function) -> None:
    """Drop blocks that ended up unreachable (dead joins, empty latches)."""
    cfg = function.build_cfg()
    reachable = cfg.reachable_from(cfg.entry)
    for name in list(function.blocks):
        if name not in reachable:
            function.remove_block(name)
