"""AST node definitions for the mini language.

The AST is a set of small frozen dataclasses; the parser builds them and
the lowering pass consumes them.  Keeping them immutable makes the AST easy
to construct in tests and safe to share between passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Node:
    """Base class for all AST nodes (useful for isinstance checks)."""


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NumberLiteral(Node):
    """An integer literal."""

    value: int


@dataclass(frozen=True)
class VariableRef(Node):
    """A read of a named variable."""

    name: str


@dataclass(frozen=True)
class UnaryOp(Node):
    """``-expr`` or ``!expr``."""

    op: str
    operand: Node


@dataclass(frozen=True)
class BinaryOp(Node):
    """A binary operation, ``op`` being the surface operator text."""

    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class CallExpr(Node):
    """A call ``name(arg, …)``."""

    callee: str
    args: tuple[Node, ...] = ()


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Assignment(Node):
    """``name = expr;``"""

    name: str
    value: Node


@dataclass(frozen=True)
class PrintStatement(Node):
    """``print(expr);`` — lowered to an observable store."""

    value: Node


@dataclass(frozen=True)
class ExpressionStatement(Node):
    """A bare call used for its (simulated) effect."""

    value: Node


@dataclass(frozen=True)
class ReturnStatement(Node):
    """``return expr?;``"""

    value: Node | None = None


@dataclass(frozen=True)
class BreakStatement(Node):
    """``break;``"""


@dataclass(frozen=True)
class ContinueStatement(Node):
    """``continue;``"""


@dataclass(frozen=True)
class Block(Node):
    """``{ statements… }``"""

    statements: tuple[Node, ...] = ()


@dataclass(frozen=True)
class IfStatement(Node):
    """``if (cond) then_block [else else_block]``"""

    condition: Node
    then_block: Block
    else_block: Block | None = None


@dataclass(frozen=True)
class WhileStatement(Node):
    """``while (cond) body``"""

    condition: Node
    body: Block


@dataclass(frozen=True)
class DoWhileStatement(Node):
    """``do body while (cond);``"""

    body: Block
    condition: Node


@dataclass(frozen=True)
class ForStatement(Node):
    """``for (init; cond; step) body`` with each part optional."""

    init: Node | None
    condition: Node | None
    step: Node | None
    body: Block


@dataclass(frozen=True)
class FunctionDef(Node):
    """``func name(params) body``"""

    name: str
    params: tuple[str, ...]
    body: Block


@dataclass(frozen=True)
class Program(Node):
    """A whole source file."""

    functions: tuple[FunctionDef, ...] = field(default_factory=tuple)
