"""Lexer for the mini language."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Token categories produced by :func:`tokenize`."""

    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "func",
        "if",
        "else",
        "while",
        "do",
        "for",
        "return",
        "break",
        "continue",
        "print",
    }
)

#: Multi-character punctuation, longest first so maximal munch works.
_PUNCTUATIONS = (
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "(",
    ")",
    "{",
    "}",
    ",",
    ";",
    "!",
    "&",
    "|",
    "^",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


class LexerError(ValueError):
    """Raised on characters the language does not know."""


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens, ending with a single EOF token."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#" or source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            text = source[start:index]
            tokens.append(Token(TokenKind.NUMBER, text, line, column))
            column += len(text)
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line, column))
            column += len(text)
            continue
        for punct in _PUNCTUATIONS:
            if source.startswith(punct, index):
                tokens.append(Token(TokenKind.PUNCT, punct, line, column))
                index += len(punct)
                column += len(punct)
                break
        else:
            raise LexerError(f"unexpected character {char!r} at {line}:{column}")
    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
