"""One-call compilation pipeline: source text → SSA-form IR module."""

from __future__ import annotations

from repro.frontend.lowering import lower_program
from repro.frontend.parser import parse_program
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.verify import verify_ssa
from repro.ssa.construction import construct_ssa


def compile_source(
    source: str,
    name: str = "module",
    to_ssa: bool = True,
    verify: bool = True,
) -> Module:
    """Compile mini-language source into an IR module.

    Parameters
    ----------
    source:
        The program text.
    name:
        Name of the resulting module.
    to_ssa:
        Run SSA construction on every function (default).  Disable to get
        the raw non-SSA lowering, e.g. to test SSA construction itself.
    verify:
        Run the strict-SSA verifier on each function after construction.
    """
    module = lower_program(parse_program(source), name=name)
    if to_ssa:
        for function in module:
            construct_ssa(function)
            if verify:
                verify_ssa(function)
    return module


def compile_function(source: str, to_ssa: bool = True, verify: bool = True) -> Function:
    """Compile source that contains exactly one function and return it."""
    module = compile_source(source, to_ssa=to_ssa, verify=verify)
    functions = list(module)
    if len(functions) != 1:
        raise ValueError(
            f"expected exactly one function in the source, found {len(functions)}"
        )
    return functions[0]
