"""Recursive-descent parser for the mini language."""

from __future__ import annotations

from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import Token, TokenKind, tokenize


class ParseError(ValueError):
    """Raised when the source does not conform to the grammar."""


#: Binary operators grouped by precedence, loosest first.
_PRECEDENCE_LEVELS: tuple[tuple[str, ...], ...] = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("+", "-"),
    ("*", "/", "%"),
)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind is not TokenKind.EOF:
            self._position += 1
        return token

    def _check(self, text: str) -> bool:
        token = self._peek()
        return token.kind in (TokenKind.PUNCT, TokenKind.KEYWORD) and token.text == text

    def _match(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            token = self._peek()
            raise ParseError(
                f"expected {text!r} but found {token.text or '<eof>'!r} "
                f"at {token.line}:{token.column}"
            )
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier but found {token.text or '<eof>'!r} "
                f"at {token.line}:{token.column}"
            )
        self._advance()
        return token.text

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        functions = []
        while self._peek().kind is not TokenKind.EOF:
            functions.append(self.parse_function())
        return ast.Program(functions=tuple(functions))

    def parse_function(self) -> ast.FunctionDef:
        self._expect("func")
        name = self._expect_ident()
        self._expect("(")
        params: list[str] = []
        if not self._check(")"):
            params.append(self._expect_ident())
            while self._match(","):
                params.append(self._expect_ident())
        self._expect(")")
        body = self.parse_block()
        return ast.FunctionDef(name=name, params=tuple(params), body=body)

    def parse_block(self) -> ast.Block:
        self._expect("{")
        statements = []
        while not self._check("}"):
            statements.append(self.parse_statement())
        self._expect("}")
        return ast.Block(statements=tuple(statements))

    def parse_statement(self) -> ast.Node:
        if self._check("{"):
            return self.parse_block()
        if self._match("if"):
            self._expect("(")
            condition = self.parse_expression()
            self._expect(")")
            then_block = self._statement_as_block()
            else_block = None
            if self._match("else"):
                else_block = self._statement_as_block()
            return ast.IfStatement(condition, then_block, else_block)
        if self._match("while"):
            self._expect("(")
            condition = self.parse_expression()
            self._expect(")")
            body = self._statement_as_block()
            return ast.WhileStatement(condition, body)
        if self._match("do"):
            body = self._statement_as_block()
            self._expect("while")
            self._expect("(")
            condition = self.parse_expression()
            self._expect(")")
            self._expect(";")
            return ast.DoWhileStatement(body, condition)
        if self._match("for"):
            self._expect("(")
            init = None if self._check(";") else self._parse_simple_statement()
            self._expect(";")
            condition = None if self._check(";") else self.parse_expression()
            self._expect(";")
            step = None if self._check(")") else self._parse_simple_statement()
            self._expect(")")
            body = self._statement_as_block()
            return ast.ForStatement(init, condition, step, body)
        if self._match("return"):
            value = None if self._check(";") else self.parse_expression()
            self._expect(";")
            return ast.ReturnStatement(value)
        if self._match("break"):
            self._expect(";")
            return ast.BreakStatement()
        if self._match("continue"):
            self._expect(";")
            return ast.ContinueStatement()
        if self._match("print"):
            self._expect("(")
            value = self.parse_expression()
            self._expect(")")
            self._expect(";")
            return ast.PrintStatement(value)
        statement = self._parse_simple_statement()
        self._expect(";")
        return statement

    def _statement_as_block(self) -> ast.Block:
        statement = self.parse_statement()
        if isinstance(statement, ast.Block):
            return statement
        return ast.Block(statements=(statement,))

    def _parse_simple_statement(self) -> ast.Node:
        """An assignment or a bare call (used in statements and for-headers)."""
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            next_token = self._tokens[self._position + 1]
            if next_token.kind is TokenKind.PUNCT and next_token.text == "=":
                name = self._expect_ident()
                self._expect("=")
                value = self.parse_expression()
                return ast.Assignment(name, value)
        expression = self.parse_expression()
        return ast.ExpressionStatement(expression)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self, level: int = 0) -> ast.Node:
        if level >= len(_PRECEDENCE_LEVELS):
            return self.parse_unary()
        left = self.parse_expression(level + 1)
        operators = _PRECEDENCE_LEVELS[level]
        while any(self._check(op) for op in operators):
            op = self._advance().text
            right = self.parse_expression(level + 1)
            left = ast.BinaryOp(op, left, right)
        return left

    def parse_unary(self) -> ast.Node:
        if self._check("-") or self._check("!"):
            op = self._advance().text
            operand = self.parse_unary()
            return ast.UnaryOp(op, operand)
        return self.parse_primary()

    def parse_primary(self) -> ast.Node:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return ast.NumberLiteral(int(token.text))
        if token.kind is TokenKind.IDENT:
            name = self._expect_ident()
            if self._match("("):
                args: list[ast.Node] = []
                if not self._check(")"):
                    args.append(self.parse_expression())
                    while self._match(","):
                        args.append(self.parse_expression())
                self._expect(")")
                return ast.CallExpr(name, tuple(args))
            return ast.VariableRef(name)
        if self._match("("):
            inner = self.parse_expression()
            self._expect(")")
            return inner
        raise ParseError(
            f"unexpected token {token.text or '<eof>'!r} at {token.line}:{token.column}"
        )


def parse_program(source: str) -> ast.Program:
    """Parse a whole source file into a :class:`~repro.frontend.ast_nodes.Program`."""
    return _Parser(tokenize(source)).parse_program()
