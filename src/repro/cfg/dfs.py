"""Depth-first search: spanning tree, numbering and edge classification.

Section 2.1 of the paper classifies CFG edges relative to a DFS spanning
tree into *tree*, *back*, *forward* and *cross* edges (Figure 1) and defines
the set of back edges

    E↑ = {(s, t) ∈ E | t is an ancestor of s in the DFS tree}.

Back edges are the load-bearing concept of the whole approach: the reduced
graph ``G̃`` is the CFG minus its back edges, ``R_v`` is reachability in
``G̃``, and ``T_v`` collects back-edge *targets*.  The DFS also provides the
reverse-postorder used as a topological order of ``G̃`` during the
precomputation (Section 5.2) and the preorder used in the proof of
Theorem 3.

The implementation is iterative (explicit stack) so that functions with
thousands of blocks do not hit Python's recursion limit.
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.cfg.graph import ControlFlowGraph, Edge, Node


class EdgeKind(enum.Enum):
    """Classification of a CFG edge with respect to a DFS spanning tree."""

    TREE = "tree"
    BACK = "back"
    FORWARD = "forward"
    CROSS = "cross"


class DepthFirstSearch:
    """A DFS of a :class:`ControlFlowGraph` from its entry node.

    The traversal visits successors in their insertion order, so results are
    deterministic for a given graph construction order.  All nodes are
    assumed reachable from the entry (callers should run
    :meth:`ControlFlowGraph.validate` first); unreachable nodes are simply
    absent from the numberings and ``classify_edge`` raises for them.
    """

    def __init__(self, graph: ControlFlowGraph) -> None:
        self._graph = graph
        self._preorder: dict[Node, int] = {}
        self._postorder: dict[Node, int] = {}
        self._parent: dict[Node, Node | None] = {}
        self._preorder_nodes: list[Node] = []
        self._postorder_nodes: list[Node] = []
        self._edge_kinds: dict[Edge, EdgeKind] = {}
        self._back_edges: list[Edge] = []
        self._run()

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def _run(self) -> None:
        graph = self._graph
        entry = graph.entry
        self._parent[entry] = None
        # Stack holds (node, iterator over its successors).  A node is
        # numbered in preorder when pushed and in postorder when its
        # iterator is exhausted.
        self._assign_preorder(entry)
        stack: list[tuple[Node, Iterator[Node]]] = [
            (entry, iter(graph.successors(entry)))
        ]
        on_stack = {entry}
        while stack:
            node, succ_iter = stack[-1]
            advanced = False
            for succ in succ_iter:
                edge = Edge(node, succ)
                if succ not in self._preorder:
                    # First visit: tree edge.
                    self._edge_kinds[edge] = EdgeKind.TREE
                    self._parent[succ] = node
                    self._assign_preorder(succ)
                    stack.append((succ, iter(graph.successors(succ))))
                    on_stack.add(succ)
                    advanced = True
                    break
                if succ in on_stack:
                    # Target still open: ancestor of the source.
                    self._edge_kinds[edge] = EdgeKind.BACK
                    self._back_edges.append(edge)
                elif self._preorder[node] < self._preorder[succ]:
                    # Already closed but started later: descendant.
                    self._edge_kinds[edge] = EdgeKind.FORWARD
                else:
                    self._edge_kinds[edge] = EdgeKind.CROSS
            if not advanced:
                stack.pop()
                on_stack.discard(node)
                self._assign_postorder(node)

    def _assign_preorder(self, node: Node) -> None:
        self._preorder[node] = len(self._preorder_nodes)
        self._preorder_nodes.append(node)

    def _assign_postorder(self, node: Node) -> None:
        self._postorder[node] = len(self._postorder_nodes)
        self._postorder_nodes.append(node)

    # ------------------------------------------------------------------
    # Numbering
    # ------------------------------------------------------------------
    @property
    def graph(self) -> ControlFlowGraph:
        """The graph that was traversed."""
        return self._graph

    def preorder_number(self, node: Node) -> int:
        """DFS preorder (discovery) number of ``node``."""
        return self._preorder[node]

    def postorder_number(self, node: Node) -> int:
        """DFS postorder (finish) number of ``node``."""
        return self._postorder[node]

    def preorder(self) -> list[Node]:
        """Nodes in DFS preorder."""
        return list(self._preorder_nodes)

    def postorder(self) -> list[Node]:
        """Nodes in DFS postorder."""
        return list(self._postorder_nodes)

    def reverse_postorder(self) -> list[Node]:
        """Nodes in reverse postorder.

        Reverse postorder is a topological order of the reduced graph
        (Section 5.2), which is why both the ``R_v`` propagation and the
        baseline data-flow solver's worklist initialisation use it.
        """
        return list(reversed(self._postorder_nodes))

    def visited(self, node: Node) -> bool:
        """True iff ``node`` was reached by the traversal."""
        return node in self._preorder

    def parent(self, node: Node) -> Node | None:
        """DFS-tree parent of ``node`` (``None`` for the entry)."""
        return self._parent[node]

    def is_ancestor(self, ancestor: Node, descendant: Node) -> bool:
        """True iff ``ancestor`` is an ancestor of ``descendant`` in the DFS tree.

        A node is considered an ancestor of itself, matching the convention
        used for back edges (a self-loop is a back edge).
        """
        node: Node | None = descendant
        while node is not None:
            if node == ancestor:
                return True
            node = self._parent[node]
        return False

    # ------------------------------------------------------------------
    # Edge classification
    # ------------------------------------------------------------------
    def classify_edge(self, source: Node, target: Node) -> EdgeKind:
        """Return the :class:`EdgeKind` of an existing edge."""
        edge = Edge(source, target)
        if edge not in self._edge_kinds:
            raise KeyError(f"edge {source!r} -> {target!r} was not traversed")
        return self._edge_kinds[edge]

    def edge_kinds(self) -> dict[Edge, EdgeKind]:
        """Mapping of every traversed edge to its classification."""
        return dict(self._edge_kinds)

    def back_edges(self) -> list[Edge]:
        """The set E↑ of back edges, in traversal order."""
        return list(self._back_edges)

    def back_edge_targets(self) -> list[Node]:
        """Distinct targets of back edges, in traversal order."""
        seen: dict[Node, None] = {}
        for edge in self._back_edges:
            seen.setdefault(edge.target, None)
        return list(seen)

    def is_back_edge(self, source: Node, target: Node) -> bool:
        """True iff ``source -> target`` is a back edge of this DFS."""
        return self._edge_kinds.get(Edge(source, target)) is EdgeKind.BACK

    def is_back_edge_target(self, node: Node) -> bool:
        """True iff some back edge points at ``node``.

        Algorithm 2's live-out check needs this to decide whether a trivial
        path from ``q`` to itself can be completed into a non-trivial cycle.
        """
        return any(edge.target == node for edge in self._back_edges)

    # ------------------------------------------------------------------
    # Incremental bookkeeping (repro.core.incremental)
    # ------------------------------------------------------------------
    def edge_kind(self, source: Node, target: Node) -> EdgeKind | None:
        """The kind of an existing edge, or ``None`` if it was not traversed."""
        return self._edge_kinds.get(Edge(source, target))

    def classify_inserted_edge(self, source: Node, target: Node) -> EdgeKind | None:
        """Kind the edge ``source -> target`` would get if appended now.

        Assumes the edge would be appended *after* ``source``'s existing
        successors, so a fresh DFS replays this traversal verbatim until it
        reaches the new edge — which it does at the instant ``source`` is
        about to finish.  At that point the numbering answers everything:

        * ``target`` discovered no later and finished no earlier than
          ``source`` → an open ancestor (or ``source`` itself): **back**;
        * discovered later but already finished → a closed descendant
          reached through an earlier successor: **forward**;
        * discovered and finished earlier → **cross**;
        * not yet discovered (later preorder *and* later postorder) → the
          new edge would be taken as a **tree** edge, changing the
          traversal — returned as ``None`` so callers fall back.
        """
        pre_s, pre_t = self._preorder[source], self._preorder[target]
        post_s, post_t = self._postorder[source], self._postorder[target]
        if pre_t <= pre_s and post_t >= post_s:
            return EdgeKind.BACK
        if pre_t > pre_s:
            return EdgeKind.FORWARD if post_t < post_s else None
        return EdgeKind.CROSS

    def note_edge_added(self, source: Node, target: Node, kind: EdgeKind) -> None:
        """Record an edge the graph gained without changing the traversal.

        ``kind`` must come from :meth:`classify_inserted_edge` (i.e. not be
        ``None``); the numberings stay untouched because, by construction,
        the preserved traversal never followed the new edge.
        """
        edge = Edge(source, target)
        self._edge_kinds[edge] = kind
        if kind is EdgeKind.BACK:
            self._back_edges.append(edge)

    def note_edge_removed(self, source: Node, target: Node) -> None:
        """Record the removal of a non-tree edge (numberings unaffected)."""
        edge = Edge(source, target)
        kind = self._edge_kinds.pop(edge)
        if kind is EdgeKind.TREE:
            raise ValueError(
                f"tree edge {source!r} -> {target!r} cannot be removed "
                "incrementally; rebuild the DFS"
            )
        if kind is EdgeKind.BACK:
            self._back_edges.remove(edge)

    def edge_statistics(self) -> dict[str, int]:
        """Counts per edge kind plus totals (used by the §6.1 statistics)."""
        counts = {kind.value: 0 for kind in EdgeKind}
        for kind in self._edge_kinds.values():
            counts[kind.value] += 1
        counts["total"] = len(self._edge_kinds)
        return counts


def reduced_successors(graph: ControlFlowGraph, dfs: DepthFirstSearch) -> dict[Node, list[Node]]:
    """Successor lists of the reduced graph ``G̃`` (CFG minus back edges).

    The reduced graph is acyclic (every cycle must contain a back edge), so
    reachability within it — the ``R_v`` sets of Definition 4 — can be
    computed by a single sweep in reverse topological order; see
    :mod:`repro.core.reduced_graph`.
    """
    result: dict[Node, list[Node]] = {}
    for node in graph.nodes():
        result[node] = [
            succ
            for succ in graph.successors(node)
            if not dfs.is_back_edge(node, succ)
        ]
    return result
