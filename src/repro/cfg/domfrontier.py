"""Dominance frontiers (Cytron et al.).

The dominance frontier ``DF(x)`` of a node ``x`` is the set of nodes ``y``
such that ``x`` dominates a predecessor of ``y`` but does not strictly
dominate ``y`` itself.  SSA construction places φ-functions for a variable
at the iterated dominance frontier of its definition sites (Section 2.2 of
the paper sketches the result; the construction itself lives in
:mod:`repro.ssa.construction`).

The computation uses the elegant formulation from Cooper–Harvey–Kennedy:
for every join node (two or more predecessors), walk from each predecessor
up the dominator tree until the node's immediate dominator is reached,
adding the join node to the frontier of every node passed on the way.
"""

from __future__ import annotations

from repro.cfg.dominance import DominatorTree
from repro.cfg.graph import ControlFlowGraph, Node


class DominanceFrontiers:
    """Per-node dominance frontiers plus the iterated-frontier closure."""

    def __init__(self, graph: ControlFlowGraph, domtree: DominatorTree | None = None) -> None:
        self._graph = graph
        self._domtree = domtree if domtree is not None else DominatorTree(graph)
        self._frontier: dict[Node, list[Node]] = {node: [] for node in graph.nodes()}
        self._compute()

    def _compute(self) -> None:
        domtree = self._domtree
        for node in self._graph.nodes():
            preds = self._graph.predecessors(node)
            if len(preds) < 2:
                continue
            idom = domtree.immediate_dominator(node)
            for pred in preds:
                runner = pred
                while runner != idom:
                    frontier = self._frontier[runner]
                    if node not in frontier:
                        frontier.append(node)
                    next_runner = domtree.immediate_dominator(runner)
                    if next_runner is None:
                        break
                    runner = next_runner

    @property
    def domtree(self) -> DominatorTree:
        """The dominator tree the frontiers were derived from."""
        return self._domtree

    def frontier(self, node: Node) -> list[Node]:
        """``DF(node)`` in deterministic (discovery) order."""
        return list(self._frontier[node])

    def __getitem__(self, node: Node) -> list[Node]:
        return self.frontier(node)

    def iterated_frontier(self, nodes: set[Node] | list[Node]) -> set[Node]:
        """``DF+``: the least fixpoint of ``DF`` over a set of seed nodes.

        This is the set of nodes where SSA construction must place
        φ-functions for a variable defined at every node in ``nodes``.
        """
        result: set[Node] = set()
        worklist = list(nodes)
        enqueued = set(worklist)
        while worklist:
            node = worklist.pop()
            for frontier_node in self._frontier[node]:
                if frontier_node not in result:
                    result.add(frontier_node)
                    if frontier_node not in enqueued:
                        enqueued.add(frontier_node)
                        worklist.append(frontier_node)
        return result
