"""Post-dominator trees.

Post-dominance is dominance on the reverse CFG rooted at a virtual exit
node.  The fast liveness checker itself does not need post-dominance, but
two neighbouring pieces of the reproduction do:

* the related-work discussion (Gerlek et al. / SSI, Section 7) places
  λ-operators at iterated dominance frontiers of the *reverse* CFG, and
* some of the synthetic-workload sanity checks use post-dominance to reason
  about which uses are unavoidable.

Keeping it in the library also rounds out the CFG substrate a downstream
compiler would expect.
"""

from __future__ import annotations

from repro.cfg.dominance import DominatorTree
from repro.cfg.graph import ControlFlowGraph, Node

#: Sentinel used as the virtual exit node of the reverse graph.  A plain
#: module-level object so it can never collide with user node identifiers.
VIRTUAL_EXIT: object = object()


class PostDominatorTree:
    """Post-dominance queries over a CFG with arbitrarily many exit nodes."""

    def __init__(self, graph: ControlFlowGraph) -> None:
        self._graph = graph
        self._reverse = graph.reversed(virtual_exit=VIRTUAL_EXIT)
        self._domtree = DominatorTree(self._reverse)

    @property
    def virtual_exit(self) -> object:
        """The synthetic exit node added to root the reverse graph."""
        return VIRTUAL_EXIT

    def post_dominates(self, x: Node, y: Node) -> bool:
        """True iff every path from ``y`` to any exit passes through ``x``."""
        return self._domtree.dominates(x, y)

    def strictly_post_dominates(self, x: Node, y: Node) -> bool:
        """Post-dominance with ``x != y``."""
        return x != y and self.post_dominates(x, y)

    def immediate_post_dominator(self, node: Node) -> Node | None:
        """The immediate post-dominator, or ``None`` if it is the virtual exit."""
        idom = self._domtree.immediate_dominator(node)
        if idom is VIRTUAL_EXIT:
            return None
        return idom
