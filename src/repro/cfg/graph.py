"""A rooted directed graph with deterministic iteration order.

The paper's algorithms are defined on a control-flow graph
``G = (V, E, r)`` where ``r`` is a distinguished entry node with no
incoming edge (Section 2.1).  This module provides that abstraction,
decoupled from the instruction-level IR in :mod:`repro.ir`: the liveness
precomputation (``R_v``, ``T_v``), dominance and DFS all operate on plain
node identifiers, which keeps the precomputation literally independent of
variables and instructions — the property the paper exploits to survive
program transformations.

Nodes may be any hashable objects (the IR uses block names, the synthetic
workloads use integers).  Successor and predecessor lists preserve insertion
order so that every analysis in the library is deterministic, which in turn
makes the differential tests and benchmarks reproducible.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, NamedTuple

Node = Hashable


class Edge(NamedTuple):
    """A directed edge ``source -> target``."""

    source: Node
    target: Node


class ControlFlowGraph:
    """Directed multigraph-free graph with a distinguished entry node.

    The entry node is created lazily: the first node added becomes the entry
    unless an explicit entry is supplied to :meth:`set_entry` or the
    constructor.  Parallel edges are rejected because the liveness
    algorithms never need them and they complicate φ-operand bookkeeping;
    self-loops *are* allowed (they are back edges whose target equals the
    source).
    """

    def __init__(self, entry: Node | None = None) -> None:
        self._succs: dict[Node, list[Node]] = {}
        self._preds: dict[Node, list[Node]] = {}
        self._entry: Node | None = None
        if entry is not None:
            self.add_node(entry)

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    @property
    def entry(self) -> Node:
        """The distinguished entry node ``r``."""
        if self._entry is None:
            raise ValueError("control-flow graph has no entry node")
        return self._entry

    def set_entry(self, node: Node) -> None:
        """Declare ``node`` (added if necessary) as the entry node."""
        self.add_node(node)
        self._entry = node

    def add_node(self, node: Node) -> Node:
        """Insert ``node`` if not present; the first node becomes the entry."""
        if node not in self._succs:
            self._succs[node] = []
            self._preds[node] = []
            if self._entry is None:
                self._entry = node
        return node

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every edge incident to it."""
        self._require(node)
        if node == self._entry:
            raise ValueError("cannot remove the entry node")
        for succ in list(self._succs[node]):
            self.remove_edge(node, succ)
        for pred in list(self._preds[node]):
            self.remove_edge(pred, node)
        del self._succs[node]
        del self._preds[node]

    def __contains__(self, node: Node) -> bool:
        return node in self._succs

    def __len__(self) -> int:
        return len(self._succs)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succs)

    def nodes(self) -> list[Node]:
        """All nodes in insertion order."""
        return list(self._succs)

    def _require(self, node: Node) -> None:
        if node not in self._succs:
            raise KeyError(f"node {node!r} not in graph")

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, source: Node, target: Node) -> None:
        """Insert the edge ``source -> target`` (both nodes added if needed).

        Duplicate edges are ignored rather than rejected: front-ends
        routinely emit a conditional branch whose two arms reach the same
        block, which is semantically a single CFG edge.
        """
        self.add_node(source)
        self.add_node(target)
        if target in self._succs[source]:
            return
        self._succs[source].append(target)
        self._preds[target].append(source)

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove the edge ``source -> target``; raise if absent."""
        self._require(source)
        self._require(target)
        try:
            self._succs[source].remove(target)
            self._preds[target].remove(source)
        except ValueError as exc:
            raise KeyError(f"edge {source!r} -> {target!r} not in graph") from exc

    def has_edge(self, source: Node, target: Node) -> bool:
        """True iff the edge ``source -> target`` exists."""
        return source in self._succs and target in self._succs[source]

    def successors(self, node: Node) -> list[Node]:
        """Successors of ``node`` in insertion order (a copy)."""
        self._require(node)
        return list(self._succs[node])

    def predecessors(self, node: Node) -> list[Node]:
        """Predecessors of ``node`` in insertion order (a copy)."""
        self._require(node)
        return list(self._preds[node])

    def out_degree(self, node: Node) -> int:
        """Number of outgoing edges of ``node``."""
        self._require(node)
        return len(self._succs[node])

    def in_degree(self, node: Node) -> int:
        """Number of incoming edges of ``node``."""
        self._require(node)
        return len(self._preds[node])

    def edges(self) -> list[Edge]:
        """All edges, grouped by source in insertion order."""
        return [
            Edge(source, target)
            for source, targets in self._succs.items()
            for target in targets
        ]

    def num_edges(self) -> int:
        """Total number of edges."""
        return sum(len(targets) for targets in self._succs.values())

    # ------------------------------------------------------------------
    # Derived graphs and traversals
    # ------------------------------------------------------------------
    def copy(self) -> "ControlFlowGraph":
        """Return an independent copy preserving insertion order."""
        clone = ControlFlowGraph()
        for node in self._succs:
            clone.add_node(node)
        for source, target in self.edges():
            clone.add_edge(source, target)
        clone._entry = self._entry
        return clone

    def reversed(self, virtual_exit: Node | None = None) -> "ControlFlowGraph":
        """Return the reverse graph, optionally rooted at a virtual exit.

        Post-dominance is dominance on the reverse graph.  CFGs may have
        several exit nodes (or none, for infinite loops), so when
        ``virtual_exit`` is given it is added as the entry of the reverse
        graph with an edge to every original exit node; if there is no exit
        node at all, every node is connected to keep the reverse graph
        rooted.
        """
        clone = ControlFlowGraph()
        for node in self._succs:
            clone.add_node(node)
        for source, target in self.edges():
            clone.add_edge(target, source)
        if virtual_exit is None:
            return clone
        clone.add_node(virtual_exit)
        clone.set_entry(virtual_exit)
        exits = [node for node in self._succs if not self._succs[node]]
        if not exits:
            exits = list(self._succs)
        for node in exits:
            clone.add_edge(virtual_exit, node)
        return clone

    def reachable_from(self, start: Node) -> set[Node]:
        """Set of nodes reachable from ``start`` (including ``start``)."""
        self._require(start)
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for succ in self._succs[node]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def unreachable_nodes(self) -> list[Node]:
        """Nodes not reachable from the entry, in insertion order."""
        reachable = self.reachable_from(self.entry)
        return [node for node in self._succs if node not in reachable]

    def exit_nodes(self) -> list[Node]:
        """Nodes with no successors, in insertion order."""
        return [node for node, succs in self._succs.items() if not succs]

    def validate(self) -> None:
        """Check the CFG invariants from the paper's Section 2.1.

        The entry node must exist, must have no incoming edge, and every
        node must be reachable from the entry (unreachable nodes would make
        dominance ill-defined: they are dominated by everything).
        Raises :class:`ValueError` describing the first violation found.
        """
        entry = self.entry
        if self._preds[entry]:
            raise ValueError(
                f"entry node {entry!r} has incoming edges {self._preds[entry]!r}"
            )
        unreachable = self.unreachable_nodes()
        if unreachable:
            raise ValueError(f"unreachable nodes: {unreachable!r}")

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Node, Node]],
        entry: Node | None = None,
        nodes: Iterable[Node] = (),
    ) -> "ControlFlowGraph":
        """Build a graph from an edge list (plus optional isolated nodes)."""
        graph = cls()
        if entry is not None:
            graph.add_node(entry)
        for node in nodes:
            graph.add_node(node)
        for source, target in edges:
            graph.add_edge(source, target)
        if entry is not None:
            graph.set_entry(entry)
        return graph

    def __repr__(self) -> str:
        return (
            f"ControlFlowGraph(nodes={len(self)}, edges={self.num_edges()}, "
            f"entry={self._entry!r})"
        )
