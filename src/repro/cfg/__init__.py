"""Control-flow-graph substrate.

Everything the fast liveness checker needs from the compiler lives here and
depends *only* on graph structure, never on instructions or variables:

* :class:`~repro.cfg.graph.ControlFlowGraph` -- a rooted directed graph with
  deterministic iteration order.
* :class:`~repro.cfg.dfs.DepthFirstSearch` -- spanning tree, pre/post
  numbering and the tree/back/forward/cross edge classification of
  Section 2.1 / Figure 1.
* :class:`~repro.cfg.dominance.DominatorTree` -- immediate dominators,
  ``dom``/``sdom`` queries and the dominance-preorder numbering
  (``num``/``maxnum``) that Algorithm 3 relies on.
* :class:`~repro.cfg.domfrontier.DominanceFrontiers` -- Cytron-style
  frontiers for SSA construction.
* :func:`~repro.cfg.reducibility.is_reducible` -- the back-edge based
  reducibility test of Section 2.1, plus an independent interval (T1/T2)
  based check used for validation.
* :class:`~repro.cfg.loops.LoopNestingForest` -- natural-loop nesting forest
  used by the Section 8 "outlook" variant of the checker.
"""

from repro.cfg.dfs import DepthFirstSearch, EdgeKind
from repro.cfg.domfrontier import DominanceFrontiers
from repro.cfg.dominance import DominatorTree
from repro.cfg.graph import ControlFlowGraph, Edge
from repro.cfg.loops import Loop, LoopNestingForest
from repro.cfg.postdominance import PostDominatorTree
from repro.cfg.reducibility import is_reducible, is_reducible_by_intervals

__all__ = [
    "ControlFlowGraph",
    "Edge",
    "DepthFirstSearch",
    "EdgeKind",
    "DominatorTree",
    "DominanceFrontiers",
    "PostDominatorTree",
    "is_reducible",
    "is_reducible_by_intervals",
    "Loop",
    "LoopNestingForest",
]
