"""Loop nesting forests.

The paper's outlook (Section 8) notes that the technique "could take
advantage of a precomputed loop nesting forest" and "can be adapted to most
loop nesting forest definitions".  The extension module
:mod:`repro.core.loopforest` implements such a variant; this module provides
the forest itself.

The construction is the recursive strongly-connected-component
decomposition in the style of Bourdoncle / Ramalingam, which is defined for
irreducible graphs as well:

1. Find the non-trivial SCCs of the graph (restricted to the current node
   subset).  Each non-trivial SCC is a loop.
2. Choose the loop header: the SCC node with the smallest DFS preorder
   number that has an incoming edge from outside the SCC (for reducible
   graphs this is exactly the natural-loop header).
3. Remove the edges entering the header from inside the SCC and recurse on
   the SCC body to discover nested loops.

For reducible CFGs the resulting forest coincides with the classic
natural-loop nesting (each loop is the union of natural loops sharing a
header), which the test suite checks explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.dfs import DepthFirstSearch
from repro.cfg.graph import ControlFlowGraph, Node


@dataclass
class Loop:
    """A single loop of the nesting forest.

    Attributes
    ----------
    header:
        The loop header (entry node of the loop for reducible CFGs).
    body:
        Every node belonging to the loop, including the header and the
        nodes of nested loops.
    parent:
        The enclosing loop, or ``None`` for outermost loops.
    children:
        Loops nested directly inside this one.
    depth:
        Nesting depth; outermost loops have depth 1.
    """

    header: Node
    body: set[Node]
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)
    depth: int = 1

    def __contains__(self, node: Node) -> bool:
        return node in self.body

    def __repr__(self) -> str:
        return (
            f"Loop(header={self.header!r}, size={len(self.body)}, "
            f"depth={self.depth})"
        )


class LoopNestingForest:
    """The forest of loops of a control-flow graph."""

    def __init__(self, graph: ControlFlowGraph, dfs: DepthFirstSearch | None = None) -> None:
        self._graph = graph
        self._dfs = dfs if dfs is not None else DepthFirstSearch(graph)
        self._preorder = {
            node: self._dfs.preorder_number(node) for node in self._dfs.preorder()
        }
        self._roots: list[Loop] = []
        self._loop_of: dict[Node, Loop | None] = {node: None for node in graph.nodes()}
        self._header_loop: dict[Node, Loop] = {}
        succs = {
            node: [s for s in graph.successors(node) if s in self._preorder]
            for node in self._preorder
        }
        self._build(set(self._preorder), succs, parent=None)
        self._assign_depths()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(
        self,
        nodes: set[Node],
        succs: dict[Node, list[Node]],
        parent: Loop | None,
    ) -> None:
        ordered = sorted(nodes, key=self._preorder.__getitem__)
        for scc in _strongly_connected_components(ordered, succs):
            header = self._choose_header(scc)
            loop = Loop(header=header, body=set(scc), parent=parent)
            if parent is None:
                self._roots.append(loop)
            else:
                parent.children.append(loop)
            self._header_loop[header] = loop
            for node in scc:
                current = self._loop_of[node]
                if current is None or loop.body <= current.body:
                    self._loop_of[node] = loop
            # Recurse on the loop body with the header's incoming edges
            # removed so the same SCC is not rediscovered.
            inner_nodes = set(scc)
            inner_succs = {
                node: [
                    succ
                    for succ in succs[node]
                    if succ in inner_nodes and succ != header
                ]
                for node in inner_nodes
            }
            self._build_inner(inner_nodes, inner_succs, loop)

    def _build_inner(
        self,
        nodes: set[Node],
        succs: dict[Node, list[Node]],
        parent: Loop,
    ) -> None:
        self._build(nodes, succs, parent)

    def _choose_header(self, scc: list[Node]) -> Node:
        scc_set = set(scc)
        entering = [
            node
            for node in scc
            if any(pred not in scc_set for pred in self._graph.predecessors(node))
            or node == self._graph.entry
        ]
        candidates = entering if entering else list(scc)
        return min(candidates, key=self._preorder.__getitem__)

    def _assign_depths(self) -> None:
        stack = [(loop, 1) for loop in self._roots]
        while stack:
            loop, depth = stack.pop()
            loop.depth = depth
            for child in loop.children:
                stack.append((child, depth + 1))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> ControlFlowGraph:
        """The underlying control-flow graph."""
        return self._graph

    def roots(self) -> list[Loop]:
        """The outermost loops."""
        return list(self._roots)

    def loops(self) -> list[Loop]:
        """All loops, outermost first."""
        result: list[Loop] = []
        stack = list(reversed(self._roots))
        while stack:
            loop = stack.pop()
            result.append(loop)
            stack.extend(reversed(loop.children))
        return result

    def innermost_loop(self, node: Node) -> Loop | None:
        """The smallest loop containing ``node``, or ``None``."""
        return self._loop_of[node]

    def loop_with_header(self, header: Node) -> Loop | None:
        """The loop whose header is ``header``, if any."""
        return self._header_loop.get(header)

    def is_loop_header(self, node: Node) -> bool:
        """True iff ``node`` heads some loop."""
        return node in self._header_loop

    def loop_depth(self, node: Node) -> int:
        """Nesting depth of ``node`` (0 if it is in no loop)."""
        loop = self._loop_of[node]
        return loop.depth if loop is not None else 0

    def headers(self) -> list[Node]:
        """All loop headers, outermost first."""
        return [loop.header for loop in self.loops()]

    def enclosing_headers(self, node: Node) -> list[Node]:
        """Headers of every loop containing ``node``, innermost first."""
        result = []
        loop = self._loop_of[node]
        while loop is not None:
            result.append(loop.header)
            loop = loop.parent
        return result


def _strongly_connected_components(
    ordered_nodes: list[Node], succs: dict[Node, list[Node]]
) -> list[list[Node]]:
    """Tarjan's SCC algorithm (iterative) restricted to ``ordered_nodes``.

    Only *non-trivial* components are returned: components with at least two
    nodes, or a single node with a self-loop.  Roots are explored in the
    given order so results are deterministic.
    """
    nodes = set(ordered_nodes)
    index_counter = 0
    index: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    result: list[list[Node]] = []

    for root in ordered_nodes:
        if root in index:
            continue
        work: list[tuple[Node, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = [s for s in succs.get(node, ()) if s in nodes]
            for offset in range(child_index, len(children)):
                succ = children[offset]
                if succ not in index:
                    work.append((node, offset + 1))
                    work.append((succ, 0))
                    recurse = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                has_self_loop = node in succs.get(node, ()) and len(component) == 1
                if len(component) > 1 or has_self_loop:
                    result.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result
