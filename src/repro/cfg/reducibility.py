"""Reducibility tests.

Section 2.1 of the paper: *"A control-flow graph is called reducible if for
each back edge (s, t) the target t dominates the source s."*  Reducibility
matters because Lemma 3 / Theorem 2 show that on reducible CFGs the
``T_(q,a)`` candidates are totally ordered by dominance, so the bitset query
(Algorithm 3) only ever needs its first iteration.

Two independent characterisations are implemented:

* :func:`is_reducible` — the back-edge/dominance definition above (this is
  what the checker's fast path keys on);
* :func:`is_reducible_by_intervals` — repeated T1 (self-loop removal) / T2
  (unique-predecessor merge) reduction in the style of Hecht & Ullman.  The
  graph is reducible iff it collapses to a single node.

The test suite asserts both agree on thousands of random graphs, which
guards the correctness of the reducible fast path.
"""

from __future__ import annotations

from repro.cfg.dfs import DepthFirstSearch
from repro.cfg.dominance import DominatorTree
from repro.cfg.graph import ControlFlowGraph, Node


def is_reducible(
    graph: ControlFlowGraph,
    dfs: DepthFirstSearch | None = None,
    domtree: DominatorTree | None = None,
) -> bool:
    """True iff every DFS back edge's target dominates its source."""
    dfs = dfs if dfs is not None else DepthFirstSearch(graph)
    domtree = domtree if domtree is not None else DominatorTree(graph, dfs)
    return all(
        domtree.dominates(target, source) for source, target in dfs.back_edges()
    )


def irreducible_back_edges(
    graph: ControlFlowGraph,
    dfs: DepthFirstSearch | None = None,
    domtree: DominatorTree | None = None,
) -> list[tuple[Node, Node]]:
    """Back edges whose target does not dominate their source.

    The paper's §6.1 reports 60 such edges over the whole of SPEC2000 CINT;
    the edge-statistics benchmark reproduces the analogous count on the
    synthetic workload.
    """
    dfs = dfs if dfs is not None else DepthFirstSearch(graph)
    domtree = domtree if domtree is not None else DominatorTree(graph, dfs)
    return [
        (source, target)
        for source, target in dfs.back_edges()
        if not domtree.dominates(target, source)
    ]


def is_reducible_by_intervals(graph: ControlFlowGraph) -> bool:
    """Reducibility via exhaustive T1/T2 reduction (Hecht & Ullman).

    T1 removes a self-loop ``(n, n)``; T2 merges a node with its unique
    predecessor.  A flow graph is reducible iff these transformations can
    collapse it to a single node.  This implementation operates on
    successor/predecessor *sets* of representative nodes and is O(n·m) in
    the worst case, which is fine for its validation role.
    """
    nodes = set(graph.nodes())
    succs: dict[Node, set[Node]] = {node: set() for node in nodes}
    preds: dict[Node, set[Node]] = {node: set() for node in nodes}
    for source, target in graph.edges():
        succs[source].add(target)
        preds[target].add(source)
    entry = graph.entry

    changed = True
    while changed and len(nodes) > 1:
        changed = False
        for node in list(nodes):
            # T1: remove self loop.
            if node in succs[node]:
                succs[node].discard(node)
                preds[node].discard(node)
                changed = True
            # T2: merge into unique predecessor.
            if node == entry:
                continue
            if len(preds[node]) == 1:
                (pred,) = preds[node]
                if pred == node:
                    continue
                # Redirect node's successors to come from pred.
                for succ in succs[node]:
                    if succ != node:
                        succs[pred].add(succ)
                        preds[succ].discard(node)
                        preds[succ].add(pred)
                succs[pred].discard(node)
                nodes.discard(node)
                del succs[node]
                del preds[node]
                # Clean up a self-loop that the merge may have created
                # (it corresponds to a back edge of a natural loop).
                succs[pred].discard(pred)
                preds[pred].discard(pred)
                changed = True
    return len(nodes) == 1
