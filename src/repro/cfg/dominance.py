"""Dominator trees and the dominance-preorder numbering of Section 5.1.

A node ``x`` dominates ``y`` when every path from the entry to ``y`` passes
through ``x``; dominance is *strict* when additionally ``x != y``
(Section 2.1).  The dominance relation forms a tree, and strict SSA form
guarantees that every use of a variable is dominated by its definition —
the property that makes the whole liveness-checking approach work.

Two classic constructions are provided:

* :class:`DominatorTree` (default) — the Cooper–Harvey–Kennedy iterative
  algorithm over reverse postorder ("A Simple, Fast Dominance Algorithm"),
  which is near-linear in practice and easy to audit.
* :func:`immediate_dominators_lengauer_tarjan` — the Lengauer–Tarjan
  algorithm with simple path compression, used by the test suite to
  cross-validate the iterative construction on random graphs.

On top of the tree the class exposes the dominance-preorder numbering used
by the bitset implementation of the checker: ``num(v)`` is a preorder index
of the dominance tree and ``maxnum(v)`` is the largest index inside ``v``'s
subtree, so the nodes strictly dominated by ``v`` are exactly those whose
number lies in ``(num(v), maxnum(v)]`` and the ones dominated (non-strictly)
occupy ``[num(v), maxnum(v)]``.
"""

from __future__ import annotations

from typing import Iterator

from repro.cfg.dfs import DepthFirstSearch
from repro.cfg.graph import ControlFlowGraph, Node


class DominatorTree:
    """Immediate dominators, dominance queries and preorder numbering."""

    def __init__(self, graph: ControlFlowGraph, dfs: DepthFirstSearch | None = None) -> None:
        self._graph = graph
        self._dfs = dfs if dfs is not None else DepthFirstSearch(graph)
        self._idom = _immediate_dominators_iterative(graph, self._dfs)
        self._children: dict[Node, list[Node]] = {node: [] for node in self._idom}
        for node, idom in self._idom.items():
            if idom is not None and idom != node:
                self._children[idom].append(node)
        # Children are kept in reverse-postorder so that the preorder
        # numbering below is deterministic and roughly follows control flow,
        # matching the numeration shown in the paper's Figure 3.
        rpo_index = {
            node: index for index, node in enumerate(self._dfs.reverse_postorder())
        }
        for children in self._children.values():
            children.sort(key=rpo_index.__getitem__)
        self._num: dict[Node, int] = {}
        self._maxnum: dict[Node, int] = {}
        self._preorder_nodes: list[Node] = []
        self._number_tree()
        self._depth: dict[Node, int] = {}
        self._compute_depths()

    # ------------------------------------------------------------------
    # Construction details
    # ------------------------------------------------------------------
    def _number_tree(self) -> None:
        """Assign ``num``/``maxnum`` by an iterative preorder walk."""
        root = self._graph.entry
        stack: list[tuple[Node, bool]] = [(root, False)]
        while stack:
            node, exiting = stack.pop()
            if exiting:
                last = len(self._preorder_nodes) - 1
                children = self._children[node]
                self._maxnum[node] = (
                    self._maxnum[children[-1]] if children else self._num[node]
                )
                # ``last`` is only used to keep linters honest about the walk
                # being preorder; maxnum is derived from the children.
                del last
                continue
            self._num[node] = len(self._preorder_nodes)
            self._preorder_nodes.append(node)
            stack.append((node, True))
            for child in reversed(self._children[node]):
                stack.append((child, False))

    def _compute_depths(self) -> None:
        for node in self._preorder_nodes:
            idom = self._idom[node]
            if idom is None or idom == node:
                self._depth[node] = 0
            else:
                self._depth[node] = self._depth[idom] + 1

    # ------------------------------------------------------------------
    # Tree structure
    # ------------------------------------------------------------------
    @property
    def graph(self) -> ControlFlowGraph:
        """The underlying control-flow graph."""
        return self._graph

    @property
    def dfs(self) -> DepthFirstSearch:
        """The DFS used for the reverse-postorder fixpoint iteration."""
        return self._dfs

    @property
    def root(self) -> Node:
        """The root of the dominance tree (the CFG entry)."""
        return self._graph.entry

    def immediate_dominator(self, node: Node) -> Node | None:
        """The immediate dominator of ``node`` (``None`` for the entry)."""
        idom = self._idom[node]
        return None if idom == node else idom

    def children(self, node: Node) -> list[Node]:
        """The nodes whose immediate dominator is ``node``."""
        return list(self._children[node])

    def depth(self, node: Node) -> int:
        """Distance of ``node`` from the root of the dominance tree."""
        return self._depth[node]

    # ------------------------------------------------------------------
    # Dominance queries
    # ------------------------------------------------------------------
    def dominates(self, x: Node, y: Node) -> bool:
        """``x dom y``: every entry-to-``y`` path contains ``x``.

        Implemented as an O(1) interval test on the preorder numbering: a
        node dominates exactly the nodes of its dominance subtree.
        """
        return self._num[x] <= self._num[y] <= self._maxnum[x]

    def strictly_dominates(self, x: Node, y: Node) -> bool:
        """``x sdom y``: ``x dom y`` and ``x != y``."""
        return x != y and self.dominates(x, y)

    def dominated(self, node: Node) -> list[Node]:
        """``dom(node)``: every node dominated by ``node`` (preorder)."""
        lo, hi = self._num[node], self._maxnum[node]
        return self._preorder_nodes[lo : hi + 1]

    def strictly_dominated(self, node: Node) -> list[Node]:
        """``sdom(node) = dom(node) \\ {node}`` (preorder)."""
        lo, hi = self._num[node], self._maxnum[node]
        return self._preorder_nodes[lo + 1 : hi + 1]

    def dominators_of(self, node: Node) -> list[Node]:
        """All dominators of ``node``, from the node itself up to the entry."""
        chain = [node]
        current = node
        while True:
            idom = self.immediate_dominator(current)
            if idom is None:
                return chain
            chain.append(idom)
            current = idom

    def nearest_common_dominator(self, x: Node, y: Node) -> Node:
        """The closest node dominating both ``x`` and ``y``."""
        while x != y:
            if self._depth[x] < self._depth[y]:
                x, y = y, x
            idom = self.immediate_dominator(x)
            assert idom is not None, "walked past the dominance-tree root"
            x = idom
        return x

    # ------------------------------------------------------------------
    # Preorder numbering (Section 5.1)
    # ------------------------------------------------------------------
    def num(self, node: Node) -> int:
        """Dominance-tree preorder number of ``node``."""
        return self._num[node]

    def maxnum(self, node: Node) -> int:
        """Largest preorder number inside ``node``'s dominance subtree."""
        return self._maxnum[node]

    def node_of(self, number: int) -> Node:
        """Inverse of :meth:`num`."""
        return self._preorder_nodes[number]

    def preorder(self) -> list[Node]:
        """Nodes ordered by their dominance-preorder number."""
        return list(self._preorder_nodes)

    def __len__(self) -> int:
        return len(self._preorder_nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._preorder_nodes)

    def as_idom_map(self) -> dict[Node, Node | None]:
        """Immediate-dominator mapping (entry maps to ``None``)."""
        return {node: self.immediate_dominator(node) for node in self._preorder_nodes}


# ----------------------------------------------------------------------
# Cooper–Harvey–Kennedy iterative construction
# ----------------------------------------------------------------------
def _immediate_dominators_iterative(
    graph: ControlFlowGraph, dfs: DepthFirstSearch
) -> dict[Node, Node]:
    """Compute ``idom`` with the classic RPO fixpoint iteration.

    The entry maps to itself (the conventional sentinel), and the public
    :class:`DominatorTree` API converts that back to ``None``.
    """
    rpo = dfs.reverse_postorder()
    rpo_index = {node: index for index, node in enumerate(rpo)}
    entry = graph.entry
    idom: dict[Node, Node] = {entry: entry}

    def intersect(a: Node, b: Node) -> Node:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == entry:
                continue
            candidates = [
                pred
                for pred in graph.predecessors(node)
                if pred in idom and dfs.visited(pred)
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    missing = [node for node in graph.nodes() if node not in idom]
    if missing:
        raise ValueError(f"nodes unreachable from entry: {missing!r}")
    return idom


# ----------------------------------------------------------------------
# Lengauer–Tarjan (simple path compression) — used for cross-validation
# ----------------------------------------------------------------------
def immediate_dominators_lengauer_tarjan(
    graph: ControlFlowGraph,
) -> dict[Node, Node | None]:
    """Compute immediate dominators with the Lengauer–Tarjan algorithm.

    This is the "simple" O(m log n) variant with path compression.  The
    public entry point of the library is :class:`DominatorTree`; this
    function exists so the test suite can check the two independent
    constructions against each other on randomly generated CFGs.
    """
    dfs = DepthFirstSearch(graph)
    order = dfs.preorder()
    number = {node: index for index, node in enumerate(order)}
    parent = {node: dfs.parent(node) for node in order}

    semi = dict(number)
    vertex = list(order)
    bucket: dict[Node, list[Node]] = {node: [] for node in order}
    dom: dict[Node, Node] = {}

    ancestor: dict[Node, Node | None] = {node: None for node in order}
    label: dict[Node, Node] = {node: node for node in order}

    def compress(v: Node) -> None:
        # Iterative path compression to avoid recursion limits.
        path = []
        while ancestor[v] is not None and ancestor[ancestor[v]] is not None:
            path.append(v)
            v = ancestor[v]
        while path:
            node = path.pop()
            anc = ancestor[node]
            if semi[label[anc]] < semi[label[node]]:
                label[node] = label[anc]
            ancestor[node] = ancestor[anc]

    def evaluate(v: Node) -> Node:
        if ancestor[v] is None:
            return label[v]
        compress(v)
        return label[v]

    for w in reversed(order[1:]):
        for v in graph.predecessors(w):
            if v not in number:
                continue
            u = evaluate(v)
            if semi[u] < semi[w]:
                semi[w] = semi[u]
        bucket[vertex[semi[w]]].append(w)
        par = parent[w]
        assert par is not None
        ancestor[w] = par
        for v in bucket[par]:
            u = evaluate(v)
            dom[v] = u if semi[u] < semi[v] else par
        bucket[par].clear()

    for w in order[1:]:
        if dom[w] != vertex[semi[w]]:
            dom[w] = dom[dom[w]]

    result: dict[Node, Node | None] = {order[0]: None}
    for w in order[1:]:
        result[w] = dom[w]
    return result
