"""Independent validation of a register allocation.

Nothing in this module touches the paper's checker: liveness comes from
the conventional iterative data-flow engine
(:class:`~repro.liveness.dataflow.DataflowLiveness`) and the within-block
refinement is a straightforward backward walk over each block.  Agreement
between an allocation produced *through* the fast checker and this
verifier is therefore genuine end-to-end evidence, in the same spirit as
the differential tests of the liveness engines themselves.

The verifier works on strict-SSA functions and equally on the non-SSA
output of :func:`repro.ssadestruct.destruct` (the data-flow analysis
never needed SSA form), so the allocator can be checked both before and
after φ-lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.ir.function import Function
from repro.ir.value import Variable
from repro.liveness.ranges import per_point_live_sets

__all__ = ["per_point_live_sets", "VerificationResult", "verify_allocation"]

if TYPE_CHECKING:  # pragma: no cover
    from repro.regalloc.allocator import Allocation

#: Cap on collected error messages (a broken allocation fails everywhere).
_MAX_ERRORS = 20


@dataclass
class VerificationResult:
    """Outcome of :func:`verify_allocation`."""

    ok: bool = True
    errors: list[str] = field(default_factory=list)
    points_checked: int = 0
    #: Max pressure over definition points, as observed by the verifier
    #: (the independent MaxLive — a value written at a dead definition
    #: still occupies a register at that point).
    max_pressure: int = 0
    #: Number of distinct registers appearing in the allocation.
    registers_used: int = 0

    def _record(self, message: str) -> None:
        self.ok = False
        if len(self.errors) < _MAX_ERRORS:
            self.errors.append(message)


def verify_allocation(
    function: Function, allocation: "Allocation"
) -> VerificationResult:
    """Check that no two simultaneously-live variables share a register.

    Three families of checks, all against the independent data-flow
    liveness:

    1. every live variable has a register;
    2. at every program point, the registers of the live variables are
       pairwise distinct;
    3. at every definition point, the defined register does not clobber a
       value that is still needed (covers dead definitions, which never
       appear in any live set);

    plus the bookkeeping that spill slots are not shared.
    """
    register_of = allocation.register_of
    result = VerificationResult()
    result.registers_used = len(set(register_of.values()))
    points = per_point_live_sets(function)
    for block in function:
        for index, live_after in enumerate(points[block.name]):
            result.points_checked += 1
            by_register: dict[int, Variable] = {}
            for var in live_after:
                register = register_of.get(var)
                if register is None:
                    result._record(
                        f"{block.name}[{index}]: live variable {var.name!r} "
                        "has no register"
                    )
                    continue
                clash = by_register.get(register)
                if clash is not None:
                    result._record(
                        f"{block.name}[{index}]: {var.name!r} and "
                        f"{clash.name!r} are simultaneously live in r{register}"
                    )
                by_register[register] = var
            inst = block.instructions[index]
            defined_vars = inst.defined_variables()
            if defined_vars:
                pressure = len(live_after | set(defined_vars))
                result.max_pressure = max(result.max_pressure, pressure)
            for defined in defined_vars:
                register = register_of.get(defined)
                if register is None:
                    result._record(
                        f"{block.name}[{index}]: defined variable "
                        f"{defined.name!r} has no register"
                    )
                else:
                    clash = next(
                        (
                            var
                            for var in live_after
                            if var is not defined
                            and register_of.get(var) == register
                        ),
                        None,
                    )
                    if clash is not None:
                        result._record(
                            f"{block.name}[{index}]: definition of "
                            f"{defined.name!r} clobbers live {clash.name!r} "
                            f"in r{register}"
                        )
    slots_seen: dict[int, Variable] = {}
    for var, slot in allocation.spill_slot_of.items():
        other = slots_seen.get(slot)
        if other is not None:
            result._record(
                f"spill slot {slot} assigned to both {other.name!r} and {var.name!r}"
            )
        slots_seen[slot] = var
    return result
