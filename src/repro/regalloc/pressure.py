"""Register pressure and MaxLive, computed from liveness *queries* only.

A register allocator's first question is "how many values are alive at
once?".  With precomputed live sets that is a lookup; the point of this
module is that it is just as expressible against the paper's on-demand
checker — block-level liveness comes from ``is_live_in``/``is_live_out``
queries (batched through :class:`repro.core.batch.BatchQueryEngine` when
the oracle supports it) and the *within*-block refinement is a local scan
of the instruction stream, no global data-flow required.

Conventions (shared with :mod:`repro.regalloc.chordal` so that "number of
colors used" and "MaxLive" are measured against the same ruler):

* a variable occupies a register from its definition to its last use —
  and at least *at* its definition point, even when dead (the value is
  written somewhere);
* a φ operand flowing out of block ``p`` is treated as used at the very
  end of ``p`` (Definition 1 of the paper), which is exactly where SSA
  destruction will place the copy that reads it;
* pressure is sampled at *definition points* (just after each defining
  instruction).  For strict SSA programs every maximal interference
  clique is the live set at some definition point, so the maximum over
  definition points — **MaxLive** — equals the chromatic number of the
  interference graph and therefore the register count of an optimal
  spill-free assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.value import Variable
from repro.liveness.oracle import LivenessOracle


class BlockLiveness:
    """Block-level liveness facts for one function, via oracle queries.

    This is the query front-end shared by the pressure computation and the
    chordal coloring: live-in/live-out sets per block (bulk-computed with
    the batch engine when ``use_batch`` is set and the oracle exposes
    ``live_in_set``/``live_out_set``), the φ-operand "edge uses" attributed
    to each predecessor, and the last in-block use index of every variable.
    """

    def __init__(
        self,
        function: Function,
        oracle: LivenessOracle,
        variables: list[Variable] | None = None,
        use_batch: bool = True,
    ) -> None:
        self.function = function
        self.oracle = oracle
        oracle.prepare()
        self.variables = (
            list(variables) if variables is not None else oracle.live_variables()
        )
        self._tracked = {id(var) for var in self.variables}
        #: block -> variables read by a successor φ through this block.
        self.edge_uses: dict[str, set[Variable]] = {
            block.name: set() for block in function
        }
        for block in function:
            for phi in block.phis():
                for pred, value in phi.incoming.items():
                    if isinstance(value, Variable) and id(value) in self._tracked:
                        self.edge_uses[pred].add(value)
        self._live_in: dict[str, set[Variable]] = {}
        self._live_out: dict[str, set[Variable]] = {}
        self._compute_block_sets(use_batch)

    def _compute_block_sets(self, use_batch: bool) -> None:
        oracle = self.oracle
        blocks = [block.name for block in self.function]
        self._live_in = {name: set() for name in blocks}
        self._live_out = {name: set() for name in blocks}
        if use_batch and hasattr(oracle, "batch"):
            # One joint interval sweep per variable over the shared query
            # plans — both directions at once.
            live_in, live_out = oracle.batch.live_maps(self.variables)
            for name, members in live_in.items():
                self._live_in[name] |= members
            for name, members in live_out.items():
                self._live_out[name] |= members
            return
        batched = use_batch and hasattr(oracle, "live_in_set")
        for var in self.variables:
            if batched:
                in_blocks = oracle.live_in_set(var)
                out_blocks = oracle.live_out_set(var)
                for name in in_blocks:
                    self._live_in[name].add(var)
                for name in out_blocks:
                    self._live_out[name].add(var)
            else:
                for name in blocks:
                    if oracle.is_live_in(var, name):
                        self._live_in[name].add(var)
                    if oracle.is_live_out(var, name):
                        self._live_out[name].add(var)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def live_in(self, block: str) -> set[Variable]:
        """Variables live-in at ``block`` (tracked subset)."""
        return self._live_in[block]

    def live_out(self, block: str) -> set[Variable]:
        """Variables live-out at ``block`` (tracked subset)."""
        return self._live_out[block]

    def ends_at_exit(self, var: Variable, block: str) -> bool:
        """Does ``var``'s range extend to the end of ``block``?

        True when the variable is live-out or read by a successor φ
        through ``block`` (the parallel-copy point of SSA destruction).
        """
        return var in self._live_out[block] or var in self.edge_uses[block]

    def last_uses(self, block: str) -> dict[Variable, int]:
        """Last in-block use index of every tracked variable used in ``block``.

        φ instructions are skipped — their operands are uses in the
        predecessors, not here.  Terminator operands count like any other
        use (the terminator is the last instruction).
        """
        result: dict[Variable, int] = {}
        for index, inst in enumerate(self.function.block(block).instructions):
            if inst.is_phi():
                continue
            for value in inst.operands:
                if isinstance(value, Variable) and id(value) in self._tracked:
                    result[value] = index
        return result

    def death_index(
        self, var: Variable, block: str, last_uses: dict[Variable, int]
    ) -> int | None:
        """Index after which ``var`` is dead in ``block`` (``None`` = never)."""
        if self.ends_at_exit(var, block):
            return None
        return last_uses.get(var, -1)


@dataclass
class BlockPressure:
    """Pressure summary of one basic block."""

    block: str
    #: Number of variables live-in at the block.
    entry: int
    #: Number of variables alive at the very end (live-out plus φ edge uses).
    exit: int
    #: Highest pressure over the block's definition points (0 if none).
    max_def_point: int
    #: Instruction index of the hottest definition point (-1 if none).
    max_index: int = -1


@dataclass
class PressureInfo:
    """Function-wide register-pressure report."""

    per_block: dict[str, BlockPressure] = field(default_factory=dict)
    #: MaxLive: maximum pressure over all definition points.
    max_live: int = 0
    #: Block holding the hottest definition point (``None`` if no defs).
    max_block: str | None = None
    #: Instruction index of the hottest definition point within that block.
    max_index: int = -1
    #: The variables alive at the hottest point (including the one defined).
    max_live_set: set[Variable] = field(default_factory=set)

    @property
    def max_entry_pressure(self) -> int:
        """Largest live-in count over all blocks (never exceeds MaxLive)."""
        if not self.per_block:
            return 0
        return max(block.entry for block in self.per_block.values())


def compute_pressure(
    function: Function,
    oracle: LivenessOracle,
    variables: list[Variable] | None = None,
    use_batch: bool = True,
    block_liveness: BlockLiveness | None = None,
) -> PressureInfo:
    """Compute per-block pressure and MaxLive for ``function``.

    Every piece of global information is obtained through ``oracle``
    queries; pass ``use_batch=False`` to force the one-query-per-pair
    path (the ablation knob the regalloc benchmark flips).
    """
    liveness = (
        block_liveness
        if block_liveness is not None
        else BlockLiveness(function, oracle, variables, use_batch)
    )
    tracked = {id(var) for var in liveness.variables}
    info = PressureInfo()
    for block in function:
        name = block.name
        last_uses = liveness.last_uses(name)
        live_end = liveness.live_out(name) | liveness.edge_uses[name]
        #: var -> index after which it is dead (None = survives the block).
        active: dict[Variable, int | None] = {}
        for var in liveness.live_in(name):
            active[var] = liveness.death_index(var, name, last_uses)
        block_max = 0
        block_max_index = -1
        block_max_set: set[Variable] = set()
        for index, inst in enumerate(block.instructions):
            defined = inst.result
            if defined is None or id(defined) not in tracked:
                continue
            for var in [v for v, death in active.items() if death is not None and death <= index]:
                del active[var]
            death = liveness.death_index(defined, name, last_uses)
            if death is not None and death < index:
                # Dead definition: the value still needs a register *at*
                # its definition point.
                death = index
            active[defined] = death
            pressure = len(active)
            if pressure > block_max:
                block_max = pressure
                block_max_index = index
                block_max_set = set(active)
        info.per_block[name] = BlockPressure(
            block=name,
            entry=len(liveness.live_in(name)),
            exit=len(live_end),
            max_def_point=block_max,
            max_index=block_max_index,
        )
        if block_max > info.max_live:
            info.max_live = block_max
            info.max_block = name
            info.max_index = block_max_index
            info.max_live_set = block_max_set
    return info


def max_live(
    function: Function,
    oracle: LivenessOracle,
    variables: list[Variable] | None = None,
    use_batch: bool = True,
) -> int:
    """Convenience wrapper: just the MaxLive number."""
    return compute_pressure(function, oracle, variables, use_batch).max_live
