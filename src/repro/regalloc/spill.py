"""Furthest-next-use spilling: lower MaxLive to the register budget.

When MaxLive exceeds the ``K`` registers the target offers, some values
must live in memory.  This module implements the classic Belady-flavoured
heuristic: find the hottest definition point, and among the values alive
there evict the one whose *next use* is furthest away.  The evicted
variable is rewritten store-after-def / reload-before-use ("spill
everywhere"): its original register range shrinks to the single point
between definition and store, and every use reads a fresh short-lived
reload temporary instead.

The loop is deliberately *iterative* — spill one variable, re-measure
pressure, repeat — because that is the workload the paper's checker is
built for: inserting spill code edits instructions but never the CFG, so
the ``R``/``T`` precomputation survives every round and only the def–use
chains are rebuilt (``on_change`` is the hook where the backend refreshes
whatever it must: the fast checker calls
``notify_instructions_changed()``, a conventional data-flow engine has to
recompute its whole fixpoint).  The regalloc benchmark measures exactly
this asymmetry.

Reload temporaries are never themselves spill candidates, and each spilled
variable gets its own slot; the loop stops when the budget is met, when no
candidate remains, or after a generous round cap (pressure created by the
reloads of a single instruction cannot be spilled away).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.ir.function import Function
from repro.ir.instruction import Instruction, Opcode
from repro.ir.value import Constant, Variable
from repro.liveness.oracle import LivenessOracle
from repro.regalloc.pressure import PressureInfo, compute_pressure

#: Synthetic per-block-hop distance used by the next-use estimate; any
#: value larger than a realistic block length keeps in-block uses ranked
#: closer than cross-block ones.
_HOP_DISTANCE = 1000


@dataclass
class SpillReport:
    """Outcome of one pressure-lowering run."""

    spilled: list[Variable] = field(default_factory=list)
    #: Spill slot number per spilled variable.
    slot_of: dict[Variable, int] = field(default_factory=dict)
    rounds: int = 0
    stores_inserted: int = 0
    reloads_inserted: int = 0
    max_live_before: int = 0
    max_live_after: int = 0


class _Spiller:
    def __init__(
        self,
        function: Function,
        num_registers: int,
        oracle_provider: Callable[[], LivenessOracle],
        on_change: Callable[[], None] | None,
        use_batch: bool,
        first_slot: int,
        initial_info: PressureInfo | None = None,
    ) -> None:
        self.function = function
        self.k = num_registers
        self.oracle_provider = oracle_provider
        self.on_change = on_change
        self.use_batch = use_batch
        self.report = SpillReport()
        self._next_slot = first_slot
        self._temp_counter = 0
        self._initial_info = initial_info
        #: ids of variables that may never be evicted (reload temporaries).
        self._protected: set[int] = set()

    # ------------------------------------------------------------------
    # Driver loop
    # ------------------------------------------------------------------
    def run(self) -> SpillReport:
        max_rounds = max(8, 2 * len(self.function.variables()))
        # The caller usually measured pressure already to decide whether to
        # spill at all; reuse that for round 0 instead of re-sweeping.
        info = self._initial_info
        while True:
            if info is None:
                info = compute_pressure(
                    self.function, self.oracle_provider(), use_batch=self.use_batch
                )
            if self.report.rounds == 0:
                self.report.max_live_before = info.max_live
            self.report.max_live_after = info.max_live
            if info.max_live <= self.k or self.report.rounds >= max_rounds:
                break
            victim = self._choose_victim(info)
            if victim is None:
                break
            self._spill(victim)
            self.report.rounds += 1
            if self.on_change is not None:
                self.on_change()
            info = None
        return self.report

    # ------------------------------------------------------------------
    # Victim selection (furthest next use from the hottest point)
    # ------------------------------------------------------------------
    def _choose_victim(self, info: PressureInfo) -> Variable | None:
        assert info.max_block is not None
        candidates = [
            var
            for var in info.max_live_set
            if id(var) not in self._protected and var not in self.report.slot_of
        ]
        if not candidates:
            return None
        use_blocks, edge_blocks = self._use_maps(candidates)
        block = info.max_block
        index = info.max_index
        ranked = sorted(
            candidates,
            key=lambda var: (
                -self._next_use_distance(
                    var,
                    block,
                    index,
                    use_blocks.get(var, set()),
                    edge_blocks.get(var, set()),
                ),
                var.name,
            ),
        )
        return ranked[0]

    def _use_maps(
        self, candidates: list[Variable]
    ) -> tuple[dict[Variable, set[str]], dict[Variable, set[str]]]:
        """Use blocks of every candidate in one pass over the function.

        φ operands count as uses at the corresponding predecessor
        (Definition 1); those are additionally reported separately, since
        an edge use sits at the very *end* of its block.
        """
        wanted = {id(var) for var in candidates}
        uses: dict[Variable, set[str]] = {}
        edge: dict[Variable, set[str]] = {}
        for block in self.function:
            for inst in block.instructions:
                if inst.is_phi():
                    for pred, value in inst.incoming.items():
                        if isinstance(value, Variable) and id(value) in wanted:
                            uses.setdefault(value, set()).add(pred)
                            edge.setdefault(value, set()).add(pred)
                else:
                    for value in inst.operands:
                        if isinstance(value, Variable) and id(value) in wanted:
                            uses.setdefault(value, set()).add(block.name)
        return uses, edge

    def _next_use_distance(
        self,
        var: Variable,
        block: str,
        index: int,
        use_blocks: set[str],
        edge_blocks: set[str],
    ) -> float:
        """Estimated distance from (block, index) to the next read of ``var``.

        In-block uses are measured in instructions; uses in other blocks
        add a large per-hop constant along a BFS over CFG successors, so
        the ranking realises "furthest next use" without a precise global
        next-use analysis.  ``inf`` means the value is never read again.
        """
        instructions = self.function.block(block).instructions
        for later in range(index + 1, len(instructions)):
            inst = instructions[later]
            if inst.is_phi():
                continue
            if any(op is var for op in inst.operands):
                return later - index
        if block in edge_blocks:
            return len(instructions) - index
        seen = {block}
        frontier = deque([(block, 1)])
        while frontier:
            current, hops = frontier.popleft()
            for succ in self.function.block(current).successors():
                if succ in seen:
                    continue
                if succ in use_blocks:
                    return len(instructions) - index + hops * _HOP_DISTANCE
                seen.add(succ)
                frontier.append((succ, hops + 1))
        return float("inf")

    # ------------------------------------------------------------------
    # Rewrite: store after def, reload before every use
    # ------------------------------------------------------------------
    def _spill(self, var: Variable) -> None:
        slot = self._next_slot
        self._next_slot += 1
        self.report.slot_of[var] = slot
        self.report.spilled.append(var)
        self._insert_store(var, slot)
        self._rewrite_plain_uses(var, slot)
        self._rewrite_phi_uses(var, slot)

    def _make_temp(self, var: Variable) -> Variable:
        temp = Variable(f"{var.name}.reload{self._temp_counter}")
        self._temp_counter += 1
        self._protected.add(id(temp))
        return temp

    def _insert_store(self, var: Variable, slot: int) -> None:
        definition = var.definition
        assert definition is not None and definition.block is not None
        block = definition.block
        if definition.is_phi():
            # Stores may not interrupt the φ prefix.
            position = len(block.phis())
        else:
            position = block.instructions.index(definition) + 1
        block.insert(
            position,
            Instruction(
                Opcode.STORE, operands=[var, Constant(slot)], detail="spill"
            ),
        )
        self.report.stores_inserted += 1

    def _reload(self, var: Variable, slot: int) -> Instruction:
        temp = self._make_temp(var)
        self.report.reloads_inserted += 1
        return Instruction(
            Opcode.LOAD, result=temp, operands=[Constant(slot)], detail="reload"
        )

    def _rewrite_plain_uses(self, var: Variable, slot: int) -> None:
        for block in self.function:
            index = 0
            while index < len(block.instructions):
                inst = block.instructions[index]
                if (
                    not inst.is_phi()
                    and inst.detail != "spill"
                    and any(op is var for op in inst.operands)
                ):
                    reload = self._reload(var, slot)
                    block.insert(index, reload)
                    assert reload.result is not None
                    inst.replace_uses(var, reload.result)
                    index += 1
                index += 1

    def _rewrite_phi_uses(self, var: Variable, slot: int) -> None:
        # Group φ uses by predecessor so several φs reading the same
        # spilled value through one edge share a single reload.
        sites: dict[str, list] = {}
        for block in self.function:
            for phi in block.phis():
                for pred, value in phi.incoming.items():
                    if value is var:
                        sites.setdefault(pred, []).append((phi, pred))
        for pred, phis in sites.items():
            reload = self._reload(var, slot)
            self.function.block(pred).insert_before_terminator(reload)
            for phi, pred_name in phis:
                phi.set_incoming(pred_name, reload.result)


def lower_pressure(
    function: Function,
    num_registers: int,
    oracle_provider: Callable[[], LivenessOracle],
    on_change: Callable[[], None] | None = None,
    use_batch: bool = True,
    first_slot: int = 0,
    initial_info: PressureInfo | None = None,
) -> SpillReport:
    """Spill until MaxLive fits in ``num_registers`` (or no candidate is left).

    ``oracle_provider`` is called at the top of every round and must return
    an oracle that is *currently valid* for the (possibly just rewritten)
    function; ``on_change`` is invoked after each rewrite so the backend
    can refresh itself at whatever cost its representation implies.
    ``initial_info`` may carry a pressure report already computed for the
    untouched function, sparing the first round its sweep.
    """
    if num_registers < 1:
        raise ValueError("num_registers must be at least 1")
    spiller = _Spiller(
        function,
        num_registers,
        oracle_provider,
        on_change,
        use_batch,
        first_slot,
        initial_info,
    )
    return spiller.run()
