"""Greedy coloring of SSA interference in dominance order.

The interference graph of a strict-SSA program is *chordal* (Hack,
Bouchez, Brisk et al.), and its simplicial-elimination structure is given
away for free by the dominator tree: visit the blocks in dominator-tree
preorder and the definitions inside each block in instruction order, and
every variable alive at a definition point has already been assigned a
color.  Picking the lowest free color at each definition therefore yields
an *optimal* coloring — exactly MaxLive colors (see
:mod:`repro.regalloc.pressure` for the shared conventions).

The scan needs precisely two kinds of global information, both of which
are liveness queries: "which variables are live-in here?" (to seed the
active set of a block) and "does this variable survive the block?" (to
decide when a register frees up).  That makes the pass a natural client
of the paper's checker — no interference graph, no precomputed live sets,
and spill-code insertion between runs never invalidates anything beyond
the def–use chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.dominance import DominatorTree
from repro.ir.function import Function
from repro.ir.value import Variable
from repro.liveness.oracle import LivenessOracle
from repro.regalloc.pressure import BlockLiveness


@dataclass
class Coloring:
    """A register assignment for every tracked variable."""

    #: Variable (identity-keyed) → register number, 0-based and dense.
    color_of: dict[Variable, int] = field(default_factory=dict)
    #: Number of distinct registers used.
    num_colors: int = 0
    #: Variables in the order they were colored (dominance order of defs).
    order: list[Variable] = field(default_factory=list)

    def register(self, var: Variable) -> int:
        """The register assigned to ``var``."""
        return self.color_of[var]


def _lowest_free(occupied: set[int]) -> int:
    color = 0
    while color in occupied:
        color += 1
    return color


def color_function(
    function: Function,
    oracle: LivenessOracle,
    variables: list[Variable] | None = None,
    use_batch: bool = True,
    domtree: DominatorTree | None = None,
    block_liveness: BlockLiveness | None = None,
) -> Coloring:
    """Color every tracked variable of an SSA-form ``function``.

    ``oracle`` answers the liveness queries; ``domtree`` may be supplied
    to reuse an existing dominator tree (e.g. the one inside a
    :class:`~repro.core.live_checker.FastLivenessChecker`'s
    precomputation), otherwise one is built from the function's CFG.
    """
    liveness = (
        block_liveness
        if block_liveness is not None
        else BlockLiveness(function, oracle, variables, use_batch)
    )
    if domtree is None:
        pre = getattr(oracle, "precomputation", None)
        domtree = pre.domtree if pre is not None else DominatorTree(function.build_cfg())
    tracked = {id(var) for var in liveness.variables}
    coloring = Coloring()
    for name in domtree.preorder():
        block = function.block(name)
        last_uses = liveness.last_uses(name)
        #: var -> index after which it is dead in this block (None = never).
        active: dict[Variable, int | None] = {}
        for var in liveness.live_in(name):
            if var not in coloring.color_of:
                raise ValueError(
                    f"variable {var.name!r} is live-in at {name!r} but its "
                    "definition was not visited earlier in dominance order; "
                    "the function is not in strict SSA form"
                )
            active[var] = liveness.death_index(var, name, last_uses)
        for index, inst in enumerate(block.instructions):
            defined = inst.result
            if defined is None or id(defined) not in tracked:
                continue
            for var in [
                v for v, death in active.items() if death is not None and death <= index
            ]:
                del active[var]
            occupied = {coloring.color_of[v] for v in active}
            color = _lowest_free(occupied)
            coloring.color_of[defined] = color
            coloring.order.append(defined)
            coloring.num_colors = max(coloring.num_colors, color + 1)
            death = liveness.death_index(defined, name, last_uses)
            if death is not None and death < index:
                death = index
            active[defined] = death
    return coloring
