"""SSA register allocation driven by fast liveness queries.

This package is the JIT-style *client* the paper argues for: a register
allocator that never materialises global live sets and instead asks the
liveness oracle on demand — batched through
:class:`repro.core.batch.BatchQueryEngine` where it matters.

* :mod:`repro.regalloc.pressure` — per-block and per-definition-point
  register pressure, and MaxLive.
* :mod:`repro.regalloc.chordal` — optimal greedy coloring in dominator
  preorder (SSA interference graphs are chordal).
* :mod:`repro.regalloc.spill` — iterative furthest-next-use spilling
  down to a register budget; instruction edits only, so the checker's
  precomputation survives every round.
* :mod:`repro.regalloc.allocator` — the driver composing the above with
  SSA destruction, behind pluggable liveness backends.
* :mod:`repro.regalloc.verify` — an independent validator built solely
  on the conventional data-flow analysis.
"""

from repro.regalloc.allocator import (
    Allocation,
    BACKENDS,
    DataflowBackend,
    FastCheckerBackend,
    LivenessBackend,
    SetCheckerBackend,
    allocate,
    make_backend,
)
from repro.regalloc.chordal import Coloring, color_function
from repro.regalloc.pressure import (
    BlockLiveness,
    BlockPressure,
    PressureInfo,
    compute_pressure,
    max_live,
)
from repro.regalloc.spill import SpillReport, lower_pressure
from repro.regalloc.verify import (
    VerificationResult,
    per_point_live_sets,
    verify_allocation,
)

__all__ = [
    "Allocation",
    "BACKENDS",
    "BlockLiveness",
    "BlockPressure",
    "Coloring",
    "DataflowBackend",
    "FastCheckerBackend",
    "LivenessBackend",
    "PressureInfo",
    "SetCheckerBackend",
    "SpillReport",
    "VerificationResult",
    "allocate",
    "color_function",
    "compute_pressure",
    "lower_pressure",
    "make_backend",
    "max_live",
    "per_point_live_sets",
    "verify_allocation",
]
