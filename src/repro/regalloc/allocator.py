"""The register-allocation driver: pressure → spill → color → destruct.

:func:`allocate` composes the pieces of this package with the existing
SSA machinery into the JIT-style client the paper envisions:

1. **critical edges are split first** — the only CFG edit of the whole
   pipeline, deliberately performed *before* the liveness backend builds
   its precomputation so that nothing ever invalidates it afterwards;
2. :mod:`repro.regalloc.pressure` measures MaxLive through liveness
   queries;
3. if a register budget ``K`` is given and MaxLive exceeds it,
   :mod:`repro.regalloc.spill` iteratively rewrites the hottest values
   into spill slots — instruction edits only, absorbed by the backend's
   ``instructions_changed`` hook;
4. :mod:`repro.regalloc.chordal` colors the (possibly rewritten) SSA
   program optimally in dominance order;
5. optionally, :func:`repro.ssa.destruction.destruct_ssa` lowers the φs
   with the *same* oracle, and the handful of variables the destruction
   pass invents (congruence-class representatives and parallel-copy
   temporaries) are folded into the assignment with a small greedy pass
   over independently computed per-point live sets.

The resulting :class:`Allocation` maps every variable to a register plus
every spilled variable to a slot, and is checked end-to-end by the
independent :mod:`repro.regalloc.verify`.

Liveness backends are pluggable (``"fast"``, ``"sets"``, ``"dataflow"``)
and deliberately pay their own maintenance costs: the fast checker only
rebuilds def–use chains after spill edits, while the data-flow baseline
must recompute its whole fixpoint — the asymmetry
:mod:`repro.bench.table_regalloc` measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.live_checker import FastLivenessChecker
from repro.ir.function import Function
from repro.ir.value import Variable
from repro.liveness.dataflow import DataflowLiveness
from repro.liveness.oracle import LivenessOracle
from repro.regalloc.chordal import Coloring, color_function
from repro.regalloc.pressure import BlockLiveness, PressureInfo, compute_pressure
from repro.regalloc.spill import SpillReport, lower_pressure
from repro.regalloc.verify import per_point_live_sets
from repro.ssa.construction import construct_ssa
from repro.ssa.destruction import DestructionReport, destruct_ssa


# ----------------------------------------------------------------------
# Pluggable liveness backends
# ----------------------------------------------------------------------
class LivenessBackend:
    """A named way of answering the allocator's liveness queries.

    Subclasses own the oracle's life cycle: :meth:`oracle` returns an
    engine valid for the function *right now*, and
    :meth:`instructions_changed` is called after every spill rewrite with
    whatever invalidation cost the representation implies.
    """

    name = "abstract"
    #: Whether the allocator may route bulk queries through the batch API.
    use_batch = False

    def __init__(self, function: Function) -> None:
        self.function = function

    def oracle(self) -> LivenessOracle:
        raise NotImplementedError

    def instructions_changed(self) -> None:
        raise NotImplementedError

    def cfg_changed(self) -> None:
        """Blocks or edges changed: every representation starts over."""
        raise NotImplementedError


class FastCheckerBackend(LivenessBackend):
    """The paper's checker: queries via Algorithm 3 plus the batch engine.

    Spill edits cost a def–use-chain rebuild; the ``R``/``T``
    precomputation survives untouched.
    """

    name = "fast"
    use_batch = True

    def __init__(self, function: Function) -> None:
        super().__init__(function)
        self._checker = FastLivenessChecker(function)

    def oracle(self) -> FastLivenessChecker:
        return self._checker

    def instructions_changed(self) -> None:
        self._checker.notify_instructions_changed()

    def cfg_changed(self) -> None:
        self._checker.notify_cfg_changed()


class SetCheckerBackend(FastCheckerBackend):
    """The readable Algorithm-1/2 path: same engine, no bitsets, no batch."""

    name = "sets"
    use_batch = False

    def __init__(self, function: Function) -> None:
        LivenessBackend.__init__(self, function)
        self._checker = FastLivenessChecker(function, use_bitsets=False)


class DataflowBackend(LivenessBackend):
    """The conventional baseline: precomputed sets, full recompute on edit."""

    name = "dataflow"
    use_batch = False

    def __init__(self, function: Function) -> None:
        super().__init__(function)
        self._oracle = DataflowLiveness(function)

    def oracle(self) -> DataflowLiveness:
        return self._oracle

    def instructions_changed(self) -> None:
        # A conventional engine cannot patch its sets after arbitrary
        # instruction edits: the universe of variables itself changed
        # (reload temporaries), so it starts over from scratch.
        self._oracle = DataflowLiveness(self.function)

    def cfg_changed(self) -> None:
        self._oracle = DataflowLiveness(self.function)


BACKENDS = {
    backend.name: backend
    for backend in (FastCheckerBackend, SetCheckerBackend, DataflowBackend)
}


def make_backend(name: str, function: Function) -> LivenessBackend:
    """Instantiate a backend by name (``"fast"``, ``"sets"``, ``"dataflow"``)."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown liveness backend {name!r}; expected one of {sorted(BACKENDS)}"
        ) from None
    return cls(function)


# ----------------------------------------------------------------------
# The allocation result
# ----------------------------------------------------------------------
@dataclass
class Allocation:
    """A complete register assignment for one function."""

    function: Function
    backend: str
    #: Variable (identity-keyed) → register number.
    register_of: dict[Variable, int] = field(default_factory=dict)
    #: Spilled variable → spill slot.
    spill_slot_of: dict[Variable, int] = field(default_factory=dict)
    #: The register budget requested (``None`` = unlimited).
    num_registers: int | None = None
    #: Number of distinct registers actually used.
    registers_used: int = 0
    #: MaxLive measured before any spilling.
    max_live_before_spill: int = 0
    #: MaxLive of the program that was colored (after spilling, if any).
    max_live: int = 0
    #: True when the input was not SSA (e.g. the output of an out-of-SSA
    #: translation) and the allocator round-tripped it through SSA
    #: construction before analysing it.
    reconstructed_ssa: bool = False
    spill_report: SpillReport | None = None
    destruction_report: DestructionReport | None = None
    #: Wall-clock seconds of the allocation pipeline (bench bookkeeping).
    elapsed_seconds: float = 0.0

    @property
    def spilled(self) -> list[Variable]:
        """The spilled variables, in eviction order."""
        return [] if self.spill_report is None else list(self.spill_report.spilled)

    def register(self, var: Variable) -> int:
        """The register assigned to ``var``."""
        return self.register_of[var]


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def allocate(
    function: Function,
    num_registers: int | None = None,
    backend: str | LivenessBackend = "fast",
    destruct: bool = False,
    split_edges: bool = True,
) -> Allocation:
    """Allocate registers for ``function`` (mutating it in place).

    Parameters
    ----------
    num_registers:
        The register budget ``K``; ``None`` colors without spilling and
        uses exactly MaxLive registers.
    backend:
        Liveness backend name or a prebuilt :class:`LivenessBackend`.
    destruct:
        Also translate out of SSA afterwards and extend the assignment to
        the copies the destruction pass introduces.
    split_edges:
        Split critical edges up front (required for ``destruct=True``;
        it is the one CFG edit, performed before any precomputation).
    """
    start = time.perf_counter()
    if destruct:
        # Destruction splits critical edges itself; that must happen before
        # the backend's precomputation exists, not between color and lower.
        split_edges = True
    prebuilt = isinstance(backend, LivenessBackend)
    reconstructed = False
    if not _is_ssa(function):
        # The input is not SSA — typically the output of an out-of-SSA
        # translation being re-allocated (a JIT re-entering the pipeline).
        # Every analysis below requires strict SSA, so round-trip through
        # SSA construction first; this is an instruction-level rewrite plus
        # φ insertion, i.e. it must happen before any precomputation.
        if prebuilt:
            raise ValueError(
                "cannot allocate a non-SSA function through a prebuilt "
                "backend: SSA reconstruction would invalidate it; pass the "
                "backend by name instead"
            )
        construct_ssa(function)
        reconstructed = True
    if split_edges:
        created = function.split_critical_edges()
        if created and prebuilt:
            # A prebuilt backend may already hold a precomputation for the
            # unsplit CFG; this is the one edit that invalidates it.
            backend.cfg_changed()
    adapter = backend if prebuilt else make_backend(backend, function)
    liveness = BlockLiveness(
        function, adapter.oracle(), use_batch=adapter.use_batch
    )
    info = compute_pressure(function, adapter.oracle(), block_liveness=liveness)
    allocation = Allocation(
        function=function,
        backend=adapter.name,
        num_registers=num_registers,
        max_live_before_spill=info.max_live,
        reconstructed_ssa=reconstructed,
    )
    if num_registers is not None and info.max_live > num_registers:
        allocation.spill_report = lower_pressure(
            function,
            num_registers,
            adapter.oracle,
            on_change=adapter.instructions_changed,
            use_batch=adapter.use_batch,
            initial_info=info,
        )
        allocation.spill_slot_of = dict(allocation.spill_report.slot_of)
        # The program changed under the spiller: refresh the block-level
        # facts before coloring.
        liveness = BlockLiveness(
            function, adapter.oracle(), use_batch=adapter.use_batch
        )
        info = compute_pressure(function, adapter.oracle(), block_liveness=liveness)
    allocation.max_live = info.max_live
    coloring = color_function(
        function,
        adapter.oracle(),
        use_batch=adapter.use_batch,
        block_liveness=liveness,
    )
    allocation.register_of = dict(coloring.color_of)
    allocation.registers_used = coloring.num_colors
    if destruct:
        allocation.destruction_report = destruct_ssa(
            function, oracle=adapter.oracle()
        )
        # Destruction rewrote instructions; keep the backend honest in case
        # the caller issues further queries through it.
        adapter.instructions_changed()
        _extend_after_destruction(allocation)
    allocation.elapsed_seconds = time.perf_counter() - start
    return allocation


def _is_ssa(function: Function) -> bool:
    """Cheap single-definition check (the property construction restores)."""
    seen: set[int] = set()
    for inst in function.instructions():
        for var in inst.defined_variables():
            if id(var) in seen:
                return False
            seen.add(id(var))
    return True


def _extend_after_destruction(allocation: Allocation) -> None:
    """Assign registers to the variables SSA destruction introduced.

    Destruction renames coalesced φ-webs to fresh representatives and
    inserts parallel-copy temporaries; none of them existed when the
    chordal scan ran.  Their live ranges are short and few, so a greedy
    sweep over independently computed per-point live sets suffices: each
    new variable avoids the registers of everything it is ever
    simultaneously live with (previously colored variables keep their
    registers — lowering φs never extends an old variable's range).
    """
    function = allocation.function
    register_of = allocation.register_of
    points = per_point_live_sets(function)
    forbidden: dict[Variable, set[int]] = {}
    neighbours: dict[Variable, set[Variable]] = {}
    order: list[Variable] = []

    def _touch(var: Variable) -> None:
        if var not in forbidden:
            forbidden[var] = set()
            neighbours[var] = set()
            order.append(var)

    for block in function:
        for index, inst in enumerate(block.instructions):
            live_after = points[block.name][index]
            group = set(live_after)
            if inst.result is not None:
                group.add(inst.result)
            uncolored = [var for var in group if var not in register_of]
            if not uncolored:
                continue
            colored = {
                register_of[var] for var in group if var in register_of
            }
            for var in uncolored:
                _touch(var)
                forbidden[var] |= colored
                neighbours[var] |= {other for other in uncolored if other is not var}
    for var in order:
        blocked = set(forbidden[var])
        for other in neighbours[var]:
            register = register_of.get(other)
            if register is not None:
                blocked.add(register)
        register = 0
        while register in blocked:
            register += 1
        register_of[var] = register
    # Coalesced φ-web members were renamed away by the destruction pass;
    # drop their stale entries so the register count reflects the program
    # as it now stands.
    present = {id(var) for var in function.variables()}
    for var in [v for v in register_of if id(v) not in present]:
        del register_of[var]
    allocation.registers_used = (
        max(register_of.values()) + 1 if register_of else 0
    )
