"""The register-allocation driver: pressure → spill → color → destruct.

:func:`allocate` composes the pieces of this package with the existing
SSA machinery into the JIT-style client the paper envisions:

1. **critical edges are split first** — the only CFG edit of the whole
   pipeline, deliberately performed *before* the liveness backend builds
   its precomputation so that nothing ever invalidates it afterwards;
2. :mod:`repro.regalloc.pressure` measures MaxLive through liveness
   queries;
3. if a register budget ``K`` is given and MaxLive exceeds it,
   :mod:`repro.regalloc.spill` iteratively rewrites the hottest values
   into spill slots — instruction edits only, absorbed by the backend's
   ``instructions_changed`` hook;
4. :mod:`repro.regalloc.chordal` colors the (possibly rewritten) SSA
   program optimally in dominance order;
5. optionally, :func:`repro.ssadestruct.destruct` lowers the φs with the
   *same* oracle family, and the variables whose assignment the
   translation invalidated (congruence-class representatives whose live
   ranges grew, plus parallel-copy temporaries) are recolored with a
   small greedy pass over independently computed per-point live sets.

The resulting :class:`Allocation` maps every variable to a register plus
every spilled variable to a slot, and is checked end-to-end by the
independent :mod:`repro.regalloc.verify`.

Liveness engines are resolved through the registry
(:mod:`repro.api.registry`) and deliberately pay their own maintenance
costs: an engine with the ``supports_edits`` capability absorbs spill
edits through its ``notify_instructions_changed`` hook, while anything
else is rebuilt from scratch after every edit — the asymmetry
:mod:`repro.bench.table_regalloc` measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api.registry import (
    DATAFLOW,
    FAST,
    SETS,
    EngineCapabilities,
    EngineSpec,
    get_engine,
)
from repro.ir.function import Function
from repro.ir.value import Variable
from repro.liveness.oracle import LivenessOracle
from repro.regalloc.chordal import color_function
from repro.regalloc.pressure import BlockLiveness, compute_pressure
from repro.regalloc.spill import SpillReport, lower_pressure
from repro.regalloc.verify import per_point_live_sets
from repro.ssa.construction import construct_ssa
from repro.ssadestruct.pipeline import DestructReport
from repro.ssadestruct.pipeline import destruct as destruct_pipeline


# ----------------------------------------------------------------------
# Pluggable liveness backends (adapters over registry engine specs)
# ----------------------------------------------------------------------
class LivenessBackend:
    """A named way of answering the allocator's liveness queries.

    Subclasses own the oracle's life cycle: :meth:`oracle` returns an
    engine valid for the function *right now*, and
    :meth:`instructions_changed` is called after every spill rewrite with
    whatever invalidation cost the representation implies.
    """

    name = "abstract"
    #: Whether the allocator may route bulk queries through the batch API.
    use_batch = False

    def __init__(self, function: Function) -> None:
        self.function = function

    def oracle(self) -> LivenessOracle:
        raise NotImplementedError

    def instructions_changed(self) -> None:
        raise NotImplementedError

    def cfg_changed(self) -> None:
        """Blocks or edges changed: every representation starts over."""
        raise NotImplementedError


class OracleBackend(LivenessBackend):
    """The generic adapter: drives any registered engine spec.

    The spec's capabilities decide the maintenance strategy: engines with
    ``supports_edits`` absorb edits through their ``notify_*`` hooks
    (e.g. the fast checker's def–use-chain rebuild, which leaves the
    ``R``/``T`` precomputation untouched); everything else is rebuilt
    from scratch via the spec's oracle factory, which is exactly what a
    conventional precomputed representation costs.
    """

    def __init__(self, spec: EngineSpec, function: Function) -> None:
        super().__init__(function)
        self.spec = spec
        self.name = spec.name
        self.use_batch = spec.capabilities.batch_queries
        self._oracle = spec.make_oracle(function)

    def oracle(self) -> LivenessOracle:
        return self._oracle

    def instructions_changed(self) -> None:
        if self.spec.capabilities.supports_edits:
            self._oracle.notify_instructions_changed()
        else:
            self._oracle = self.spec.make_oracle(self.function)

    def cfg_changed(self) -> None:
        if self.spec.capabilities.supports_edits:
            self._oracle.notify_cfg_changed()
        else:
            self._oracle = self.spec.make_oracle(self.function)


class FastCheckerBackend(OracleBackend):
    """The paper's checker: queries via Algorithm 3 plus the batch engine."""

    def __init__(self, function: Function) -> None:
        super().__init__(get_engine(FAST), function)


class SetCheckerBackend(OracleBackend):
    """The readable Algorithm-1/2 path: same engine, no bitsets, no batch."""

    def __init__(self, function: Function) -> None:
        super().__init__(get_engine(SETS), function)


class DataflowBackend(OracleBackend):
    """The conventional baseline: precomputed sets, full recompute on edit."""

    def __init__(self, function: Function) -> None:
        super().__init__(get_engine(DATAFLOW), function)


#: The built-in engines' named adapter classes; :func:`make_backend`
#: consults this first so pre-registry call sites see the same types.
BACKENDS = {
    FAST: FastCheckerBackend,
    SETS: SetCheckerBackend,
    DATAFLOW: DataflowBackend,
}


def make_backend(name: str | EngineSpec, function: Function) -> LivenessBackend:
    """Instantiate a backend adapter for a registered engine (by name).

    Built-in names come back as their named adapter classes (so
    pre-registry ``isinstance`` checks keep working); anything else the
    registry knows resolves to the generic :class:`OracleBackend`.
    """
    if isinstance(name, EngineSpec):
        return OracleBackend(name, function)
    adapter_cls = BACKENDS.get(name)
    if adapter_cls is not None:
        return adapter_cls(function)
    return OracleBackend(get_engine(name), function)


# ----------------------------------------------------------------------
# The allocation result
# ----------------------------------------------------------------------
@dataclass
class Allocation:
    """A complete register assignment for one function."""

    function: Function
    backend: str
    #: Variable (identity-keyed) → register number.
    register_of: dict[Variable, int] = field(default_factory=dict)
    #: Spilled variable → spill slot.
    spill_slot_of: dict[Variable, int] = field(default_factory=dict)
    #: The register budget requested (``None`` = unlimited).
    num_registers: int | None = None
    #: Number of distinct registers actually used.
    registers_used: int = 0
    #: MaxLive measured before any spilling.
    max_live_before_spill: int = 0
    #: MaxLive of the program that was colored (after spilling, if any).
    max_live: int = 0
    #: True when the input was not SSA (e.g. the output of an out-of-SSA
    #: translation) and the allocator round-tripped it through SSA
    #: construction before analysing it.
    reconstructed_ssa: bool = False
    #: Number of critical edges the driver split up front (0 means the
    #: CFG was not edited; callers use this to decide what to invalidate).
    edges_split: int = 0
    spill_report: SpillReport | None = None
    destruction_report: DestructReport | None = None
    #: Wall-clock seconds of the allocation pipeline (bench bookkeeping).
    elapsed_seconds: float = 0.0

    @property
    def spilled(self) -> list[Variable]:
        """The spilled variables, in eviction order."""
        return [] if self.spill_report is None else list(self.spill_report.spilled)

    def register(self, var: Variable) -> int:
        """The register assigned to ``var``."""
        return self.register_of[var]


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def allocate(
    function: Function,
    num_registers: int | None = None,
    backend: str | LivenessBackend = FAST,
    destruct: bool = False,
    split_edges: bool = True,
) -> Allocation:
    """Allocate registers for ``function`` (mutating it in place).

    Parameters
    ----------
    num_registers:
        The register budget ``K``; ``None`` colors without spilling and
        uses exactly MaxLive registers.
    backend:
        A registered engine name (resolved through
        :func:`repro.api.registry.get_engine`) or a prebuilt
        :class:`LivenessBackend`.
    destruct:
        Also translate out of SSA afterwards and extend the assignment to
        the copies the destruction pass introduces.
    split_edges:
        Split critical edges up front (required for ``destruct=True``;
        it is the one CFG edit, performed before any precomputation).
    """
    start = time.perf_counter()
    if destruct:
        # Destruction splits critical edges itself; that must happen before
        # the backend's precomputation exists, not between color and lower.
        split_edges = True
    prebuilt = isinstance(backend, LivenessBackend)
    spec: EngineSpec | None = None
    if not prebuilt:
        # Resolve (and reject) the engine *before* any mutation below:
        # a failed request must not leave the function half-edited under
        # a still-valid handle and a still-resident checker.
        spec = backend if isinstance(backend, EngineSpec) else get_engine(backend)
        if spec.oracle_factory is None:
            spec.make_oracle(function)  # raises the structural error
    reconstructed = False
    if not _is_ssa(function):
        # The input is not SSA — typically the output of an out-of-SSA
        # translation being re-allocated (a JIT re-entering the pipeline).
        # Every analysis below requires strict SSA, so round-trip through
        # SSA construction first; this is an instruction-level rewrite plus
        # φ insertion, i.e. it must happen before any precomputation.
        if prebuilt:
            raise ValueError(
                "cannot allocate a non-SSA function through a prebuilt "
                "backend: SSA reconstruction would invalidate it; pass the "
                "backend by name instead"
            )
        construct_ssa(function)
        reconstructed = True
    created: list[str] = []
    if split_edges:
        created = function.split_critical_edges()
        if created and prebuilt:
            # A prebuilt backend may already hold a precomputation for the
            # unsplit CFG; this is the one edit that invalidates it.
            backend.cfg_changed()
    adapter = backend if prebuilt else OracleBackend(spec, function)
    liveness = BlockLiveness(
        function, adapter.oracle(), use_batch=adapter.use_batch
    )
    info = compute_pressure(function, adapter.oracle(), block_liveness=liveness)
    allocation = Allocation(
        function=function,
        backend=adapter.name,
        num_registers=num_registers,
        max_live_before_spill=info.max_live,
        reconstructed_ssa=reconstructed,
        edges_split=len(created),
    )
    if num_registers is not None and info.max_live > num_registers:
        allocation.spill_report = lower_pressure(
            function,
            num_registers,
            adapter.oracle,
            on_change=adapter.instructions_changed,
            use_batch=adapter.use_batch,
            initial_info=info,
        )
        allocation.spill_slot_of = dict(allocation.spill_report.slot_of)
        # The program changed under the spiller: refresh the block-level
        # facts before coloring.
        liveness = BlockLiveness(
            function, adapter.oracle(), use_batch=adapter.use_batch
        )
        info = compute_pressure(function, adapter.oracle(), block_liveness=liveness)
    allocation.max_live = info.max_live
    coloring = color_function(
        function,
        adapter.oracle(),
        use_batch=adapter.use_batch,
        block_liveness=liveness,
    )
    allocation.register_of = dict(coloring.color_of)
    allocation.registers_used = coloring.num_colors
    if destruct:
        # Drive the staged pipeline.  A fast-checker-family oracle is
        # handed over directly so the translation rides the same query
        # plans; engines without edit support are rebuilt *inside* the
        # pipeline (after φ isolation grows the variable universe), which
        # is exactly the maintenance cost such a representation implies.
        # Hand-rolled prebuilt backends need not be in the registry: a
        # synthetic spec keeps their name on the report.
        oracle = adapter.oracle()
        if hasattr(oracle, "precomputation"):
            if isinstance(adapter, OracleBackend):
                checker_spec = adapter.spec
            else:
                checker_spec = EngineSpec(
                    name=adapter.name,
                    oracle_factory=None,
                    capabilities=EngineCapabilities(
                        supports_edits=True, batch_queries=adapter.use_batch
                    ),
                )
            allocation.destruction_report = destruct_pipeline(
                function, backend=checker_spec, checker=oracle
            )
        elif isinstance(adapter, OracleBackend):
            allocation.destruction_report = destruct_pipeline(
                function, backend=adapter.spec
            )
        else:
            # The oracle_factory escape hatch reuses the backend's oracle
            # (the pipeline drops whatever pre-isolation state it
            # accumulated).
            allocation.destruction_report = destruct_pipeline(
                function,
                backend=EngineSpec(name=adapter.name, oracle_factory=None),
                oracle_factory=lambda fn: oracle,
            )
        # Destruction rewrote instructions; keep the backend honest in case
        # the caller issues further queries through it.
        adapter.instructions_changed()
        _extend_after_destruction(allocation)
    allocation.elapsed_seconds = time.perf_counter() - start
    return allocation


def _is_ssa(function: Function) -> bool:
    """Cheap single-definition check (the property construction restores)."""
    seen: set[int] = set()
    for inst in function.instructions():
        for var in inst.defined_variables():
            if id(var) in seen:
                return False
            seen.add(id(var))
    return True


def _extend_after_destruction(allocation: Allocation) -> None:
    """Repair the assignment after the out-of-SSA translation.

    The translation renames coalesced φ-webs onto a single representative
    (whose live range therefore *grew* to cover the whole class) and
    inserts parallel-copy temporaries that never existed when the chordal
    scan ran.  Both populations are recolored by a greedy sweep over
    independently computed per-point live sets: each such variable avoids
    the registers of everything it is ever simultaneously live with.
    Variables untouched by the translation keep their registers — lowering
    φs never extends *their* ranges.
    """
    function = allocation.function
    register_of = allocation.register_of
    report = allocation.destruction_report
    if report is not None:
        # A representative absorbed other members' ranges; its pre-translation
        # color may now clash, so it re-enters the uncolored population.
        for representative in report.coalesced_representatives:
            register_of.pop(representative, None)
    points = per_point_live_sets(function)
    forbidden: dict[Variable, set[int]] = {}
    neighbours: dict[Variable, set[Variable]] = {}
    order: list[Variable] = []

    def _touch(var: Variable) -> None:
        if var not in forbidden:
            forbidden[var] = set()
            neighbours[var] = set()
            order.append(var)

    for block in function:
        for index, inst in enumerate(block.instructions):
            live_after = points[block.name][index]
            group = set(live_after)
            if inst.result is not None:
                group.add(inst.result)
            # Sets of Variables iterate in id() order, which varies run to
            # run; the greedy sweep below is order-sensitive, so sort by
            # name to keep allocations reproducible (the concurrency
            # harness replays runs and demands bit-identical responses).
            uncolored = sorted(
                (var for var in group if var not in register_of),
                key=lambda var: var.name,
            )
            if not uncolored:
                continue
            colored = {
                register_of[var] for var in group if var in register_of
            }
            for var in uncolored:
                _touch(var)
                forbidden[var] |= colored
                neighbours[var] |= {other for other in uncolored if other is not var}
    for var in order:
        blocked = set(forbidden[var])
        for other in neighbours[var]:
            register = register_of.get(other)
            if register is not None:
                blocked.add(register)
        register = 0
        while register in blocked:
            register += 1
        register_of[var] = register
    # Coalesced φ-web members were renamed away by the destruction pass;
    # drop their stale entries so the register count reflects the program
    # as it now stands.
    present = {id(var) for var in function.variables()}
    for var in [v for v in register_of if id(v) not in present]:
        del register_of[var]
    allocation.registers_used = (
        max(register_of.values()) + 1 if register_of else 0
    )
