"""repro.api — the versioned request/response surface of the server.

The paper sells fast liveness *checking* as a service to many client
passes; this package is the service's front door, grown in four layers:

* :mod:`repro.api.registry` — the engine registry: every selectable
  liveness/interference engine is an :class:`EngineSpec` (name, oracle
  factory, capabilities), and every client resolves engine names here —
  third-party oracles plug in without touching core.
* :mod:`repro.api.protocol` — the tagged union of request/response
  dataclasses with lossless, versioned JSON encoding, so the service can
  be driven over a wire or replayed from a log.
* :mod:`repro.api.handles` — revisioned :class:`FunctionHandle` values
  that turn the paper's invalidation contract into an enforceable API
  (stale handles get ``STALE_HANDLE`` errors, not stale answers).
* :mod:`repro.api.client` — :class:`CompilerClient`, the
  ``dispatch(request) -> response`` façade wrapping compile → liveness →
  destruct → allocate.
"""

from repro.api.client import CompilerClient
from repro.api.errors import ApiError, ErrorCode, ProtocolError, StaleHandleError
from repro.api.handles import FunctionHandle
from repro.api.protocol import (
    PROTOCOL_VERSION,
    AllocateRequest,
    AllocateResponse,
    AllocationSummary,
    BatchLiveness,
    BatchLivenessResponse,
    CompileSourceRequest,
    CompileSourceResponse,
    DestructRequest,
    DestructResponse,
    DestructStats,
    ErrorResponse,
    EvictRequest,
    EvictResponse,
    LivenessQuery,
    LivenessResponse,
    LiveSetRequest,
    LiveSetResponse,
    NotifyKind,
    NotifyRequest,
    NotifyResponse,
    QueryKind,
    Request,
    Response,
    StatsRequest,
    StatsResponse,
    attach_trace,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    trace_context,
)
from repro.api.registry import (
    DATAFLOW,
    FAST,
    GRAPH,
    SETS,
    EngineCapabilities,
    EngineSpec,
    UnknownEngineError,
    available_engines,
    engine_specs,
    get_engine,
    register_engine,
    unregister_engine,
)

__all__ = [
    "PROTOCOL_VERSION",
    # errors
    "ApiError",
    "ErrorCode",
    "ProtocolError",
    "StaleHandleError",
    # handles
    "FunctionHandle",
    # registry
    "DATAFLOW",
    "FAST",
    "GRAPH",
    "SETS",
    "EngineCapabilities",
    "EngineSpec",
    "UnknownEngineError",
    "available_engines",
    "engine_specs",
    "get_engine",
    "register_engine",
    "unregister_engine",
    # protocol
    "AllocateRequest",
    "AllocateResponse",
    "AllocationSummary",
    "BatchLiveness",
    "BatchLivenessResponse",
    "CompileSourceRequest",
    "CompileSourceResponse",
    "DestructRequest",
    "DestructResponse",
    "DestructStats",
    "ErrorResponse",
    "EvictRequest",
    "EvictResponse",
    "LivenessQuery",
    "LivenessResponse",
    "LiveSetRequest",
    "LiveSetResponse",
    "NotifyKind",
    "NotifyRequest",
    "NotifyResponse",
    "QueryKind",
    "Request",
    "Response",
    "StatsRequest",
    "StatsResponse",
    "attach_trace",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "trace_context",
    # client
    "CompilerClient",
]
