"""The typed, versioned request/response protocol of the compiler server.

One tagged union of request dataclasses covers everything the serving
stack can be asked to do — point liveness queries, multi-function
batches, whole live sets, out-of-SSA translation, register allocation
and front-end compilation — and every request type has a matching
response type carrying either a payload or a structured
:class:`~repro.api.errors.ApiError` (never a raw exception).

Every request and response encodes to JSON and decodes back **losslessly**
(``decode(encode(x)) == x``), so a service can be driven over a wire,
logged, and replayed; the envelope carries :data:`PROTOCOL_VERSION` and
decoding rejects envelopes from a different major version with an
``INVALID_REQUEST`` error instead of misinterpreting them.

Functions are addressed by :class:`~repro.api.handles.FunctionHandle`;
variables and blocks travel by *name* (strings are what survives a wire,
and names are unique within a function).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Callable, Union

from repro.api.errors import ApiError, ErrorCode, ProtocolError
from repro.api.handles import FunctionHandle
from repro.api.registry import FAST

#: Version stamped on (and required in) every envelope.
PROTOCOL_VERSION = 1

#: One shared decoder/encoder pair for the whole wire layer.  ``json.loads``
#: and ``json.dumps`` build a fresh ``JSONDecoder``/``JSONEncoder`` whenever
#: non-default options are involved; the hot path reuses these instances
#: instead, and the compact separators drop the cosmetic whitespace from
#: every wire envelope (the canonical form tests compare is unaffected —
#: it re-serializes with its own options).
_JSON_DECODER = json.JSONDecoder()
_JSON_ENCODER = json.JSONEncoder(separators=(",", ":"))


def dumps_compact(obj) -> str:
    """Compact (separator-free) JSON text via the shared encoder instance."""
    return _JSON_ENCODER.encode(obj)


@unique
class QueryKind(str, Enum):
    """Validated liveness query kind (was a bare ``"in"``/``"out"`` string).

    A ``str`` enum, so ``QueryKind.LIVE_IN == "in"`` — call sites (and one
    release's worth of callers) that still compare against or pass the old
    strings keep working; :meth:`coerce` is the single validation point
    that replaces the old silent acceptance of unknown kinds.
    """

    LIVE_IN = "in"
    LIVE_OUT = "out"

    @classmethod
    def coerce(cls, value: "QueryKind | str") -> "QueryKind":
        """Normalise a kind, accepting the legacy strings; fail loudly."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown query kind {value!r}; expected "
                f"{[k.value for k in cls]}"
            ) from None


def _coerce_handle(function: "FunctionHandle | str") -> FunctionHandle:
    if isinstance(function, FunctionHandle):
        return function
    return FunctionHandle(name=function)


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LivenessQuery:
    """One live-in/live-out question about one variable at one block."""

    function: FunctionHandle
    kind: QueryKind
    variable: str
    block: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "function", _coerce_handle(self.function))
        object.__setattr__(self, "kind", QueryKind.coerce(self.kind))

    def to_json(self) -> dict:
        return {
            "function": self.function.to_json(),
            "kind": self.kind.value,
            "variable": self.variable,
            "block": self.block,
        }

    @classmethod
    def from_json(cls, body: dict) -> "LivenessQuery":
        return cls(
            function=FunctionHandle.from_json(body["function"]),
            kind=QueryKind.coerce(body["kind"]),
            variable=body["variable"],
            block=body["block"],
        )


@dataclass(frozen=True)
class BatchLiveness:
    """An ordered stream of liveness questions spanning any number of
    functions, answered in order in one round trip."""

    queries: tuple[LivenessQuery, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "queries", tuple(self.queries))

    def to_json(self) -> dict:
        return {"queries": [query.to_json() for query in self.queries]}

    @classmethod
    def from_json(cls, body: dict) -> "BatchLiveness":
        return cls(
            queries=tuple(
                LivenessQuery.from_json(item) for item in body["queries"]
            )
        )


@dataclass(frozen=True)
class LiveSetRequest:
    """The whole live-in (or live-out) set of one block, by variable name."""

    function: FunctionHandle
    block: str
    kind: QueryKind = QueryKind.LIVE_IN

    def __post_init__(self) -> None:
        object.__setattr__(self, "function", _coerce_handle(self.function))
        object.__setattr__(self, "kind", QueryKind.coerce(self.kind))

    def to_json(self) -> dict:
        return {
            "function": self.function.to_json(),
            "block": self.block,
            "kind": self.kind.value,
        }

    @classmethod
    def from_json(cls, body: dict) -> "LiveSetRequest":
        return cls(
            function=FunctionHandle.from_json(body["function"]),
            block=body["block"],
            kind=QueryKind.coerce(body.get("kind", QueryKind.LIVE_IN)),
        )


@dataclass(frozen=True)
class DestructRequest:
    """Translate one function out of SSA form, in place, server-side."""

    function: FunctionHandle
    engine: str = FAST
    verify: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "function", _coerce_handle(self.function))

    def to_json(self) -> dict:
        return {
            "function": self.function.to_json(),
            "engine": self.engine,
            "verify": self.verify,
        }

    @classmethod
    def from_json(cls, body: dict) -> "DestructRequest":
        # Defaulted fields may be omitted on the wire (hand-written
        # envelopes); encode() always emits them, so round-trips stay
        # lossless either way.
        return cls(
            function=FunctionHandle.from_json(body["function"]),
            engine=body.get("engine", FAST),
            verify=body.get("verify", False),
        )


@dataclass(frozen=True)
class AllocateRequest:
    """Run the register-allocation pipeline on one function."""

    function: FunctionHandle
    num_registers: int | None = None
    engine: str = FAST
    destruct: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "function", _coerce_handle(self.function))

    def to_json(self) -> dict:
        return {
            "function": self.function.to_json(),
            "num_registers": self.num_registers,
            "engine": self.engine,
            "destruct": self.destruct,
        }

    @classmethod
    def from_json(cls, body: dict) -> "AllocateRequest":
        return cls(
            function=FunctionHandle.from_json(body["function"]),
            num_registers=body.get("num_registers"),
            engine=body.get("engine", FAST),
            destruct=body.get("destruct", False),
        )


@unique
class NotifyKind(str, Enum):
    """Which invalidation a :class:`NotifyRequest` routes (paper contract:
    CFG edits drop the precomputation, instruction edits only the plans)."""

    CFG = "cfg"
    INSTRUCTIONS = "instructions"

    @classmethod
    def coerce(cls, value: "NotifyKind | str") -> "NotifyKind":
        """Normalise a kind; fail loudly on anything unknown."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown notify kind {value!r}; expected "
                f"{[k.value for k in cls]}"
            ) from None


@dataclass(frozen=True)
class NotifyRequest:
    """Route one edit notification (the paper's invalidation contract)
    through the wire: bumps the function's revision, so every outstanding
    handle goes stale — the response carries a fresh one.

    CFG notifications may carry a :class:`~repro.core.incremental.CfgDelta`
    describing the edit (blocks are names here, so the delta is wire-safe);
    the service then tries to patch the resident precomputation instead of
    discarding it.  ``delta`` is ignored for instruction notifications and
    optional everywhere — an absent delta is the historical full
    invalidation."""

    function: FunctionHandle
    kind: NotifyKind = NotifyKind.INSTRUCTIONS
    delta: "CfgDelta | None" = None

    def __post_init__(self) -> None:
        from repro.core.incremental import CfgDelta

        object.__setattr__(self, "function", _coerce_handle(self.function))
        object.__setattr__(self, "kind", NotifyKind.coerce(self.kind))
        if self.delta is not None and not isinstance(self.delta, CfgDelta):
            object.__setattr__(self, "delta", CfgDelta.from_json(self.delta))

    def to_json(self) -> dict:
        payload = {"function": self.function.to_json(), "kind": self.kind.value}
        if self.delta is not None:
            payload["delta"] = self.delta.to_json()
        return payload

    @classmethod
    def from_json(cls, body: dict) -> "NotifyRequest":
        return cls(
            function=FunctionHandle.from_json(body["function"]),
            kind=NotifyKind.coerce(body.get("kind", NotifyKind.INSTRUCTIONS)),
            delta=body.get("delta"),
        )


@dataclass(frozen=True)
class EvictRequest:
    """Drop one function's resident checker (cache geometry only).

    Eviction does **not** bump the revision — a rebuilt checker answers
    identically, so outstanding handles stay valid; the response's handle
    is at the same revision the request found.
    """

    function: FunctionHandle

    def __post_init__(self) -> None:
        object.__setattr__(self, "function", _coerce_handle(self.function))

    def to_json(self) -> dict:
        return {"function": self.function.to_json()}

    @classmethod
    def from_json(cls, body: dict) -> "EvictRequest":
        return cls(function=FunctionHandle.from_json(body["function"]))


@dataclass(frozen=True)
class CompileSourceRequest:
    """Compile mini-language source text and register every function."""

    source: str
    module_name: str = "module"

    def to_json(self) -> dict:
        return {"source": self.source, "module_name": self.module_name}

    @classmethod
    def from_json(cls, body: dict) -> "CompileSourceRequest":
        return cls(
            source=body["source"],
            module_name=body.get("module_name", "module"),
        )


@dataclass(frozen=True)
class StatsRequest:
    """Fetch the serving stack's metrics snapshot over the wire.

    ``reset=True`` additionally zeroes the instruments after the
    snapshot is taken — the read-and-reset is the interval-scraping
    idiom, built on :meth:`repro.utils.AtomicCounter.reset`'s
    snapshot-consistent get-and-set.  Introspection only: a stats
    request never touches functions, caches, or revisions, so it is
    response-invariant for every *other* request by construction.
    """

    reset: bool = False

    def to_json(self) -> dict:
        return {"reset": self.reset}

    @classmethod
    def from_json(cls, body: dict) -> "StatsRequest":
        return cls(reset=bool(body.get("reset", False)))


# ----------------------------------------------------------------------
# Response payload records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DestructStats:
    """Wire-safe summary of one out-of-SSA translation."""

    engine: str = ""
    critical_edges_split: int = 0
    phis_isolated: int = 0
    parallel_copies: int = 0
    pairs_inserted: int = 0
    pairs_coalesced: int = 0
    classes_merged: int = 0
    interference_tests: int = 0
    liveness_queries: int = 0
    copies_emitted: int = 0
    temps_inserted: int = 0
    phis_removed: int = 0

    @classmethod
    def from_report(cls, report) -> "DestructStats":
        """Project a :class:`~repro.ssadestruct.pipeline.DestructReport`."""
        return cls(
            engine=report.backend,
            critical_edges_split=report.critical_edges_split,
            phis_isolated=report.phis_isolated,
            parallel_copies=report.parallel_copies,
            pairs_inserted=report.pairs_inserted,
            pairs_coalesced=report.pairs_coalesced,
            classes_merged=report.classes_merged,
            interference_tests=report.interference_tests,
            liveness_queries=report.liveness_queries,
            copies_emitted=report.copies_emitted,
            temps_inserted=report.temps_inserted,
            phis_removed=report.phis_removed,
        )

    def to_json(self) -> dict:
        return {
            "engine": self.engine,
            "critical_edges_split": self.critical_edges_split,
            "phis_isolated": self.phis_isolated,
            "parallel_copies": self.parallel_copies,
            "pairs_inserted": self.pairs_inserted,
            "pairs_coalesced": self.pairs_coalesced,
            "classes_merged": self.classes_merged,
            "interference_tests": self.interference_tests,
            "liveness_queries": self.liveness_queries,
            "copies_emitted": self.copies_emitted,
            "temps_inserted": self.temps_inserted,
            "phis_removed": self.phis_removed,
        }

    @classmethod
    def from_json(cls, body: dict) -> "DestructStats":
        return cls(**body)


@dataclass(frozen=True)
class AllocationSummary:
    """Wire-safe summary of one register allocation, keyed by name."""

    #: Variable name → register number.
    registers: dict[str, int] = field(default_factory=dict)
    #: Spilled variable name → spill slot.
    spill_slots: dict[str, int] = field(default_factory=dict)
    registers_used: int = 0
    max_live: int = 0
    max_live_before_spill: int = 0
    #: Spilled variable names, in eviction order.
    spilled: tuple[str, ...] = ()
    reconstructed_ssa: bool = False

    @classmethod
    def from_allocation(cls, allocation) -> "AllocationSummary":
        """Project a :class:`~repro.regalloc.allocator.Allocation`."""
        return cls(
            registers={
                var.name: reg for var, reg in allocation.register_of.items()
            },
            spill_slots={
                var.name: slot
                for var, slot in allocation.spill_slot_of.items()
            },
            registers_used=allocation.registers_used,
            max_live=allocation.max_live,
            max_live_before_spill=allocation.max_live_before_spill,
            spilled=tuple(var.name for var in allocation.spilled),
            reconstructed_ssa=allocation.reconstructed_ssa,
        )

    def to_json(self) -> dict:
        return {
            "registers": dict(self.registers),
            "spill_slots": dict(self.spill_slots),
            "registers_used": self.registers_used,
            "max_live": self.max_live,
            "max_live_before_spill": self.max_live_before_spill,
            "spilled": list(self.spilled),
            "reconstructed_ssa": self.reconstructed_ssa,
        }

    @classmethod
    def from_json(cls, body: dict) -> "AllocationSummary":
        return cls(
            registers=dict(body["registers"]),
            spill_slots=dict(body["spill_slots"]),
            registers_used=body["registers_used"],
            max_live=body["max_live"],
            max_live_before_spill=body["max_live_before_spill"],
            spilled=tuple(body["spilled"]),
            reconstructed_ssa=body["reconstructed_ssa"],
        )


# ----------------------------------------------------------------------
# Responses — one per request type; payload XOR error
# ----------------------------------------------------------------------
def _error_to_json(error: ApiError | None):
    return None if error is None else error.to_json()


def _error_from_json(body: dict) -> ApiError | None:
    raw = body.get("error")
    return None if raw is None else ApiError.from_json(raw)


@dataclass(frozen=True)
class LivenessResponse:
    """Answer to one :class:`LivenessQuery`."""

    value: bool | None = None
    error: ApiError | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> dict:
        return {"value": self.value, "error": _error_to_json(self.error)}

    @classmethod
    def from_json(cls, body: dict) -> "LivenessResponse":
        return cls(value=body["value"], error=_error_from_json(body))


@dataclass(frozen=True)
class BatchLivenessResponse:
    """Answers to a :class:`BatchLiveness` stream, in request order."""

    values: tuple[bool, ...] | None = None
    error: ApiError | None = None

    def __post_init__(self) -> None:
        if self.values is not None:
            object.__setattr__(self, "values", tuple(self.values))

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> dict:
        values = None if self.values is None else list(self.values)
        return {"values": values, "error": _error_to_json(self.error)}

    @classmethod
    def from_json(cls, body: dict) -> "BatchLivenessResponse":
        values = body["values"]
        return cls(
            values=None if values is None else tuple(values),
            error=_error_from_json(body),
        )


@dataclass(frozen=True)
class LiveSetResponse:
    """The requested block's live set, as sorted variable names."""

    variables: tuple[str, ...] | None = None
    error: ApiError | None = None

    def __post_init__(self) -> None:
        if self.variables is not None:
            object.__setattr__(self, "variables", tuple(self.variables))

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> dict:
        variables = None if self.variables is None else list(self.variables)
        return {"variables": variables, "error": _error_to_json(self.error)}

    @classmethod
    def from_json(cls, body: dict) -> "LiveSetResponse":
        variables = body["variables"]
        return cls(
            variables=None if variables is None else tuple(variables),
            error=_error_from_json(body),
        )


@dataclass(frozen=True)
class DestructResponse:
    """Outcome of a :class:`DestructRequest`."""

    #: Handle at the function's *new* revision (the pass edits it).
    function: FunctionHandle | None = None
    stats: DestructStats | None = None
    error: ApiError | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> dict:
        return {
            "function": None if self.function is None else self.function.to_json(),
            "stats": None if self.stats is None else self.stats.to_json(),
            "error": _error_to_json(self.error),
        }

    @classmethod
    def from_json(cls, body: dict) -> "DestructResponse":
        function = body["function"]
        stats = body["stats"]
        return cls(
            function=None if function is None else FunctionHandle.from_json(function),
            stats=None if stats is None else DestructStats.from_json(stats),
            error=_error_from_json(body),
        )


@dataclass(frozen=True)
class AllocateResponse:
    """Outcome of an :class:`AllocateRequest`."""

    #: Handle at the function's *new* revision (allocation edits it).
    function: FunctionHandle | None = None
    allocation: AllocationSummary | None = None
    error: ApiError | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> dict:
        return {
            "function": None if self.function is None else self.function.to_json(),
            "allocation": (
                None if self.allocation is None else self.allocation.to_json()
            ),
            "error": _error_to_json(self.error),
        }

    @classmethod
    def from_json(cls, body: dict) -> "AllocateResponse":
        function = body["function"]
        allocation = body["allocation"]
        return cls(
            function=None if function is None else FunctionHandle.from_json(function),
            allocation=(
                None
                if allocation is None
                else AllocationSummary.from_json(allocation)
            ),
            error=_error_from_json(body),
        )


@dataclass(frozen=True)
class NotifyResponse:
    """Outcome of a :class:`NotifyRequest`."""

    #: Handle at the function's *new* (bumped) revision.
    function: FunctionHandle | None = None
    error: ApiError | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> dict:
        return {
            "function": None if self.function is None else self.function.to_json(),
            "error": _error_to_json(self.error),
        }

    @classmethod
    def from_json(cls, body: dict) -> "NotifyResponse":
        function = body["function"]
        return cls(
            function=None if function is None else FunctionHandle.from_json(function),
            error=_error_from_json(body),
        )


@dataclass(frozen=True)
class EvictResponse:
    """Outcome of an :class:`EvictRequest`.

    Deliberately does *not* say whether a checker was actually resident:
    cache geometry is unobservable through the protocol.  Residency at
    any instant depends on how concurrent readers' LRU touches happened
    to interleave, so reporting it would make responses diverge from
    their serial replay — the one thing the concurrent serving layer
    guarantees never happens.  (The same reasoning is why eviction does
    not bump revisions: a rebuilt checker answers identically.)
    """

    #: Handle at the function's *unchanged* revision (eviction never bumps).
    function: FunctionHandle | None = None
    error: ApiError | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> dict:
        return {
            "function": None if self.function is None else self.function.to_json(),
            "error": _error_to_json(self.error),
        }

    @classmethod
    def from_json(cls, body: dict) -> "EvictResponse":
        function = body["function"]
        return cls(
            function=None if function is None else FunctionHandle.from_json(function),
            error=_error_from_json(body),
        )


@dataclass(frozen=True)
class CompileSourceResponse:
    """Handles for every function a :class:`CompileSourceRequest` produced."""

    functions: tuple[FunctionHandle, ...] | None = None
    error: ApiError | None = None

    def __post_init__(self) -> None:
        if self.functions is not None:
            object.__setattr__(self, "functions", tuple(self.functions))

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> dict:
        functions = (
            None
            if self.functions is None
            else [handle.to_json() for handle in self.functions]
        )
        return {"functions": functions, "error": _error_to_json(self.error)}

    @classmethod
    def from_json(cls, body: dict) -> "CompileSourceResponse":
        functions = body["functions"]
        return cls(
            functions=(
                None
                if functions is None
                else tuple(FunctionHandle.from_json(item) for item in functions)
            ),
            error=_error_from_json(body),
        )


@dataclass(frozen=True)
class StatsResponse:
    """A canonical JSON metrics snapshot (see ``MetricsRegistry.snapshot``).

    ``snapshot`` is plain JSON data — key-sorted maps of counters,
    gauges and histograms — so it survives any number of wire hops
    losslessly; ``stats`` carries the service-level counter dict
    (per-shard hits/misses/evictions) for servers that expose one.
    """

    snapshot: dict | None = None
    stats: dict | None = None
    error: ApiError | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> dict:
        return {
            "snapshot": self.snapshot,
            "stats": self.stats,
            "error": _error_to_json(self.error),
        }

    @classmethod
    def from_json(cls, body: dict) -> "StatsResponse":
        return cls(
            snapshot=body["snapshot"],
            stats=body.get("stats"),
            error=_error_from_json(body),
        )


@dataclass(frozen=True)
class ErrorResponse:
    """Fallback response for requests that could not even be decoded.

    When a wire payload is malformed there is no request type to pick the
    matching response from; :meth:`repro.api.client.CompilerClient.dispatch_json`
    answers with one of these instead of raising across the boundary.
    """

    error: ApiError | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> dict:
        return {"error": _error_to_json(self.error)}

    @classmethod
    def from_json(cls, body: dict) -> "ErrorResponse":
        return cls(error=_error_from_json(body))


#: The request union, for type hints and isinstance dispatch.
Request = Union[
    LivenessQuery,
    BatchLiveness,
    LiveSetRequest,
    DestructRequest,
    AllocateRequest,
    NotifyRequest,
    EvictRequest,
    CompileSourceRequest,
    StatsRequest,
]

#: The response union.
Response = Union[
    LivenessResponse,
    BatchLivenessResponse,
    LiveSetResponse,
    DestructResponse,
    AllocateResponse,
    NotifyResponse,
    EvictResponse,
    CompileSourceResponse,
    StatsResponse,
]

#: Wire tag ↔ request class.
REQUEST_TYPES: dict[str, type] = {
    "liveness_query": LivenessQuery,
    "batch_liveness": BatchLiveness,
    "live_set": LiveSetRequest,
    "destruct": DestructRequest,
    "allocate": AllocateRequest,
    "notify": NotifyRequest,
    "evict": EvictRequest,
    "compile_source": CompileSourceRequest,
    "stats": StatsRequest,
}

#: Wire tag ↔ response class.
RESPONSE_TYPES: dict[str, type] = {
    "liveness_query": LivenessResponse,
    "batch_liveness": BatchLivenessResponse,
    "live_set": LiveSetResponse,
    "destruct": DestructResponse,
    "allocate": AllocateResponse,
    "notify": NotifyResponse,
    "evict": EvictResponse,
    "compile_source": CompileSourceResponse,
    "stats": StatsResponse,
    "error": ErrorResponse,
}

#: Request class → matching response class (the dispatcher's error path).
RESPONSE_FOR: dict[type, type] = {
    REQUEST_TYPES[tag]: RESPONSE_TYPES[tag] for tag in REQUEST_TYPES
}

_TAG_OF: dict[type, str] = {}
for _tag, _cls in REQUEST_TYPES.items():
    _TAG_OF[_cls] = _tag
for _tag, _cls in RESPONSE_TYPES.items():
    _TAG_OF[_cls] = _tag

#: tag → bound ``from_json`` decoder, built once at import so the wire
#: hot path does a single dict probe per message instead of a class
#: lookup plus attribute fetch (the dispatch-overhead bench guard in
#: ``bench/table_service.py --smoke`` is what holds this layer honest).
_REQUEST_DECODERS: dict[str, Callable] = {
    tag: cls.from_json for tag, cls in REQUEST_TYPES.items()
}
_RESPONSE_DECODERS: dict[str, Callable] = {
    tag: cls.from_json for tag, cls in RESPONSE_TYPES.items()
}


def _encode(message, expected: dict[str, type]) -> dict:
    tag = _TAG_OF.get(type(message))
    if tag is None or expected.get(tag) is not type(message):
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"cannot encode {type(message).__name__} here",
        )
    return {"api": PROTOCOL_VERSION, "type": tag, "body": message.to_json()}


def _decode(payload, decoders: dict[str, Callable]):
    if isinstance(payload, (str, bytes)):
        if isinstance(payload, bytes):
            try:
                payload = payload.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ProtocolError(
                    ErrorCode.INVALID_REQUEST, f"envelope is not JSON: {exc}"
                ) from None
        try:
            payload = _JSON_DECODER.decode(payload)
        except ValueError as exc:
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST, f"envelope is not JSON: {exc}"
            ) from None
    if not isinstance(payload, dict):
        raise ProtocolError(ErrorCode.INVALID_REQUEST, "envelope must be an object")
    version = payload.get("api")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"protocol version mismatch: got {version!r}, "
            f"this server speaks {PROTOCOL_VERSION}",
        )
    tag = payload.get("type")
    decoder = decoders.get(tag)
    if decoder is None:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, f"unknown message type {tag!r}"
        )
    try:
        return decoder(payload["body"])
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, f"malformed {tag} body: {exc}"
        ) from None


def encode_request(request: Request) -> dict:
    """Versioned JSON-ready envelope for ``request``."""
    return _encode(request, REQUEST_TYPES)


def decode_request(payload) -> Request:
    """Inverse of :func:`encode_request`; accepts a dict or a JSON string."""
    return _decode(payload, _REQUEST_DECODERS)


def encode_response(response: Response) -> dict:
    """Versioned JSON-ready envelope for ``response``."""
    return _encode(response, RESPONSE_TYPES)


def decode_response(payload) -> Response:
    """Inverse of :func:`encode_response`; accepts a dict or a JSON string."""
    return _decode(payload, _RESPONSE_DECODERS)


# ----------------------------------------------------------------------
# Trace context — optional envelope sidecar, version-safe by design
# ----------------------------------------------------------------------
#: Envelope key carrying the optional trace context.  Decoding reads the
#: envelope's ``api``/``type``/``body`` and ignores everything else, so
#: old servers drop the key silently and old payloads (which simply lack
#: it) keep decoding — no protocol version bump needed.
TRACE_KEY = "trace"


def attach_trace(envelope: dict, trace_id: str, parent_span: str | None = None) -> dict:
    """Stamp a request envelope with a trace context; returns the envelope.

    A traced caller sets ``trace_id`` (and optionally the id of the span
    the request is issued under) so the server's timing tree can be tied
    back to the client's.
    """
    context: dict = {"trace_id": str(trace_id)}
    if parent_span is not None:
        context["parent_span"] = str(parent_span)
    envelope[TRACE_KEY] = context
    return envelope


def trace_context(payload) -> tuple[str | None, str | None]:
    """Leniently extract ``(trace_id, parent_span)`` from a wire payload.

    Observability must never fail a request: any payload — garbage text,
    a non-object, a mistyped trace field — yields ``(None, None)``
    rather than an exception, leaving the normal decode path to produce
    its structured error.
    """
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except (ValueError, TypeError):
            return (None, None)
    if not isinstance(payload, dict):
        return (None, None)
    context = payload.get(TRACE_KEY)
    if not isinstance(context, dict):
        return (None, None)
    trace_id = context.get("trace_id")
    parent_span = context.get("parent_span")
    return (
        trace_id if isinstance(trace_id, str) and trace_id else None,
        parent_span if isinstance(parent_span, str) and parent_span else None,
    )
