"""Structured errors of the compiler-server protocol.

Nothing below the API boundary is allowed to leak a raw ``KeyError`` or
``ValueError`` to a protocol client: every failure is mapped to an
:class:`ApiError` — a machine-readable error *code* plus a human-readable
detail string — carried inside the matching response.  Inside the server
the same information travels as a :class:`ProtocolError` exception, which
the dispatcher catches at the boundary and converts; it never crosses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique


@unique
class ErrorCode(str, Enum):
    """Every failure class a protocol response may carry."""

    #: The request itself is malformed (bad tag, missing field, wrong
    #: protocol version, unknown query kind…).
    INVALID_REQUEST = "invalid_request"
    #: The addressed function is not registered with the server.
    UNKNOWN_FUNCTION = "unknown_function"
    #: The requested liveness/interference engine is not in the registry.
    UNKNOWN_ENGINE = "unknown_engine"
    #: The named variable does not exist in the addressed function.
    UNKNOWN_VARIABLE = "unknown_variable"
    #: The named block does not exist in the addressed function.
    UNKNOWN_BLOCK = "unknown_block"
    #: The request carries a :class:`~repro.api.handles.FunctionHandle`
    #: whose revision predates an edit notification — the paper's
    #: invalidation contract, enforced at the API boundary.
    STALE_HANDLE = "stale_handle"
    #: The request is well-formed but the engine/input combination is
    #: unsupported (e.g. an engine without a liveness oracle asked to
    #: answer point queries).
    UNSUPPORTED = "unsupported"
    #: Front-end compilation failed (lexer, parser or lowering).
    COMPILE_ERROR = "compile_error"
    #: A function with the same name is already registered.
    DUPLICATE_FUNCTION = "duplicate_function"
    #: Anything unexpected; the detail carries the exception text.
    INTERNAL = "internal"


@dataclass(frozen=True)
class ApiError:
    """One structured failure: a stable code plus a free-form detail."""

    code: ErrorCode
    detail: str = ""

    def to_json(self) -> dict:
        """Plain-dict view for the wire format."""
        return {"code": self.code.value, "detail": self.detail}

    @classmethod
    def from_json(cls, payload: dict) -> "ApiError":
        """Inverse of :meth:`to_json` (lossless)."""
        return cls(code=ErrorCode(payload["code"]), detail=payload.get("detail", ""))


class ProtocolError(Exception):
    """Internal signal carrying an :class:`ApiError` to the boundary.

    Raised inside the server stack, caught by
    :meth:`repro.api.client.CompilerClient.dispatch`, and converted into
    the error channel of the matching response — it must never escape a
    ``dispatch`` call.
    """

    def __init__(self, code: ErrorCode, detail: str = "") -> None:
        super().__init__(detail or code.value)
        self.error = ApiError(code=code, detail=detail)


class StaleHandleError(ProtocolError):
    """A request addressed a function through an out-of-date handle."""

    def __init__(self, detail: str) -> None:
        super().__init__(ErrorCode.STALE_HANDLE, detail)
