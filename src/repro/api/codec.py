"""Pluggable wire codecs: canonical JSON beside a binary v2 encoding.

Table C showed the serving stack spending ~15-25x the kernel's own query
time on JSON envelopes; this module is the direct attack.  Two codecs
are registered:

``json`` (:data:`CODEC_JSON`)
    The canonical envelope of :mod:`repro.api.protocol`, serialized as
    compact UTF-8 text.  Unchanged semantics, still the debug/compat
    default — a pre-codec client keeps working against a binary-capable
    server without knowing this module exists.

``bin2`` (:data:`CODEC_BIN2`)
    A length-prefixed binary encoding.  Every message is one frame::

        len(u32 little-endian) | payload

        payload = magic(0xB2) version(u8) opcode(u8) string-defs body

    so a stream reader takes exact-size chunks instead of scanning for
    JSON boundaries.  Hot integer fields are struct-packed: request tags
    are one-byte opcodes, revisions and counts are varints (zigzag for
    signed values), batch answers travel as packed bitsets.  Function
    names are **interned per connection**: the first frame that mentions
    a name carries ``(ref, name)`` in its string-definitions block, and
    every later frame sends just the integer ref.  The table is reset by
    the JSON ``hello`` handshake, so a reconnecting client (which starts
    a fresh :class:`StringInterner`) can never alias a stale ref.

Negotiation rides the existing versioned JSON envelope: the client sends
``{"api": 1, "type": "hello", "codecs": [...]}`` as text; a
binary-capable server answers with its pick, an older server rejects the
unknown ``hello`` type with a structured error — which the client treats
as "speak JSON".  Unknown codec names likewise fall back to JSON rather
than erroring; see :func:`negotiate_codec`.

Cache geometry stays unobservable in both encodings by construction:
the binary encoders are type-by-type projections of exactly the fields
``to_json`` exposes, so nothing about eviction, LRU order or checker
residency can leak through one codec that the other hides.
"""

from __future__ import annotations

import json
import struct
from typing import Callable, Sequence

from repro.api.errors import ApiError, ErrorCode, ProtocolError
from repro.api.handles import FunctionHandle
from repro.api.protocol import (
    AllocateRequest,
    AllocateResponse,
    AllocationSummary,
    BatchLiveness,
    BatchLivenessResponse,
    CompileSourceRequest,
    CompileSourceResponse,
    DestructRequest,
    DestructResponse,
    DestructStats,
    ErrorResponse,
    EvictRequest,
    EvictResponse,
    LivenessQuery,
    LivenessResponse,
    LiveSetRequest,
    LiveSetResponse,
    NotifyKind,
    NotifyRequest,
    NotifyResponse,
    PROTOCOL_VERSION,
    QueryKind,
    Request,
    Response,
    StatsRequest,
    StatsResponse,
    decode_response,
    dumps_compact,
    encode_request,
    encode_response,
)

#: Registered codec names (the negotiation currency).
CODEC_JSON = "json"
CODEC_BIN2 = "bin2"

#: Envelope type of the negotiation handshake (JSON in both directions).
HELLO_TYPE = "hello"

#: First payload byte of every bin2 frame; no JSON text can reproduce it
#: in a position where the length prefix also matches (see is_bin2_frame).
BIN2_MAGIC = 0xB2

#: Upper bound on one frame's payload, a garbage-length guard.
MAX_FRAME = 16 * 1024 * 1024

_FRAME_HEADER = struct.Struct("<I")

# Request opcodes (one byte on the wire); responses are OP | 0x80 and
# the decode-failure fallback response is OP_ERROR_RESPONSE.
OP_LIVENESS_QUERY = 0x01
OP_BATCH_LIVENESS = 0x02
OP_LIVE_SET = 0x03
OP_DESTRUCT = 0x04
OP_ALLOCATE = 0x05
OP_NOTIFY = 0x06
OP_EVICT = 0x07
OP_COMPILE_SOURCE = 0x08
OP_STATS = 0x09
RESPONSE_BIT = 0x80
OP_ERROR_RESPONSE = 0xFF


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
def _w_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _w_svarint(out: bytearray, value: int) -> None:
    # Zigzag, arbitrary precision: small magnitudes of either sign stay
    # one byte.
    _w_uvarint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))


def _w_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    _w_uvarint(out, len(raw))
    out += raw


def _truncated() -> ProtocolError:
    return ProtocolError(ErrorCode.INVALID_REQUEST, "truncated binary frame")


class _Reader:
    """Cursor over one frame's bytes; every read is bounds-checked."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos
        self.end = len(data)

    def u8(self) -> int:
        pos = self.pos
        if pos >= self.end:
            raise _truncated()
        self.pos = pos + 1
        return self.data[pos]

    def uvarint(self) -> int:
        data = self.data
        pos = self.pos
        end = self.end
        result = 0
        shift = 0
        while True:
            if pos >= end:
                raise _truncated()
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise ProtocolError(
                    ErrorCode.INVALID_REQUEST, "varint exceeds 64 bits"
                )
        self.pos = pos
        return result

    def svarint(self) -> int:
        zig = self.uvarint()
        return (zig >> 1) if not zig & 1 else -((zig + 1) >> 1)

    def take(self, count: int) -> bytes:
        pos = self.pos
        stop = pos + count
        if stop > self.end:
            raise _truncated()
        self.pos = stop
        return self.data[pos:stop]

    def str_(self) -> str:
        raw = self.take(self.uvarint())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST, f"invalid UTF-8 in string: {exc}"
            ) from None

    def blob(self) -> bytes:
        return self.take(self.uvarint())

    def expect_end(self) -> None:
        if self.pos != self.end:
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST,
                f"{self.end - self.pos} trailing bytes after message body",
            )


# The persist layer (:mod:`repro.persist`) frames its on-disk snapshot
# and WAL records with the same varint/string conventions as wire
# frames; these public aliases are its sanctioned entry points into the
# primitives above (the underscored names stay private to this module).
Reader = _Reader
write_uvarint = _w_uvarint
write_svarint = _w_svarint
write_str = _w_str


# ----------------------------------------------------------------------
# Per-connection string interning
# ----------------------------------------------------------------------
class StringInterner:
    """Encode side of the send-once string table (one per connection).

    The first :meth:`ref` for a string assigns the next id and appends
    ``(id, string)`` to the frame's definitions; later refs are just the
    id.  A definition is considered delivered once its frame has been
    handed to the transport, so an interner must live exactly as long as
    one connection — reconnecting means a fresh interner *and* a fresh
    ``hello`` (which resets the server's table).
    """

    __slots__ = ("_ids",)

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}

    def ref(self, text: str, defs: list[tuple[int, str]]) -> int:
        ident = self._ids.get(text)
        if ident is None:
            ident = len(self._ids)
            self._ids[text] = ident
            defs.append((ident, text))
        return ident

    def reset(self) -> None:
        self._ids.clear()

    def __len__(self) -> int:
        return len(self._ids)


class StringTable:
    """Decode side: refs defined by earlier frames of the connection.

    Append-only between resets, so a body may be decoded *after* later
    frames' definitions were ingested (the worker-pool case) — existing
    refs never change meaning mid-connection.
    """

    __slots__ = ("_strings",)

    def __init__(self) -> None:
        self._strings: dict[int, str] = {}

    def define(self, ident: int, text: str) -> None:
        known = self._strings.get(ident)
        if known is not None and known != text:
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST,
                f"string ref {ident} redefined ({known!r} -> {text!r})",
            )
        self._strings[ident] = text

    def lookup(self, ident: int) -> str:
        text = self._strings.get(ident)
        if text is None:
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST,
                f"undefined string ref {ident} (table was reset?)",
            )
        return text

    def reset(self) -> None:
        self._strings.clear()

    def __len__(self) -> int:
        return len(self._strings)


# ----------------------------------------------------------------------
# Shared field encodings
# ----------------------------------------------------------------------
_KIND_CODE = {QueryKind.LIVE_IN: 0, QueryKind.LIVE_OUT: 1}
_KIND_OF = (QueryKind.LIVE_IN, QueryKind.LIVE_OUT)
_NOTIFY_CODE = {NotifyKind.CFG: 0, NotifyKind.INSTRUCTIONS: 1}
_NOTIFY_OF = (NotifyKind.CFG, NotifyKind.INSTRUCTIONS)


def _dec_kind(r: _Reader) -> QueryKind:
    code = r.u8()
    if code > 1:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, f"unknown query kind code {code}"
        )
    return _KIND_OF[code]


def _enc_handle_ref(
    handle: FunctionHandle,
    out: bytearray,
    interner: StringInterner,
    defs: list[tuple[int, str]],
) -> None:
    # Requests intern the function name; responses (decoded out of order
    # under a worker pool) always inline theirs.
    _w_uvarint(out, interner.ref(handle.name, defs))
    revision = handle.revision
    if revision is None:
        out.append(0)
    else:
        out.append(1)
        _w_svarint(out, revision)


def _dec_handle_ref(r: _Reader, table: StringTable) -> FunctionHandle:
    name = table.lookup(r.uvarint())
    if r.u8():
        return FunctionHandle(name=name, revision=r.svarint())
    return FunctionHandle(name=name)


def _enc_handle_inline(handle: FunctionHandle | None, out: bytearray) -> None:
    if handle is None:
        out.append(0)
        return
    out.append(1)
    _w_str(out, handle.name)
    revision = handle.revision
    if revision is None:
        out.append(0)
    else:
        out.append(1)
        _w_svarint(out, revision)


def _dec_handle_inline(r: _Reader) -> FunctionHandle | None:
    if not r.u8():
        return None
    name = r.str_()
    if r.u8():
        return FunctionHandle(name=name, revision=r.svarint())
    return FunctionHandle(name=name)


def _enc_error(error: ApiError | None, out: bytearray) -> None:
    if error is None:
        out.append(0)
        return
    out.append(1)
    _w_str(out, error.code.value)
    _w_str(out, error.detail)


def _dec_error(r: _Reader) -> ApiError | None:
    if not r.u8():
        return None
    code = r.str_()
    detail = r.str_()
    return ApiError(code=ErrorCode(code), detail=detail)


def _enc_bool(value: bool, out: bytearray) -> None:
    out.append(1 if value else 0)


def _dec_bool(r: _Reader) -> bool:
    code = r.u8()
    if code > 1:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, f"unknown boolean code {code}"
        )
    return code == 1


def _w_json_blob(out: bytearray, obj) -> None:
    if obj is None:
        out.append(0)
        return
    out.append(1)
    raw = dumps_compact(obj).encode("utf-8")
    _w_uvarint(out, len(raw))
    out += raw


def _r_json_blob(r: _Reader):
    if not r.u8():
        return None
    raw = r.blob()
    try:
        return json.loads(raw)
    except ValueError as exc:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, f"malformed embedded JSON blob: {exc}"
        ) from None


# ----------------------------------------------------------------------
# Request bodies
# ----------------------------------------------------------------------
def _enc_query_fields(query: LivenessQuery, out, interner, defs) -> None:
    _enc_handle_ref(query.function, out, interner, defs)
    out.append(_KIND_CODE[query.kind])
    _w_str(out, query.variable)
    _w_str(out, query.block)


def _dec_query_fields(r: _Reader, table: StringTable) -> LivenessQuery:
    handle = _dec_handle_ref(r, table)
    kind = _dec_kind(r)
    return LivenessQuery(
        function=handle, kind=kind, variable=r.str_(), block=r.str_()
    )


def _enc_batch(msg: BatchLiveness, out, interner, defs) -> None:
    _w_uvarint(out, len(msg.queries))
    for query in msg.queries:
        _enc_query_fields(query, out, interner, defs)


def _dec_batch(r: _Reader, table: StringTable) -> BatchLiveness:
    count = r.uvarint()
    return BatchLiveness(
        queries=tuple(_dec_query_fields(r, table) for _ in range(count))
    )


def _enc_live_set(msg: LiveSetRequest, out, interner, defs) -> None:
    _enc_handle_ref(msg.function, out, interner, defs)
    _w_str(out, msg.block)
    out.append(_KIND_CODE[msg.kind])


def _dec_live_set(r: _Reader, table: StringTable) -> LiveSetRequest:
    handle = _dec_handle_ref(r, table)
    block = r.str_()
    return LiveSetRequest(function=handle, block=block, kind=_dec_kind(r))


def _enc_destruct(msg: DestructRequest, out, interner, defs) -> None:
    _enc_handle_ref(msg.function, out, interner, defs)
    _w_str(out, msg.engine)
    _enc_bool(msg.verify, out)


def _dec_destruct(r: _Reader, table: StringTable) -> DestructRequest:
    return DestructRequest(
        function=_dec_handle_ref(r, table),
        engine=r.str_(),
        verify=_dec_bool(r),
    )


def _enc_allocate(msg: AllocateRequest, out, interner, defs) -> None:
    _enc_handle_ref(msg.function, out, interner, defs)
    if msg.num_registers is None:
        out.append(0)
    else:
        out.append(1)
        _w_svarint(out, msg.num_registers)
    _w_str(out, msg.engine)
    _enc_bool(msg.destruct, out)


def _dec_allocate(r: _Reader, table: StringTable) -> AllocateRequest:
    handle = _dec_handle_ref(r, table)
    num_registers = r.svarint() if r.u8() else None
    return AllocateRequest(
        function=handle,
        num_registers=num_registers,
        engine=r.str_(),
        destruct=_dec_bool(r),
    )


def _enc_notify(msg: NotifyRequest, out, interner, defs) -> None:
    _enc_handle_ref(msg.function, out, interner, defs)
    out.append(_NOTIFY_CODE[msg.kind])
    # A presence byte, then (when present) the delta's four block-name
    # lists, each uvarint-counted.  Block names are inlined rather than
    # interned: edit deltas name blocks, not functions, and the same
    # block name rarely repeats across requests.
    delta = msg.delta
    if delta is None:
        out.append(0)
        return
    out.append(1)
    for edges in (delta.added_edges, delta.removed_edges):
        _w_uvarint(out, len(edges))
        for source, target in edges:
            _w_str(out, source)
            _w_str(out, target)
    for blocks in (delta.added_blocks, delta.removed_blocks):
        _w_uvarint(out, len(blocks))
        for block in blocks:
            _w_str(out, block)


def _dec_notify(r: _Reader, table: StringTable) -> NotifyRequest:
    from repro.core.incremental import CfgDelta

    handle = _dec_handle_ref(r, table)
    code = r.u8()
    if code > 1:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, f"unknown notify kind code {code}"
        )
    delta = None
    if r.u8():
        edge_lists = [
            [(r.str_(), r.str_()) for _ in range(r.uvarint())] for _ in range(2)
        ]
        block_lists = [
            [r.str_() for _ in range(r.uvarint())] for _ in range(2)
        ]
        delta = CfgDelta(
            added_edges=edge_lists[0],
            removed_edges=edge_lists[1],
            added_blocks=block_lists[0],
            removed_blocks=block_lists[1],
        )
    return NotifyRequest(function=handle, kind=_NOTIFY_OF[code], delta=delta)


def _enc_evict(msg: EvictRequest, out, interner, defs) -> None:
    _enc_handle_ref(msg.function, out, interner, defs)


def _dec_evict(r: _Reader, table: StringTable) -> EvictRequest:
    return EvictRequest(function=_dec_handle_ref(r, table))


def _enc_compile_source(msg: CompileSourceRequest, out, interner, defs) -> None:
    _w_str(out, msg.source)
    _w_str(out, msg.module_name)


def _dec_compile_source(r: _Reader, table: StringTable) -> CompileSourceRequest:
    return CompileSourceRequest(source=r.str_(), module_name=r.str_())


def _enc_stats_req(msg: StatsRequest, out, interner, defs) -> None:
    _enc_bool(msg.reset, out)


def _dec_stats_req(r: _Reader, table: StringTable) -> StatsRequest:
    return StatsRequest(reset=_dec_bool(r))


# ----------------------------------------------------------------------
# Response bodies
# ----------------------------------------------------------------------
def _enc_liveness_resp(msg: LivenessResponse, out) -> None:
    value = msg.value
    if value is None:
        out.append(2)
    elif value is True:
        out.append(1)
    elif value is False:
        out.append(0)
    else:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"cannot binary-encode liveness value {value!r}",
        )
    _enc_error(msg.error, out)


def _dec_liveness_resp(r: _Reader) -> LivenessResponse:
    code = r.u8()
    if code > 2:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, f"unknown liveness value code {code}"
        )
    value = (False, True, None)[code]
    return LivenessResponse(value=value, error=_dec_error(r))


def _enc_batch_resp(msg: BatchLivenessResponse, out) -> None:
    values = msg.values
    if values is None:
        out.append(0)
    else:
        out.append(1)
        count = len(values)
        _w_uvarint(out, count)
        bits = bytearray((count + 7) >> 3)
        for index, value in enumerate(values):
            if value:
                bits[index >> 3] |= 1 << (index & 7)
        out += bits
    _enc_error(msg.error, out)


def _dec_batch_resp(r: _Reader) -> BatchLivenessResponse:
    values: tuple[bool, ...] | None = None
    if r.u8():
        count = r.uvarint()
        bits = r.take((count + 7) >> 3)
        values = tuple(
            bool(bits[index >> 3] & (1 << (index & 7))) for index in range(count)
        )
    return BatchLivenessResponse(values=values, error=_dec_error(r))


def _enc_live_set_resp(msg: LiveSetResponse, out) -> None:
    if msg.variables is None:
        out.append(0)
    else:
        out.append(1)
        _w_uvarint(out, len(msg.variables))
        for name in msg.variables:
            _w_str(out, name)
    _enc_error(msg.error, out)


def _dec_live_set_resp(r: _Reader) -> LiveSetResponse:
    variables: tuple[str, ...] | None = None
    if r.u8():
        variables = tuple(r.str_() for _ in range(r.uvarint()))
    return LiveSetResponse(variables=variables, error=_dec_error(r))


#: DestructStats integer fields, in wire order (engine travels first).
_DESTRUCT_FIELDS = (
    "critical_edges_split",
    "phis_isolated",
    "parallel_copies",
    "pairs_inserted",
    "pairs_coalesced",
    "classes_merged",
    "interference_tests",
    "liveness_queries",
    "copies_emitted",
    "temps_inserted",
    "phis_removed",
)


def _enc_destruct_resp(msg: DestructResponse, out) -> None:
    _enc_handle_inline(msg.function, out)
    stats = msg.stats
    if stats is None:
        out.append(0)
    else:
        out.append(1)
        _w_str(out, stats.engine)
        for field in _DESTRUCT_FIELDS:
            _w_svarint(out, getattr(stats, field))
    _enc_error(msg.error, out)


def _dec_destruct_resp(r: _Reader) -> DestructResponse:
    handle = _dec_handle_inline(r)
    stats = None
    if r.u8():
        engine = r.str_()
        values = {field: r.svarint() for field in _DESTRUCT_FIELDS}
        stats = DestructStats(engine=engine, **values)
    return DestructResponse(function=handle, stats=stats, error=_dec_error(r))


def _enc_allocate_resp(msg: AllocateResponse, out) -> None:
    _enc_handle_inline(msg.function, out)
    allocation = msg.allocation
    if allocation is None:
        out.append(0)
    else:
        out.append(1)
        _w_uvarint(out, len(allocation.registers))
        for name, register in allocation.registers.items():
            _w_str(out, name)
            _w_svarint(out, register)
        _w_uvarint(out, len(allocation.spill_slots))
        for name, slot in allocation.spill_slots.items():
            _w_str(out, name)
            _w_svarint(out, slot)
        _w_svarint(out, allocation.registers_used)
        _w_svarint(out, allocation.max_live)
        _w_svarint(out, allocation.max_live_before_spill)
        _w_uvarint(out, len(allocation.spilled))
        for name in allocation.spilled:
            _w_str(out, name)
        _enc_bool(allocation.reconstructed_ssa, out)
    _enc_error(msg.error, out)


def _dec_allocate_resp(r: _Reader) -> AllocateResponse:
    handle = _dec_handle_inline(r)
    allocation = None
    if r.u8():
        registers = {r.str_(): r.svarint() for _ in range(r.uvarint())}
        spill_slots = {r.str_(): r.svarint() for _ in range(r.uvarint())}
        registers_used = r.svarint()
        max_live = r.svarint()
        max_live_before_spill = r.svarint()
        spilled = tuple(r.str_() for _ in range(r.uvarint()))
        allocation = AllocationSummary(
            registers=registers,
            spill_slots=spill_slots,
            registers_used=registers_used,
            max_live=max_live,
            max_live_before_spill=max_live_before_spill,
            spilled=spilled,
            reconstructed_ssa=_dec_bool(r),
        )
    return AllocateResponse(
        function=handle, allocation=allocation, error=_dec_error(r)
    )


def _enc_handle_only_resp(msg, out) -> None:
    _enc_handle_inline(msg.function, out)
    _enc_error(msg.error, out)


def _dec_notify_resp(r: _Reader) -> NotifyResponse:
    return NotifyResponse(function=_dec_handle_inline(r), error=_dec_error(r))


def _dec_evict_resp(r: _Reader) -> EvictResponse:
    return EvictResponse(function=_dec_handle_inline(r), error=_dec_error(r))


def _enc_compile_resp(msg: CompileSourceResponse, out) -> None:
    if msg.functions is None:
        out.append(0)
    else:
        out.append(1)
        _w_uvarint(out, len(msg.functions))
        for handle in msg.functions:
            _enc_handle_inline(handle, out)
    _enc_error(msg.error, out)


def _dec_compile_resp(r: _Reader) -> CompileSourceResponse:
    functions: tuple[FunctionHandle, ...] | None = None
    if r.u8():
        count = r.uvarint()
        handles = []
        for _ in range(count):
            handle = _dec_handle_inline(r)
            if handle is None:
                raise ProtocolError(
                    ErrorCode.INVALID_REQUEST, "null handle in compile response"
                )
            handles.append(handle)
        functions = tuple(handles)
    return CompileSourceResponse(functions=functions, error=_dec_error(r))


def _enc_stats_resp(msg: StatsResponse, out) -> None:
    # Metrics snapshots are irregular nested dicts; they ride as compact
    # JSON blobs inside the binary frame (still smaller than the JSON
    # envelope, which pays the same blob plus the envelope around it).
    _w_json_blob(out, msg.snapshot)
    _w_json_blob(out, msg.stats)
    _enc_error(msg.error, out)


def _dec_stats_resp(r: _Reader) -> StatsResponse:
    return StatsResponse(
        snapshot=_r_json_blob(r), stats=_r_json_blob(r), error=_dec_error(r)
    )


def _enc_error_resp(msg: ErrorResponse, out) -> None:
    _enc_error(msg.error, out)


def _dec_error_resp(r: _Reader) -> ErrorResponse:
    return ErrorResponse(error=_dec_error(r))


# ----------------------------------------------------------------------
# Dispatch tables (built once at import, like the JSON tag tables)
# ----------------------------------------------------------------------
_BIN2_REQUEST_ENCODERS: dict[type, tuple[int, Callable]] = {
    LivenessQuery: (OP_LIVENESS_QUERY, _enc_query_fields),
    BatchLiveness: (OP_BATCH_LIVENESS, _enc_batch),
    LiveSetRequest: (OP_LIVE_SET, _enc_live_set),
    DestructRequest: (OP_DESTRUCT, _enc_destruct),
    AllocateRequest: (OP_ALLOCATE, _enc_allocate),
    NotifyRequest: (OP_NOTIFY, _enc_notify),
    EvictRequest: (OP_EVICT, _enc_evict),
    CompileSourceRequest: (OP_COMPILE_SOURCE, _enc_compile_source),
    StatsRequest: (OP_STATS, _enc_stats_req),
}

_BIN2_REQUEST_DECODERS: dict[int, Callable] = {
    OP_LIVENESS_QUERY: _dec_query_fields,
    OP_BATCH_LIVENESS: _dec_batch,
    OP_LIVE_SET: _dec_live_set,
    OP_DESTRUCT: _dec_destruct,
    OP_ALLOCATE: _dec_allocate,
    OP_NOTIFY: _dec_notify,
    OP_EVICT: _dec_evict,
    OP_COMPILE_SOURCE: _dec_compile_source,
    OP_STATS: _dec_stats_req,
}

_BIN2_RESPONSE_ENCODERS: dict[type, tuple[int, Callable]] = {
    LivenessResponse: (OP_LIVENESS_QUERY | RESPONSE_BIT, _enc_liveness_resp),
    BatchLivenessResponse: (OP_BATCH_LIVENESS | RESPONSE_BIT, _enc_batch_resp),
    LiveSetResponse: (OP_LIVE_SET | RESPONSE_BIT, _enc_live_set_resp),
    DestructResponse: (OP_DESTRUCT | RESPONSE_BIT, _enc_destruct_resp),
    AllocateResponse: (OP_ALLOCATE | RESPONSE_BIT, _enc_allocate_resp),
    NotifyResponse: (OP_NOTIFY | RESPONSE_BIT, _enc_handle_only_resp),
    EvictResponse: (OP_EVICT | RESPONSE_BIT, _enc_handle_only_resp),
    CompileSourceResponse: (OP_COMPILE_SOURCE | RESPONSE_BIT, _enc_compile_resp),
    StatsResponse: (OP_STATS | RESPONSE_BIT, _enc_stats_resp),
    ErrorResponse: (OP_ERROR_RESPONSE, _enc_error_resp),
}

_BIN2_RESPONSE_DECODERS: dict[int, Callable] = {
    OP_LIVENESS_QUERY | RESPONSE_BIT: _dec_liveness_resp,
    OP_BATCH_LIVENESS | RESPONSE_BIT: _dec_batch_resp,
    OP_LIVE_SET | RESPONSE_BIT: _dec_live_set_resp,
    OP_DESTRUCT | RESPONSE_BIT: _dec_destruct_resp,
    OP_ALLOCATE | RESPONSE_BIT: _dec_allocate_resp,
    OP_NOTIFY | RESPONSE_BIT: _dec_notify_resp,
    OP_EVICT | RESPONSE_BIT: _dec_evict_resp,
    OP_COMPILE_SOURCE | RESPONSE_BIT: _dec_compile_resp,
    OP_STATS | RESPONSE_BIT: _dec_stats_resp,
    OP_ERROR_RESPONSE: _dec_error_resp,
}

#: opcode → the JSON wire tag of the same message (for slow-request
#: reports and error details).
TAG_BY_OPCODE: dict[int, str] = {
    OP_LIVENESS_QUERY: "liveness_query",
    OP_BATCH_LIVENESS: "batch_liveness",
    OP_LIVE_SET: "live_set",
    OP_DESTRUCT: "destruct",
    OP_ALLOCATE: "allocate",
    OP_NOTIFY: "notify",
    OP_EVICT: "evict",
    OP_COMPILE_SOURCE: "compile_source",
    OP_STATS: "stats",
    OP_LIVENESS_QUERY | RESPONSE_BIT: "liveness_query",
    OP_BATCH_LIVENESS | RESPONSE_BIT: "batch_liveness",
    OP_LIVE_SET | RESPONSE_BIT: "live_set",
    OP_DESTRUCT | RESPONSE_BIT: "destruct",
    OP_ALLOCATE | RESPONSE_BIT: "allocate",
    OP_NOTIFY | RESPONSE_BIT: "notify",
    OP_EVICT | RESPONSE_BIT: "evict",
    OP_COMPILE_SOURCE | RESPONSE_BIT: "compile_source",
    OP_STATS | RESPONSE_BIT: "stats",
    OP_ERROR_RESPONSE: "error",
}


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def _frame(opcode: int, defs: Sequence[tuple[int, str]], body: bytes | bytearray) -> bytes:
    payload = bytearray()
    payload.append(BIN2_MAGIC)
    payload.append(PROTOCOL_VERSION)
    payload.append(opcode)
    _w_uvarint(payload, len(defs))
    for ident, text in defs:
        _w_uvarint(payload, ident)
        _w_str(payload, text)
    payload += body
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"frame payload of {len(payload)} bytes exceeds {MAX_FRAME}",
        )
    return _FRAME_HEADER.pack(len(payload)) + bytes(payload)


def is_bin2_frame(data) -> bool:
    """Cheap, non-raising sniff: does ``data`` look like one bin2 frame?

    The length prefix must match the actual size and the first payload
    byte must be the magic — JSON text (whose first four bytes decode to
    an absurd length) can never satisfy both, so a binary-capable server
    tells the two codecs apart per frame with no negotiation state.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        return False
    data = bytes(data) if not isinstance(data, bytes) else data
    if len(data) < 7:
        return False
    declared = _FRAME_HEADER.unpack_from(data)[0]
    return declared == len(data) - 4 and declared <= MAX_FRAME and data[4] == BIN2_MAGIC


def _open_frame(data: bytes) -> tuple[int, _Reader]:
    """Validate one frame's header; returns ``(opcode, reader at defs)``."""
    if len(data) < 7:
        raise _truncated()
    declared = _FRAME_HEADER.unpack_from(data)[0]
    if declared != len(data) - 4:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"frame length prefix says {declared} bytes, got {len(data) - 4}",
        )
    if declared > MAX_FRAME:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"frame payload of {declared} bytes exceeds {MAX_FRAME}",
        )
    if data[4] != BIN2_MAGIC:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"not a bin2 frame (magic byte {data[4]:#04x})",
        )
    version = data[5]
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"protocol version mismatch: got {version!r}, "
            f"this server speaks {PROTOCOL_VERSION}",
        )
    return data[6], _Reader(data, 7)


def _read_defs(r: _Reader, table: StringTable) -> None:
    for _ in range(r.uvarint()):
        ident = r.uvarint()
        table.define(ident, r.str_())


# ----------------------------------------------------------------------
# Relay support (the multi-process coordinator in repro.concurrent.procs)
# ----------------------------------------------------------------------
#: Opcodes whose frames a coordinator may forward verbatim to the worker
#: owning the function they lead with: single-function requests whose
#: only string ref is the leading handle name, so a frame decodes
#: identically against any table that defines that one ref.
RELAY_OPCODES = frozenset((OP_LIVENESS_QUERY, OP_LIVE_SET, OP_EVICT))


def relay_route(data: bytes, body_pos: int, table: StringTable) -> tuple[int, str]:
    """The leading handle ref of an already-ingested single-function frame.

    Returns ``(ident, name)``.  Raises exactly the :class:`ProtocolError`
    the worker-side decoder would raise (same ``lookup``, same truncation
    message), so a coordinator that cannot route a frame answers with the
    identical error a single-process server produces.
    """
    r = _Reader(data, body_pos)
    ident = r.uvarint()
    return ident, table.lookup(ident)


def frame_defs(data: bytes) -> list[tuple[int, str]]:
    """The ``(ident, text)`` definition pairs an ingested frame carries."""
    r = _Reader(data, 7)
    return [(r.uvarint(), r.str_()) for _ in range(r.uvarint())]


def reframe_with_defs(
    opcode: int, defs: Sequence[tuple[int, str]], data: bytes, body_pos: int
) -> bytes:
    """Rebuild an ingested frame with an explicit definitions block.

    Used when a frame must be forwarded to a worker connection that has
    not seen the leading ref's definition yet (it arrived on an earlier
    frame this worker never received): the body bytes are reused
    verbatim, only the defs block is replaced.
    """
    return _frame(opcode, defs, data[body_pos:])


def encode_request_bin2(
    request: Request, interner: StringInterner | None = None
) -> bytes:
    """One bin2 frame for ``request``.

    With an ``interner`` (the per-connection case) function names are
    sent once and referenced after; without one, a throwaway table is
    used so the frame is self-contained.
    """
    entry = _BIN2_REQUEST_ENCODERS.get(type(request))
    if entry is None:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"cannot encode {type(request).__name__} here",
        )
    opcode, encoder = entry
    if interner is None:
        interner = StringInterner()
    defs: list[tuple[int, str]] = []
    body = bytearray()
    encoder(request, body, interner, defs)
    return _frame(opcode, defs, body)


def decode_request_bin2(data, table: StringTable | None = None) -> Request:
    """Inverse of :func:`encode_request_bin2`; raises :class:`ProtocolError`
    (never anything else) on any malformed input."""
    opcode, r = _open_frame(bytes(data))
    if table is None:
        table = StringTable()
    _read_defs(r, table)
    decoder = _BIN2_REQUEST_DECODERS.get(opcode)
    if decoder is None:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, f"unknown binary request opcode {opcode:#04x}"
        )
    try:
        request = decoder(r, table)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"malformed binary {TAG_BY_OPCODE.get(opcode, hex(opcode))} body: {exc}",
        ) from None
    r.expect_end()
    return request


def encode_response_bin2(response: Response | ErrorResponse) -> bytes:
    """One bin2 frame for ``response`` (strings inline, no table)."""
    entry = _BIN2_RESPONSE_ENCODERS.get(type(response))
    if entry is None:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"cannot encode {type(response).__name__} here",
        )
    opcode, encoder = entry
    body = bytearray()
    encoder(response, body)
    return _frame(opcode, (), body)


def decode_response_bin2(data) -> Response | ErrorResponse:
    """Inverse of :func:`encode_response_bin2`."""
    opcode, r = _open_frame(bytes(data))
    _read_defs(r, StringTable())
    decoder = _BIN2_RESPONSE_DECODERS.get(opcode)
    if decoder is None:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"unknown binary response opcode {opcode:#04x}",
        )
    try:
        response = decoder(r)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"malformed binary {TAG_BY_OPCODE.get(opcode, hex(opcode))} body: {exc}",
        ) from None
    r.expect_end()
    return response


# ----------------------------------------------------------------------
# JSON as a codec (text framing of the canonical envelope)
# ----------------------------------------------------------------------
def encode_request_json(
    request: Request, interner: StringInterner | None = None
) -> bytes:
    """The canonical envelope as compact UTF-8 text (interner ignored)."""
    return dumps_compact(encode_request(request)).encode("utf-8")


def decode_request_json(data, table: StringTable | None = None) -> Request:
    from repro.api.protocol import decode_request

    return decode_request(data)


def encode_response_json(response: Response | ErrorResponse) -> bytes:
    return dumps_compact(encode_response(response)).encode("utf-8")


def decode_response_json(data) -> Response | ErrorResponse:
    return decode_response(data)


class WireCodec:
    """One registered encoding: four symmetrical byte-level entry points."""

    __slots__ = (
        "name",
        "encode_request",
        "decode_request",
        "encode_response",
        "decode_response",
        "stateful",
    )

    def __init__(
        self,
        name: str,
        encode_request: Callable,
        decode_request: Callable,
        encode_response: Callable,
        decode_response: Callable,
        stateful: bool,
    ) -> None:
        self.name = name
        self.encode_request = encode_request
        self.decode_request = decode_request
        self.encode_response = encode_response
        self.decode_response = decode_response
        self.stateful = stateful

    def __repr__(self) -> str:
        return f"WireCodec({self.name!r})"


#: The codec registry, in server preference order: a client that offers
#: several known codecs gets the first of *its* offers we support, and a
#: client that offers none gets JSON.
CODECS: dict[str, WireCodec] = {
    CODEC_BIN2: WireCodec(
        CODEC_BIN2,
        encode_request_bin2,
        decode_request_bin2,
        encode_response_bin2,
        decode_response_bin2,
        stateful=True,
    ),
    CODEC_JSON: WireCodec(
        CODEC_JSON,
        encode_request_json,
        decode_request_json,
        encode_response_json,
        decode_response_json,
        stateful=False,
    ),
}


# ----------------------------------------------------------------------
# Negotiation (always JSON, so it reaches pre-codec servers too)
# ----------------------------------------------------------------------
def hello_frame(offer: Sequence[str]) -> bytes:
    """The client's opening handshake, as versioned JSON text."""
    return dumps_compact(
        {"api": PROTOCOL_VERSION, "type": HELLO_TYPE, "codecs": list(offer)}
    ).encode("utf-8")


def hello_reply(chosen: str) -> bytes:
    """The server's answer: the chosen codec, plus everything it speaks."""
    return dumps_compact(
        {
            "api": PROTOCOL_VERSION,
            "type": HELLO_TYPE,
            "codec": chosen,
            "codecs": sorted(CODECS),
        }
    ).encode("utf-8")


def choose_codec(offered) -> str:
    """The server side of negotiation: first *offered* codec we speak.

    Anything unusable — a non-list, unknown names, an empty offer —
    falls back to :data:`CODEC_JSON` rather than erroring: negotiation
    must never strand a client without a working encoding.
    """
    if isinstance(offered, (list, tuple)):
        for name in offered:
            if isinstance(name, str) and name in CODECS:
                return name
    return CODEC_JSON


def parse_hello_reply(raw) -> str | None:
    """The codec a server's reply selected, or ``None`` for "no deal".

    ``None`` covers every legacy outcome: an older server answering the
    unknown ``hello`` type with a structured error envelope, garbage, or
    a reply naming a codec this build does not know.
    """
    if isinstance(raw, (bytes, bytearray, str)):
        try:
            raw = json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            return None
    if not isinstance(raw, dict) or raw.get("type") != HELLO_TYPE:
        return None
    chosen = raw.get("codec")
    if isinstance(chosen, str) and chosen in CODECS:
        return chosen
    return None


def negotiate_codec(transport: Callable[[bytes], bytes], offer: Sequence[str]) -> str:
    """Run the handshake over ``transport``; JSON on any failure."""
    try:
        reply = transport(hello_frame(offer))
    except Exception:  # noqa: BLE001 — negotiation must not raise
        return CODEC_JSON
    chosen = parse_hello_reply(reply)
    if chosen is not None and chosen in offer:
        return chosen
    return CODEC_JSON


# ----------------------------------------------------------------------
# Server side: one connection's byte-level dispatcher
# ----------------------------------------------------------------------
class IngestedFrame:
    """One submitted frame after the cheap arrival-order phase.

    The worker pool decodes bodies concurrently, but string definitions
    must be applied in arrival order (a ref may be used one frame after
    its definition).  :meth:`BytesServerSession.ingest` therefore runs at
    submit time and does only the cheap part — header validation plus the
    defs block — leaving the body parse, dispatch and response encode to
    :meth:`BytesServerSession.complete` on a worker thread.  Because the
    table is append-only between hellos, a body is still decodable after
    later frames extended the table.
    """

    __slots__ = ("data", "opcode", "binary", "error", "request_type", "body_pos")

    def __init__(
        self,
        data: bytes,
        opcode: int | None = None,
        binary: bool = True,
        error: ApiError | None = None,
        body_pos: int | None = None,
    ) -> None:
        self.data = data
        self.opcode = opcode
        self.binary = binary
        self.error = error
        self.body_pos = body_pos
        self.request_type = (
            TAG_BY_OPCODE.get(opcode) if opcode is not None else None
        )


class BytesServerSession:
    """The server half of one byte-speaking connection.

    Wraps a typed ``dispatch(request) -> response`` callable (a
    :class:`~repro.api.client.CompilerClient` or
    :class:`~repro.concurrent.client.ShardedClient`) with frame decode,
    per-frame codec detection (bin2 frames by magic, anything JSON-ish by
    text), the ``hello`` handshake, and per-codec wire metrics
    (``wire.bytes_in``/``wire.bytes_out`` counters and
    ``wire.encode_seconds``/``wire.decode_seconds`` histograms, labelled
    ``codec=...``).  Like every protocol boundary it **never raises**:
    garbage, truncated or mid-frame-corrupted input comes back as a
    structured error in the caller's own framing.

    One session is one connection: the string table is connection state,
    so concurrent *submitters* may share a session (ingest is serialized
    by the wire server), but two independent clients need two sessions.

    ``fast_query`` is an optional lean lane for the hottest message:
    ``(name, revision, want_in, variable, block) -> bool | None``, where
    ``None`` means "fall back to the full dispatch pipeline" (which then
    reproduces the exact structured error and its stats side effects).
    """

    def __init__(
        self,
        dispatch: Callable[[Request], Response],
        obs=None,
        fast_query: Callable[..., bool | None] | None = None,
    ) -> None:
        from repro.obs import Observability

        self._dispatch = dispatch
        self._fast_query = fast_query
        self.obs = obs if obs is not None else Observability()
        self._table = StringTable()
        self._bytes_in = {
            name: self.obs.counter("wire.bytes_in", codec=name) for name in CODECS
        }
        self._bytes_out = {
            name: self.obs.counter("wire.bytes_out", codec=name) for name in CODECS
        }
        self._decode_seconds = {
            name: self.obs.histogram("wire.decode_seconds", codec=name)
            for name in CODECS
        }
        self._encode_seconds = {
            name: self.obs.histogram("wire.encode_seconds", codec=name)
            for name in CODECS
        }
        # Pre-bound hot-path instruments: the bin2 lane records four
        # metrics per frame, and at wire rates the dict probe + attribute
        # bind per record is a measurable slice of a request.
        self._bin2_in_add = self._bytes_in[CODEC_BIN2].add
        self._json_in_add = self._bytes_in[CODEC_JSON].add
        self._bin2_out_add = self._bytes_out[CODEC_BIN2].add
        self._bin2_decode_observe = self._decode_seconds[CODEC_BIN2].observe
        self._bin2_encode_observe = self._encode_seconds[CODEC_BIN2].observe

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget the connection's string table (the reconnect contract)."""
        self._table.reset()

    @property
    def string_table(self) -> StringTable:
        """The connection's receive-side table (relay routing reads it)."""
        return self._table

    # ------------------------------------------------------------------
    # The two-phase path (wire-server integration)
    # ------------------------------------------------------------------
    def ingest(self, data) -> IngestedFrame:
        """Arrival-order phase: classify the frame, apply string defs.

        Cheap by design — called under the wire server's submit lock so
        definitions land in the exact order frames arrived.  Never
        raises; a malformed defs block becomes an error token the worker
        answers in kind.
        """
        try:
            if not isinstance(data, bytes):
                data = bytes(data)
            size = len(data)
            # Single-pass header sniff (the checks of is_bin2_frame and
            # _open_frame, fused): this runs under the submit lock, so
            # every instruction here serializes all submitters.
            if (
                size < 7
                or data[4] != BIN2_MAGIC
                or _FRAME_HEADER.unpack_from(data)[0] != size - 4
                or size - 4 > MAX_FRAME
            ):
                # JSON text (or garbage): the worker-side JSON path owns
                # both, producing the structured not-JSON error itself.
                self._json_in_add(size)
                return IngestedFrame(data, binary=False)
            self._bin2_in_add(size)
            if data[5] != PROTOCOL_VERSION:
                raise ProtocolError(
                    ErrorCode.INVALID_REQUEST,
                    f"protocol version mismatch: got {data[5]!r}, "
                    f"this server speaks {PROTOCOL_VERSION}",
                )
            if size > 7 and data[7] == 0:
                # Zero definitions — the steady-state frame once the
                # connection's names are interned; skip the defs reader.
                return IngestedFrame(data, opcode=data[6], body_pos=8)
            r = _Reader(data, 7)
            _read_defs(r, self._table)
            # body_pos lets the worker skip the defs walk entirely.
            return IngestedFrame(data, opcode=data[6], body_pos=r.pos)
        except ProtocolError as exc:
            return IngestedFrame(b"", error=exc.error)
        except Exception as exc:  # noqa: BLE001 — the boundary must hold
            return IngestedFrame(
                b"",
                error=ApiError(
                    ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"
                ),
            )

    def complete(self, token: IngestedFrame) -> bytes:
        """Worker phase: decode the body, dispatch, encode the answer.

        Never raises; every failure becomes a structured error frame (or
        JSON error envelope for text callers).
        """
        try:
            if token.error is not None:
                if token.binary:
                    return self._error_frame(token.error)
                return self._json_error(token.error)
            if not token.binary:
                return self._complete_json(token.data)
            return self._complete_bin2(token)
        except Exception as exc:  # noqa: BLE001 — the boundary must hold
            error = ApiError(ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}")
            try:
                if token.binary:
                    return self._error_frame(error)
                return self._json_error(error)
            except Exception:  # noqa: BLE001 — last resort, still shaped
                return _INTERNAL_ERROR_FRAME

    def dispatch_frame(self, data) -> bytes:
        """Serial entry point: one frame in, one frame out, never raises."""
        return self.complete(self.ingest(data))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _complete_bin2(self, token: IngestedFrame) -> bytes:
        clock = self.obs.clock
        opcode = token.opcode
        start = clock()
        body_pos = token.body_pos if token.body_pos is not None else 7
        r = _Reader(token.data, body_pos)
        if token.body_pos is None:
            _read_defs(r, self._table)
            body_pos = r.pos
        if opcode == OP_LIVENESS_QUERY and self._fast_query is not None:
            fast = self._fast_liveness(r, clock, start)
            if fast is not None:
                return fast
            # Fall through re-reads the body generically below.
            r = _Reader(token.data, body_pos)
        decoder = _BIN2_REQUEST_DECODERS.get(opcode)
        if decoder is None:
            return self._error_frame(
                ApiError(
                    ErrorCode.INVALID_REQUEST,
                    f"unknown binary request opcode {opcode:#04x}",
                )
            )
        try:
            try:
                request = decoder(r, self._table)
                r.expect_end()
            except ProtocolError:
                raise
            except (KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(
                    ErrorCode.INVALID_REQUEST,
                    f"malformed binary "
                    f"{TAG_BY_OPCODE.get(opcode, hex(opcode))} body: {exc}",
                ) from None
        except ProtocolError as exc:
            return self._error_frame(exc.error)
        self._bin2_decode_observe(clock() - start)
        response = self._dispatch(request)
        start = clock()
        try:
            frame = encode_response_bin2(response)
        except ProtocolError as exc:
            return self._error_frame(exc.error)
        self._bin2_encode_observe(clock() - start)
        self._bin2_out_add(len(frame))
        return frame

    def _fast_liveness(self, r: _Reader, clock, start: float) -> bytes | None:
        """Hand-rolled hot lane for ``LivenessQuery`` frames.

        Parses the five fields without building request objects, asks the
        injected ``fast_query``, and answers from a pre-encoded response
        frame.  Returns ``None`` on *any* unusual condition so the
        generic path (and its exact error semantics) takes over.
        """
        try:
            name = self._table.lookup(r.uvarint())
            revision = r.svarint() if r.u8() else None
            kind = r.u8()
            variable = r.str_()
            block = r.str_()
            if kind > 1 or r.pos != r.end:
                return None
        except ProtocolError:
            return None
        self._bin2_decode_observe(clock() - start)
        try:
            value = self._fast_query(name, revision, kind == 0, variable, block)
        except Exception:  # noqa: BLE001 — the lean lane must stay safe
            value = None
        if value is None:
            return None
        start = clock()
        frame = _FAST_LIVENESS_FRAMES[value]
        self._bin2_encode_observe(clock() - start)
        self._bin2_out_add(len(frame))
        return frame

    def _complete_json(self, data: bytes) -> bytes:
        from repro.api.client import dispatch_json_via

        clock = self.obs.clock
        start = clock()
        parsed = None
        try:
            parsed = json.loads(data)
        except (ValueError, UnicodeDecodeError):
            parsed = None
        if (
            isinstance(parsed, dict)
            and parsed.get("type") == HELLO_TYPE
            and parsed.get("api") == PROTOCOL_VERSION
        ):
            return self._hello(parsed)
        self._decode_seconds[CODEC_JSON].observe(clock() - start)
        envelope = dispatch_json_via(
            self._dispatch_guarded, parsed if parsed is not None else data,
            obs=self.obs,
        )
        start = clock()
        out = dumps_compact(envelope).encode("utf-8")
        self._encode_seconds[CODEC_JSON].observe(clock() - start)
        self._bytes_out[CODEC_JSON].add(len(out))
        return out

    def _dispatch_guarded(self, request: Request) -> Response:
        # The injected dispatch is a client's never-raising entry point;
        # this indirection only exists so a broken injection still comes
        # back as a structured error (complete's catch-all handles it).
        return self._dispatch(request)

    def _hello(self, parsed: dict) -> bytes:
        # A hello starts a (logical) connection: reset the string table
        # so a reconnecting client's fresh interner can never collide
        # with refs a previous life of the connection defined.
        self.reset()
        chosen = choose_codec(parsed.get("codecs"))
        out = hello_reply(chosen)
        self._bytes_out[CODEC_JSON].add(len(out))
        return out

    def _error_frame(self, error: ApiError) -> bytes:
        frame = encode_response_bin2(ErrorResponse(error=error))
        self._bytes_out[CODEC_BIN2].add(len(frame))
        return frame

    def _json_error(self, error: ApiError) -> bytes:
        out = dumps_compact(encode_response(ErrorResponse(error=error))).encode(
            "utf-8"
        )
        self._bytes_out[CODEC_JSON].add(len(out))
        return out


#: Pre-encoded answers for the lean liveness lane (responses carry no
#: connection state, so the ok frames are constants).
_FAST_LIVENESS_FRAMES = {
    True: encode_response_bin2(LivenessResponse(value=True)),
    False: encode_response_bin2(LivenessResponse(value=False)),
}

_INTERNAL_ERROR_FRAME = encode_response_bin2(
    ErrorResponse(error=ApiError(ErrorCode.INTERNAL, "encoder failure"))
)


# ----------------------------------------------------------------------
# Client side: a negotiating byte-level caller
# ----------------------------------------------------------------------
class BytesClient:
    """The client half of one connection over a ``bytes -> bytes`` transport.

    Sends a JSON ``hello`` offering ``offer`` (most preferred first) and
    speaks whatever the server picked: ``bin2`` against a binary-capable
    server, JSON against an older one (whose structured rejection of the
    unknown ``hello`` type *is* the fallback signal) or one that knows
    none of the offered codecs.  ``dispatch`` is typed-in/typed-out and
    never raises — transport failures and undecodable replies come back
    as structured errors in the matching response type.

    One instance is one connection (it owns the send-side string
    interner), and like a real connection it is not meant to be shared
    between threads — give each thread its own.
    """

    def __init__(
        self,
        transport: Callable[[bytes], bytes],
        offer: Sequence[str] = (CODEC_BIN2, CODEC_JSON),
    ) -> None:
        self._transport = transport
        self._interner = StringInterner()
        self.codec = negotiate_codec(transport, tuple(offer))

    def dispatch(self, request: Request) -> Response:
        """Answer one typed request over the wire; never raises."""
        from repro.api.client import failure_response

        try:
            if self.codec == CODEC_BIN2:
                raw = self._transport(
                    encode_request_bin2(request, self._interner)
                )
                if is_bin2_frame(raw):
                    return decode_response_bin2(raw)
                # A server that lost the negotiation state (or answered
                # garbage with a JSON error) still gets decoded.
                return decode_response(raw)
            raw = self._transport(encode_request_json(request))
            return decode_response(raw)
        except ProtocolError as exc:
            return failure_response(request, exc.error)
        except Exception as exc:  # noqa: BLE001 — the boundary must hold
            return failure_response(
                request,
                ApiError(ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"),
            )

    def __repr__(self) -> str:
        return f"BytesClient(codec={self.codec!r})"
