"""The compiler-server façade: one typed door in front of everything.

:class:`CompilerClient` wraps the whole serving stack —
front-end compilation, the multi-function
:class:`~repro.service.LivenessService`, out-of-SSA translation and
register allocation — behind a single ``dispatch(request) -> response``
entry point speaking the protocol of :mod:`repro.api.protocol`:

* every function is addressed through a revisioned
  :class:`~repro.api.handles.FunctionHandle`; a request pinned to an old
  revision is answered with a ``STALE_HANDLE`` error, never a
  silently-stale liveness fact;
* every failure crosses the boundary as a structured
  :class:`~repro.api.errors.ApiError` inside the matching response —
  ``dispatch`` does not raise;
* :meth:`CompilerClient.dispatch_json` drives the same dispatcher from
  (and back to) wire-format JSON envelopes, so a service can be fronted
  by any transport or replayed from a request log.

The batch path is deliberately thin: a :class:`BatchLiveness` stream is
answered through exactly the same per-checker batch engine
:meth:`LivenessService.submit` uses, with per-function variable-name
resolution cached per revision — ``bench/table_service.py --smoke``
guards that this layer stays within 10% of calling ``submit`` directly.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.api.errors import ApiError, ErrorCode, ProtocolError
from repro.api.handles import FunctionHandle
from repro.api.protocol import (
    AllocateRequest,
    AllocateResponse,
    AllocationSummary,
    BatchLiveness,
    BatchLivenessResponse,
    CompileSourceRequest,
    CompileSourceResponse,
    DestructRequest,
    DestructResponse,
    DestructStats,
    ErrorResponse,
    EvictRequest,
    EvictResponse,
    LivenessQuery,
    LivenessResponse,
    LiveSetRequest,
    LiveSetResponse,
    NotifyKind,
    NotifyRequest,
    NotifyResponse,
    QueryKind,
    Request,
    Response,
    RESPONSE_FOR,
    StatsRequest,
    StatsResponse,
    attach_trace,
    decode_request,
    encode_response,
    trace_context,
)
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.value import Variable
from repro.obs import Observability
from repro.service.service import DEFAULT_CAPACITY, LivenessService


def guarded_dispatch(request, handler, failure):
    """Run ``handler(request)``, converting every escape into a response.

    The one place the protocol's never-raise boundary is implemented;
    both :class:`CompilerClient` and the concurrent layer's
    :class:`~repro.concurrent.client.ShardedClient` route through it so
    a failure produces the *same* structured error regardless of which
    front door served the request.
    """
    try:
        return handler(request)
    except ProtocolError as exc:
        return failure(request, exc.error)
    except KeyError as exc:
        # The service's loud unknown-function failures surface here;
        # any other KeyError is an internal bug and must say so.
        if "unknown function" in str(exc):
            return failure(request, ApiError(ErrorCode.UNKNOWN_FUNCTION, str(exc)))
        return failure(request, ApiError(ErrorCode.INTERNAL, f"KeyError: {exc}"))
    except Exception as exc:  # noqa: BLE001 - the boundary must hold
        return failure(
            request, ApiError(ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}")
        )


def failure_response(request, error: ApiError) -> Response:
    """The matching error-carrying response for a failed ``request``.

    Shared by every client front door so failure construction cannot
    drift between the serial and the sharded boundary.
    """
    response_cls = RESPONSE_FOR.get(type(request), ErrorResponse)
    return response_cls(error=error)


def dispatch_json_via(dispatch, payload, obs: "Observability | None" = None) -> dict:
    """Wire driver shared by every client: JSON envelope in and out.

    A payload that cannot even be decoded has no request type to pick a
    response from, so it comes back as an :class:`ErrorResponse` envelope
    — never an exception across the wire boundary.

    When ``obs`` is given and the request envelope carries a trace
    context, the whole dispatch runs under a root span with the caller's
    ``trace_id`` (yielding a structured timing tree in ``obs.tracer``),
    and the response envelope echoes ``{"trace_id": ...}`` back.  The
    echo is a pure function of the request payload — no clock value ever
    enters a response — and old payloads, which simply lack the trace
    key, flow through the untraced path unchanged.
    """
    if isinstance(payload, (str, bytes)):
        # Parse wire text exactly once: both the trace sniff and the
        # request decode below accept a parsed dict, so a text payload
        # must not pay for two full JSON parses.  Parse failures stay
        # with the payload — decode_request turns them into the
        # structured INVALID_REQUEST error.
        try:
            payload = json.loads(payload)
        except (ValueError, UnicodeDecodeError):
            pass
    trace_id = parent_span = None
    if obs is not None:
        trace_id, parent_span = trace_context(payload)
    try:
        request = decode_request(payload)
    except ProtocolError as exc:
        envelope = encode_response(ErrorResponse(error=exc.error))
    else:
        if trace_id is None:
            return encode_response(dispatch(request))
        attributes = {"request": type(request).__name__}
        if parent_span is not None:
            attributes["parent_span"] = parent_span
        with obs.request_trace("request", trace_id=trace_id, **attributes):
            envelope = encode_response(dispatch(request))
    if trace_id is not None:
        attach_trace(envelope, trace_id)
    return envelope


class CompilerClient:
    """Typed request/response façade over the compiler-server stack.

    Thread-safety contract: one ``CompilerClient`` over a plain
    :class:`LivenessService` is **single-threaded** — concurrent callers
    must go through :class:`repro.concurrent.client.ShardedClient`, which
    runs per-shard ``CompilerClient`` instances under the shard locks
    (the ``service`` parameter below is that layer's injection point).
    """

    def __init__(
        self,
        module: Module | Iterable[Function] | None = None,
        capacity: int = DEFAULT_CAPACITY,
        strategy: str = "exact",
        service: LivenessService | None = None,
        obs: Observability | None = None,
        record_dispatch: bool = True,
    ) -> None:
        if service is not None:
            # An injected service is managed (and locked) by the caller;
            # the module, if any, is registered through it.
            self._service = service
            if module is not None:
                for function in module:
                    service.register(function)
        else:
            self._service = LivenessService(
                module, capacity=capacity, strategy=strategy, obs=obs
            )
        # Share one Observability with the service so a StatsRequest sees
        # the whole stack; an injected service brings its own unless the
        # caller overrides.
        self.obs = obs if obs is not None else self._service.obs
        # The sharded layer times dispatch at its own front door and
        # passes record_dispatch=False to its per-shard clients, so each
        # request lands in exactly one dispatch.seconds histogram.
        self._dispatch_seconds = (
            self.obs.histogram("dispatch.seconds") if record_dispatch else None
        )
        #: function name → (revision the map was built at, name → Variable).
        #: Safe for concurrent readers: entries are immutable tuples
        #: published with one atomic dict store, and edits cannot run
        #: concurrently with readers (the sharded layer write-locks them).
        self._variable_maps: dict[str, tuple[int, dict[str, Variable]]] = {}
        #: Lazily-created session backing :meth:`dispatch_bytes`.
        self._default_bytes_session = None

    @property
    def service(self) -> LivenessService:
        """The underlying service (stats, cache introspection, …)."""
        return self._service

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def compile(
        self, source: str, module_name: str = "module"
    ) -> tuple[FunctionHandle, ...]:
        """Compile and register ``source``; raise on failure.

        The exception-free equivalent is dispatching a
        :class:`CompileSourceRequest`.
        """
        response = self.dispatch(
            CompileSourceRequest(source=source, module_name=module_name)
        )
        if response.error is not None:
            raise ProtocolError(response.error.code, response.error.detail)
        assert response.functions is not None
        return response.functions

    def handle(self, name: str) -> FunctionHandle:
        """A fresh handle for ``name`` at its current revision."""
        return self._service.handle(name)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> Response:
        """Answer one protocol request; never raises across the boundary."""
        if self._dispatch_seconds is None:
            return guarded_dispatch(request, self._dispatch, self._failure)
        clock = self.obs.clock
        start = clock()
        with self.obs.span("dispatch", request=type(request).__name__):
            response = guarded_dispatch(request, self._dispatch, self._failure)
        self._dispatch_seconds.observe(clock() - start)
        return response

    def dispatch_json(self, payload) -> dict:
        """Wire driver: JSON envelope in, JSON envelope out."""
        return dispatch_json_via(self.dispatch, payload, obs=self.obs)

    def bytes_session(self):
        """A fresh byte-speaking connection over this client.

        Each session owns one string table (connection state), so two
        independent byte callers need two sessions.  The session answers
        in the caller's own framing — ``bin2`` frames or JSON text —
        and negotiates via the JSON ``hello`` envelope.
        """
        from repro.api.codec import BytesServerSession

        return BytesServerSession(
            self.dispatch, obs=self.obs, fast_query=self.fast_liveness
        )

    def dispatch_bytes(self, data) -> bytes:
        """Wire driver: one frame in, one frame out, never raises.

        Convenience over a lazily-created default session; transports
        serving several connections should create one
        :meth:`bytes_session` per connection instead.
        """
        if self._default_bytes_session is None:
            self._default_bytes_session = self.bytes_session()
        return self._default_bytes_session.dispatch_frame(data)

    def fast_liveness(
        self,
        name: str,
        revision: int | None,
        want_in: bool,
        variable: str,
        block: str,
    ) -> bool | None:
        """Lean lane for the hottest message: a single liveness bit.

        Answers a :class:`LivenessQuery` without building request or
        response objects — the binary codec's fast path rides this.
        Returns ``None`` for *any* unusual condition (unknown function,
        stale or pinned-mismatched revision, unknown variable or block)
        so the caller falls back to full dispatch and gets exactly the
        structured error and stats accounting that path produces.
        """
        service = self._service
        try:
            current = service.revision(name)
        except KeyError:
            return None
        if revision is not None and revision != current:
            return None
        cached = self._variable_maps.get(name)
        if cached is not None and cached[0] == current:
            variables = cached[1]
        else:
            variables = {
                var.name: var for var in service.function(name).variables()
            }
            self._variable_maps[name] = (current, variables)
        var = variables.get(variable)
        if var is None:
            return None
        if block not in service.function(name):
            return None
        checker = service.checker(name)
        service.stats.queries += 1
        if want_in:
            return checker.batch.is_live_in(var, block)
        return checker.batch.is_live_out(var, block)

    def _failure(self, request, error: ApiError) -> Response:
        return failure_response(request, error)

    def _dispatch(self, request: Request) -> Response:
        if isinstance(request, LivenessQuery):
            return self._liveness_query(request)
        if isinstance(request, BatchLiveness):
            return self._batch_liveness(request)
        if isinstance(request, LiveSetRequest):
            return self._live_set(request)
        if isinstance(request, DestructRequest):
            return self._destruct(request)
        if isinstance(request, AllocateRequest):
            return self._allocate(request)
        if isinstance(request, NotifyRequest):
            return self._notify_edit(request)
        if isinstance(request, EvictRequest):
            return self._evict(request)
        if isinstance(request, CompileSourceRequest):
            return self._compile_source(request)
        if isinstance(request, StatsRequest):
            return self._stats(request)
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"unsupported request type {type(request).__name__}",
        )

    # ------------------------------------------------------------------
    # Resolution helpers
    # ------------------------------------------------------------------
    def _resolve_function(self, handle: FunctionHandle) -> Function:
        if handle.name not in self._service:
            raise ProtocolError(
                ErrorCode.UNKNOWN_FUNCTION,
                f"no function named {handle.name!r} is registered",
            )
        return self._service.check_handle(handle)

    def _variable_map(self, name: str) -> dict[str, Variable]:
        revision = self._service.revision(name)
        cached = self._variable_maps.get(name)
        if cached is not None and cached[0] == revision:
            return cached[1]
        mapping = {
            var.name: var for var in self._service.function(name).variables()
        }
        self._variable_maps[name] = (revision, mapping)
        return mapping

    def _resolve_variable(self, function_name: str, variable: str) -> Variable:
        try:
            return self._variable_map(function_name)[variable]
        except KeyError:
            raise ProtocolError(
                ErrorCode.UNKNOWN_VARIABLE,
                f"function {function_name!r} has no variable {variable!r}",
            ) from None

    def _require_block(self, function: Function, block: str) -> str:
        if block not in function:
            raise ProtocolError(
                ErrorCode.UNKNOWN_BLOCK,
                f"function {function.name!r} has no block {block!r}",
            )
        return block

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------
    def _liveness_query(self, request: LivenessQuery) -> LivenessResponse:
        function = self._resolve_function(request.function)
        name = request.function.name
        var = self._resolve_variable(name, request.variable)
        block = self._require_block(function, request.block)
        with self.obs.span("checker_lookup", function=name):
            checker = self._service.checker(name)
        self._service.stats.queries += 1
        with self.obs.span("kernel_query", kind=request.kind.value):
            if request.kind == QueryKind.LIVE_IN:
                value = checker.batch.is_live_in(var, block)
            else:
                value = checker.batch.is_live_out(var, block)
        return LivenessResponse(value=value)

    def _batch_liveness(self, request: BatchLiveness) -> BatchLivenessResponse:
        # Answers flow through exactly the per-checker batch engines
        # LivenessService.submit uses; handle validation, checker lookup
        # and variable-name resolution are amortised to once per function
        # per batch (a mid-batch stream cannot observe edits, so a
        # validated handle stays valid for the rest of the dispatch).
        # Keeping this loop lean is what the dispatch-overhead bench
        # guard measures.
        service = self._service
        stats = service.stats
        values: list[bool] = []
        resolved: dict[str, tuple[int | None, Function, object, dict[str, Variable]]] = {}
        live_in = QueryKind.LIVE_IN
        for query in request.queries:
            handle = query.function
            entry = resolved.get(handle.name)
            if entry is None:
                function = self._resolve_function(handle)
                entry = (
                    handle.revision,
                    function,
                    service.checker(handle.name).batch,
                    self._variable_map(handle.name),
                )
                resolved[handle.name] = entry
            elif handle.revision != entry[0]:
                service.check_handle(handle)
                entry = (handle.revision, entry[1], entry[2], entry[3])
                resolved[handle.name] = entry
            _, function, batch, variables = entry
            var = variables.get(query.variable)
            if var is None:
                raise ProtocolError(
                    ErrorCode.UNKNOWN_VARIABLE,
                    f"function {handle.name!r} has no variable "
                    f"{query.variable!r}",
                )
            if query.block not in function:
                raise ProtocolError(
                    ErrorCode.UNKNOWN_BLOCK,
                    f"function {handle.name!r} has no block {query.block!r}",
                )
            stats.queries += 1
            if query.kind is live_in:
                values.append(batch.is_live_in(var, query.block))
            else:
                values.append(batch.is_live_out(var, query.block))
        return BatchLivenessResponse(values=tuple(values))

    def _live_set(self, request: LiveSetRequest) -> LiveSetResponse:
        function = self._resolve_function(request.function)
        name = request.function.name
        block = self._require_block(function, request.block)
        checker = self._service.checker(name)
        members: list[str] = []
        if request.kind == QueryKind.LIVE_IN:
            probe = checker.batch.is_live_in
        else:
            probe = checker.batch.is_live_out
        for var in checker.live_variables():
            self._service.stats.queries += 1
            if probe(var, block):
                members.append(var.name)
        return LiveSetResponse(variables=tuple(sorted(members)))

    def _destruct(self, request: DestructRequest) -> DestructResponse:
        self._resolve_function(request.function)
        name = request.function.name
        report = self._service.destruct(
            name, engine=request.engine, verify=request.verify
        )
        return DestructResponse(
            function=self._service.handle(name),
            stats=DestructStats.from_report(report),
        )

    def _allocate(self, request: AllocateRequest) -> AllocateResponse:
        from repro.regalloc.allocator import allocate

        from repro.api.registry import get_engine

        function = self._resolve_function(request.function)
        name = request.function.name
        # Resolve the engine *before* handing the function to allocate():
        # past this point, any failure may have mutated it.
        spec = get_engine(request.engine)
        if spec.oracle_factory is None:
            spec.make_oracle(function)  # raises the structural UNSUPPORTED
        try:
            allocation = allocate(
                function,
                num_registers=request.num_registers,
                backend=request.engine,
                destruct=request.destruct,
            )
        except Exception:
            # The failure may have left the function half-edited;
            # invalidate pessimistically so no stale answer survives.
            self._service.notify_instructions_changed(name)
            self._service.notify_cfg_changed(name)
            raise
        # Allocation may split critical edges (a CFG edit) *and* rewrite
        # instructions (spill code, φ lowering) — the two notifications
        # invalidate different state (precomputation vs def–use chains),
        # so both fire whenever any edit actually happened; each also
        # marks outstanding handles stale.  An analysis-only allocation
        # (no splits, no spills, no destruction) edits nothing, so
        # handles and the resident checker stay valid.
        mutated = (
            allocation.reconstructed_ssa
            or allocation.edges_split > 0
            or allocation.spill_report is not None
            or request.destruct
        )
        if mutated:
            self._service.notify_instructions_changed(name)
            self._service.notify_cfg_changed(name)
        if request.destruct:
            # The function is no longer SSA; a rebuilt checker would fail
            # loudly, so do not keep one resident.
            self._service.evict(name)
        return AllocateResponse(
            function=self._service.handle(name),
            allocation=AllocationSummary.from_allocation(allocation),
        )

    def _notify_edit(self, request: NotifyRequest) -> NotifyResponse:
        self._resolve_function(request.function)
        name = request.function.name
        if request.kind is NotifyKind.CFG:
            # A delta-carrying notification lets the service patch the
            # resident precomputation instead of discarding it; absent a
            # delta this is the historical full invalidation.
            self._service.notify_cfg_changed(name, delta=request.delta)
        else:
            self._service.notify_instructions_changed(name)
        return NotifyResponse(function=self._service.handle(name))

    def _evict(self, request: EvictRequest) -> EvictResponse:
        self._resolve_function(request.function)
        name = request.function.name
        self._service.evict(name)
        # Cache geometry only: the revision — and therefore the handle —
        # is deliberately unchanged, and whether a checker was resident
        # is not reported (see EvictResponse).
        return EvictResponse(function=self._service.handle(name))

    def _compile_source(
        self, request: CompileSourceRequest
    ) -> CompileSourceResponse:
        from repro.frontend.compile import compile_source

        try:
            module = compile_source(request.source, name=request.module_name)
        except ValueError as exc:
            # Lexer, parser, lowering and SSA-verification failures are all
            # ValueError subclasses with positioned messages.
            raise ProtocolError(ErrorCode.COMPILE_ERROR, str(exc)) from None
        handles = []
        for function in module:
            if function.name in self._service:
                raise ProtocolError(
                    ErrorCode.DUPLICATE_FUNCTION,
                    f"function {function.name!r} is already registered",
                )
        for function in module:
            self._service.register(function)
            handles.append(self._service.handle(function.name))
        return CompileSourceResponse(functions=tuple(handles))

    def _stats(self, request: StatsRequest) -> StatsResponse:
        # Snapshot first, reset second: with reset=True the response
        # reports exactly the interval the reset closes.
        response = StatsResponse(
            snapshot=self.obs.snapshot(),
            stats=self._service.stats.as_dict(),
        )
        if request.reset:
            self._service.stats.reset()
            self.obs.metrics.reset()
        return response
