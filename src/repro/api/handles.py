"""Revisioned function handles.

The paper's central maintenance contract is that a liveness answer is
only as fresh as the last edit notification; a server that hands raw
function names around cannot *enforce* that contract — a client holding
results derived from revision 3 could silently keep querying after a
CFG edit produced revision 4.  A :class:`FunctionHandle` makes the
contract checkable: the service mints ``(name, revision)`` pairs, bumps
the revision on every ``notify_*`` edit (and on mutating passes such as
out-of-SSA translation), and rejects requests carrying a stale revision
with a ``STALE_HANDLE`` error instead of a silently-wrong answer.

Cache geometry is deliberately invisible here: evicting and rebuilding a
checker reproduces the same answers, so LRU eviction does **not** bump
the revision — handles stay valid across eviction.

Thread-safety contract: a :class:`FunctionHandle` is a frozen value
object — share it freely across threads.  Under the concurrent serving
layer (:mod:`repro.concurrent`) revisions are bumped only while the
owning shard's write lock is held and validated under the read lock, so
the handle is the synchronization currency: a request either observes
the pre-edit function at the pre-edit revision or fails with
``STALE_HANDLE`` — never a half-applied edit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FunctionHandle:
    """A name plus the edit revision it was minted at.

    ``revision=None`` addresses "whatever the current revision is" — the
    unversioned escape hatch for clients that do not care about edit
    races (it can never be stale).
    """

    name: str
    revision: int | None = None

    @property
    def versioned(self) -> bool:
        """Whether this handle pins a specific revision."""
        return self.revision is not None

    def to_json(self) -> dict:
        """Plain-dict view for the wire format."""
        return {"name": self.name, "revision": self.revision}

    @classmethod
    def from_json(cls, payload: dict) -> "FunctionHandle":
        """Inverse of :meth:`to_json` (lossless)."""
        return cls(name=payload["name"], revision=payload.get("revision"))

    def __str__(self) -> str:
        suffix = "" if self.revision is None else f"@r{self.revision}"
        return f"{self.name}{suffix}"
