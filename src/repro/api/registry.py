"""The engine registry: one authority for liveness/interference engines.

Before this module, every client dispatched on bare string literals —
``"fast"`` in the allocator, ``"graph"`` in the destruction pipeline,
each re-validating the name itself and failing with a different
exception.  The registry replaces that with one table of
:class:`EngineSpec` entries: a name, a factory producing the engine's
:class:`~repro.liveness.oracle.LivenessOracle` for one function, and a
:class:`EngineCapabilities` record the clients use to decide *how* to
drive it (batching, invalidation strategy, eager per-point sets).
Third-party engines plug in with :func:`register_engine` and are
immediately selectable everywhere a built-in name is — the allocator,
the destruction pipeline, the service and the benchmark drivers all
resolve names here and nowhere else.

This module is also, deliberately, the only place in the serving stack
where the engine-name string literals appear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.api.errors import ErrorCode, ProtocolError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.function import Function
    from repro.liveness.oracle import LivenessOracle

#: The paper's checker: Algorithm 3 on bitsets, batch engine, incremental
#: def–use maintenance.
FAST = "fast"
#: The same checker forced onto the readable Algorithm-1/2 set path.
SETS = "sets"
#: The conventional baseline: precomputed data-flow sets.
DATAFLOW = "dataflow"
#: The conventional *structure*: an eager full interference graph built
#: from per-point live sets (no point-query oracle at all).
GRAPH = "graph"
#: The paper's checker with the accelerated batch engine: flat rows packed
#: into fixed-width word matrices, hot-mask builds and joint live-in/out
#: sweeps vectorised (numpy when available, scalar fallback otherwise).
MASK = "mask"


class UnknownEngineError(ProtocolError, ValueError):
    """The requested engine name is not registered.

    Subclasses :class:`ValueError` so pre-registry call sites (and their
    tests) that caught ``ValueError`` keep working, and
    :class:`~repro.api.errors.ProtocolError` so the API boundary maps it
    to an ``UNKNOWN_ENGINE`` response without special-casing.
    """

    def __init__(self, name: str) -> None:
        ProtocolError.__init__(
            self,
            ErrorCode.UNKNOWN_ENGINE,
            f"unknown engine {name!r}; expected one of {available_engines()}",
        )


@dataclass(frozen=True)
class EngineCapabilities:
    """What a registered engine can do, as the clients need to know it."""

    #: The engine absorbs program edits incrementally through
    #: ``notify_cfg_changed`` / ``notify_instructions_changed`` /
    #: ``notify_variable_changed``; engines without this are rebuilt from
    #: scratch by their owner after every edit.
    supports_edits: bool = False
    #: The engine materialises per-point live sets (an eager interference
    #: graph) instead of answering point queries through an oracle.
    per_point_sets: bool = False
    #: The engine's analysis does not require strict SSA input.
    non_ssa_input: bool = False
    #: The engine exposes the amortised batch query API
    #: (``oracle.batch`` / ``query_batch``).
    batch_queries: bool = False


@dataclass(frozen=True)
class EngineSpec:
    """One selectable engine: name, oracle factory, capabilities."""

    name: str
    #: Builds the engine's oracle for one function; ``None`` for engines
    #: (like ``graph``) that have no point-query oracle.
    oracle_factory: Callable[["Function"], "LivenessOracle"] | None
    capabilities: EngineCapabilities = field(default_factory=EngineCapabilities)
    description: str = ""

    def make_oracle(self, function: "Function") -> "LivenessOracle":
        """Instantiate the oracle, failing structurally when there is none."""
        if self.oracle_factory is None:
            raise ProtocolError(
                ErrorCode.UNSUPPORTED,
                f"engine {self.name!r} provides no point-query liveness oracle",
            )
        return self.oracle_factory(function)


# ----------------------------------------------------------------------
# The registry proper
# ----------------------------------------------------------------------
_REGISTRY: dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec, replace: bool = False) -> EngineSpec:
    """Make ``spec`` selectable by name everywhere engines are chosen.

    Names must be unique; pass ``replace=True`` to swap an existing
    registration (tests use this to shadow a built-in).
    """
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"engine {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_engine(name: str) -> bool:
    """Remove one registration (True if it existed).  Mostly for tests."""
    return _REGISTRY.pop(name, None) is not None


def get_engine(name: str) -> EngineSpec:
    """The spec registered under ``name`` (raises :class:`UnknownEngineError`)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownEngineError(name) from None


def available_engines() -> tuple[str, ...]:
    """Every registered engine name, in registration order."""
    return tuple(_REGISTRY)


def engine_specs() -> tuple[EngineSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())


# ----------------------------------------------------------------------
# Built-in engines.  The factories import lazily so that importing the
# registry (which protocol-level code does) never drags in the analysis
# stack.
# ----------------------------------------------------------------------
def _fast_oracle(function: "Function") -> "LivenessOracle":
    from repro.core.live_checker import FastLivenessChecker

    return FastLivenessChecker(function)


def _sets_oracle(function: "Function") -> "LivenessOracle":
    from repro.core.live_checker import FastLivenessChecker

    return FastLivenessChecker(function, use_bitsets=False)


def _dataflow_oracle(function: "Function") -> "LivenessOracle":
    from repro.liveness.dataflow import DataflowLiveness

    return DataflowLiveness(function)


def _mask_oracle(function: "Function") -> "LivenessOracle":
    from repro.core.maskengine import MaskLivenessChecker

    return MaskLivenessChecker(function)


register_engine(
    EngineSpec(
        name=FAST,
        oracle_factory=_fast_oracle,
        capabilities=EngineCapabilities(
            supports_edits=True, batch_queries=True
        ),
        description=(
            "the paper's checker: Algorithm 3 on bitsets with cached query "
            "plans and the amortised batch engine"
        ),
    )
)
register_engine(
    EngineSpec(
        name=SETS,
        oracle_factory=_sets_oracle,
        capabilities=EngineCapabilities(supports_edits=True),
        description=(
            "the same checker on the readable Algorithm-1/2 set path "
            "(no bitsets, no batching)"
        ),
    )
)
register_engine(
    EngineSpec(
        name=DATAFLOW,
        oracle_factory=_dataflow_oracle,
        capabilities=EngineCapabilities(non_ssa_input=True),
        description=(
            "the conventional baseline: a precomputed iterative data-flow "
            "fixpoint, rebuilt from scratch after every edit"
        ),
    )
)
register_engine(
    EngineSpec(
        name=GRAPH,
        oracle_factory=None,
        capabilities=EngineCapabilities(per_point_sets=True, non_ssa_input=True),
        description=(
            "the conventional structure: an eager full interference graph "
            "from per-point live sets, answered by pair lookup"
        ),
    )
)
register_engine(
    EngineSpec(
        name=MASK,
        oracle_factory=_mask_oracle,
        capabilities=EngineCapabilities(
            supports_edits=True, batch_queries=True
        ),
        description=(
            "the fast checker with the accelerated batch engine: packed "
            "uint64 row matrices and vectorised hot-mask/interval sweeps "
            "(numpy when available, scalar fallback otherwise)"
        ),
    )
)
