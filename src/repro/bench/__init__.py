"""Benchmark harness: regenerate the paper's tables and figures.

Each module computes the rows of one paper artefact on the synthetic
SPEC-shaped workload and returns them together with the paper's published
values, so the pytest-benchmark drivers under ``benchmarks/`` (and the
``python -m repro.bench.table1`` / ``table2`` entry points) can print a
side-by-side comparison.  See EXPERIMENTS.md for the recorded results.
"""

from repro.bench.reporting import format_table, write_json_report
from repro.bench.table1 import compute_table1, format_table1
from repro.bench.table2 import compute_table2, format_table2
from repro.bench.table_regalloc import (
    REGALLOC_PROFILES,
    compute_table_regalloc,
    format_table_regalloc,
)
from repro.bench.table_service import (
    SERVICE_PROFILES,
    compute_table_service,
    format_table_service,
)
from repro.bench.workload import BenchmarkWorkload, build_workload

__all__ = [
    "BenchmarkWorkload",
    "build_workload",
    "compute_table1",
    "format_table1",
    "compute_table2",
    "format_table2",
    "REGALLOC_PROFILES",
    "compute_table_regalloc",
    "format_table_regalloc",
    "SERVICE_PROFILES",
    "compute_table_service",
    "format_table_service",
    "format_table",
    "write_json_report",
]
