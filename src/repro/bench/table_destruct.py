"""Table D — out-of-SSA translation per interference backend.

The paper's Table 2 measures the liveness queries issued by SSA
destruction; this table measures the whole pass from
:mod:`repro.ssadestruct` with only the way interference questions are
answered swapped out:

* ``fast`` — Budimlić tests through the fast checker: a constant number
  of Algorithm-3 queries per test, nothing precomputed over the variable
  universe;
* ``mask`` — the same checker behind the accelerated
  :mod:`~repro.core.maskengine` batch backend (vectorised row kernels);
* ``dataflow`` — the same query stream answered by a conventional
  data-flow fixpoint computed once after φ isolation;
* ``graph`` — the conventional *structure*: build the full interference
  graph from per-point live sets up front, then answer pairs by lookup.

Destruction only ever asks about φ-related resources, so paying for an
interference graph over every variable at every point is exactly the
waste the paper's on-demand checker avoids; ``fast`` beating ``graph`` by
a wide margin on the large profile is this repo's analogue of the
paper's headline.  All backends make identical coalescing decisions
(asserted by the differential fuzz suite), so the comparison is purely
about the cost of answering.

Run directly with ``python -m repro.bench.table_destruct [scale]``;
``--smoke`` selects one tiny profile for CI, ``--json PATH`` overrides
where the machine-readable report (default ``BENCH_destruct.json``) is
written.
"""

from __future__ import annotations

import copy
import random
import sys
import time
from dataclasses import dataclass, field

import repro.core.maskengine  # noqa: F401  (pay numpy's import outside the timed region)
from repro.api.registry import DATAFLOW, FAST, GRAPH, MASK
from repro.bench.reporting import format_table, parse_bench_argv, write_json_report
from repro.ir.function import Function
from repro.ssadestruct.pipeline import destruct
from repro.synth.spec_profiles import generate_function_with_blocks

#: Backend names in reporting order; ``graph`` is the speed-up baseline.
BACKEND_ORDER = (FAST, MASK, DATAFLOW, GRAPH)


@dataclass(frozen=True)
class DestructProfile:
    """One synthetic workload tier."""

    name: str
    #: Number of functions generated (before the harness scale factor).
    functions: int
    #: Target block count per function (spec-profile shaped generator).
    target_blocks: int


DESTRUCT_PROFILES: tuple[DestructProfile, ...] = (
    DestructProfile("small", functions=8, target_blocks=10),
    DestructProfile("medium", functions=5, target_blocks=40),
    DestructProfile("large", functions=3, target_blocks=160),
)

#: The tiny profile CI smoke-runs to catch bench-driver regressions fast.
SMOKE_PROFILES: tuple[DestructProfile, ...] = (
    DestructProfile("smoke", functions=2, target_blocks=8),
)

#: Default output path of the machine-readable report.
DEFAULT_JSON_PATH = "BENCH_destruct.json"


@dataclass
class TableDestructRow:
    """Measured destruction cost of one profile, per backend."""

    profile: str
    functions: int
    blocks: int
    phis: int
    pairs: int
    coalesced: int
    queries: int
    #: Total destruction wall-clock per backend, milliseconds.
    millis: dict[str, float] = field(default_factory=dict)

    def speedup(self, backend: str, baseline: str = GRAPH) -> float:
        """How many times faster ``backend`` is than ``baseline``."""
        if not self.millis.get(backend):
            return 0.0
        return self.millis[baseline] / self.millis[backend]

    def as_dict(self) -> dict:
        """JSON-ready view, including the derived speed-ups."""
        return {
            "profile": self.profile,
            "functions": self.functions,
            "blocks": self.blocks,
            "phis": self.phis,
            "pairs": self.pairs,
            "coalesced": self.coalesced,
            "queries": self.queries,
            "millis": dict(self.millis),
            "speedup_vs_graph": {
                backend: self.speedup(backend)
                for backend in self.millis
                if backend != GRAPH
            },
        }


def generate_profile_functions(
    profile: DestructProfile, scale: int = 1, seed: int = 0
) -> list[Function]:
    """The workload of one profile: spec-shaped structured SSA functions."""
    # str.hash is randomised per process; derive a stable per-profile offset.
    rng = random.Random(seed * 6449 + sum(map(ord, profile.name)))
    return [
        generate_function_with_blocks(
            rng, target_blocks=profile.target_blocks, name=f"{profile.name}_{index}"
        )
        for index in range(profile.functions * scale)
    ]


def measure_profile(
    profile: DestructProfile,
    functions: list[Function],
    backends: tuple[str, ...] = BACKEND_ORDER,
) -> TableDestructRow:
    """Destruct every function once per backend, timing the whole pass.

    Each backend gets its own deep copy of each function (destruction
    mutates: edge splitting, copy insertion, renaming), so the backends
    see identical inputs and, by determinism, make identical decisions.
    """
    row = TableDestructRow(
        profile=profile.name,
        functions=len(functions),
        blocks=sum(len(function.blocks) for function in functions),
        phis=0,
        pairs=0,
        coalesced=0,
        queries=0,
    )
    for backend in backends:
        total = 0.0
        phis = pairs = coalesced = queries = 0
        for function in functions:
            scratch = copy.deepcopy(function)
            start = time.perf_counter()
            report = destruct(scratch, backend=backend)
            total += time.perf_counter() - start
            phis += report.phis_isolated
            pairs += report.pairs_inserted
            coalesced += report.pairs_coalesced
            queries += report.liveness_queries
        row.millis[backend] = total * 1000.0
        # The structural figures coincide across backends (identical
        # decisions); keep the last measured set and the largest query
        # count (the graph backend reports none).
        row.phis, row.pairs, row.coalesced = phis, pairs, coalesced
        row.queries = max(row.queries, queries)
    return row


def compute_table_destruct(
    scale: int = 1,
    seed: int = 0,
    profiles: tuple[DestructProfile, ...] = DESTRUCT_PROFILES,
    backends: tuple[str, ...] = BACKEND_ORDER,
) -> list[TableDestructRow]:
    """Measure every profile with every backend."""
    rows = []
    for profile in profiles:
        functions = generate_profile_functions(profile, scale=scale, seed=seed)
        rows.append(measure_profile(profile, functions, backends))
    return rows


def format_table_destruct(rows: list[TableDestructRow]) -> str:
    """Render the per-backend wall-clock comparison."""
    backends = [
        backend
        for backend in BACKEND_ORDER
        if backend in (rows[0].millis if rows else {})
    ]
    headers = ["Profile", "#Fn", "#Blocks", "#Phis", "#Pairs", "Coal", "Queries"]
    for backend in backends:
        headers.append(f"{backend} ms")
    for backend in backends:
        if backend != GRAPH:
            headers.append(f"{backend}/graph")
    table_rows = []
    for row in rows:
        cells: list[object] = [
            row.profile,
            row.functions,
            row.blocks,
            row.phis,
            row.pairs,
            row.coalesced,
            row.queries,
        ]
        cells.extend(row.millis[backend] for backend in backends)
        cells.extend(
            row.speedup(backend) for backend in backends if backend != GRAPH
        )
        table_rows.append(cells)
    return format_table(
        headers,
        table_rows,
        title=(
            "Table D — out-of-SSA translation per interference backend "
            "(x/graph: speed-up over eager interference-graph construction)"
        ),
    )


def write_report(rows: list[TableDestructRow], path: str = DEFAULT_JSON_PATH) -> str:
    """Emit the machine-readable ``BENCH_destruct.json`` report."""
    return write_json_report(
        path,
        "table_destruct",
        {
            "baseline": GRAPH,
            "rows": [row.as_dict() for row in rows],
        },
    )


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    scale, smoke, json_path = parse_bench_argv(
        argv if argv is not None else sys.argv[1:], DEFAULT_JSON_PATH
    )
    profiles = SMOKE_PROFILES if smoke else DESTRUCT_PROFILES
    rows = compute_table_destruct(scale=scale, profiles=profiles)
    print(format_table_destruct(rows))
    large = next((row for row in rows if row.profile == "large"), None)
    if large is not None:
        print(
            f"\nlarge profile: query-driven coalescing is "
            f"{large.speedup(FAST):.2f}x the eager interference-graph baseline"
        )
    written = write_report(rows, json_path)
    print(f"json report: {written}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
