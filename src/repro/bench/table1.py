"""Table 1 — quantitative evaluation of the workload.

For every benchmark profile the harness generates a scaled procedure
population, measures the same statistics the paper reports (average and
total block counts, the ≤32/≤64-block percentiles, the maximum, and the
uses-per-variable CDF), and prints them next to the published values.
Absolute totals differ by the scale factor; the distribution columns are
the ones expected to line up.

Run directly with ``python -m repro.bench.table1 [scale]``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.bench.reporting import format_table
from repro.bench.workload import BenchmarkWorkload, build_workload
from repro.synth.spec_profiles import SPEC_PROFILES, BenchmarkProfile


@dataclass
class Table1Row:
    """Measured + published statistics for one benchmark."""

    benchmark: str
    procedures: int
    avg_blocks: float
    paper_avg_blocks: float
    sum_blocks: int
    pct_le_32: float
    paper_pct_le_32: float
    pct_le_64: float
    paper_pct_le_64: float
    max_blocks: int
    paper_max_blocks: int
    pct_uses_le_1: float
    paper_pct_uses_le_1: float
    pct_uses_le_4: float
    paper_pct_uses_le_4: float


def compute_row(workload: BenchmarkWorkload) -> Table1Row:
    """Measure Table 1's columns for one generated workload."""
    profile = workload.profile
    block_counts = [proc.num_blocks for proc in workload.procedures]
    total_variables = 0
    uses_le = {1: 0, 4: 0}
    for proc in workload.procedures:
        for var in proc.defuse.variables():
            total_variables += 1
            uses = proc.defuse.num_uses(var)
            if uses <= 1:
                uses_le[1] += 1
            if uses <= 4:
                uses_le[4] += 1
    count = len(block_counts)
    return Table1Row(
        benchmark=profile.name,
        procedures=count,
        avg_blocks=sum(block_counts) / count,
        paper_avg_blocks=profile.avg_blocks,
        sum_blocks=sum(block_counts),
        pct_le_32=100.0 * sum(b <= 32 for b in block_counts) / count,
        paper_pct_le_32=profile.pct_blocks_le_32,
        pct_le_64=100.0 * sum(b <= 64 for b in block_counts) / count,
        paper_pct_le_64=profile.pct_blocks_le_64,
        max_blocks=max(block_counts),
        paper_max_blocks=profile.max_blocks,
        pct_uses_le_1=100.0 * uses_le[1] / max(total_variables, 1),
        paper_pct_uses_le_1=profile.pct_uses_le[0],
        pct_uses_le_4=100.0 * uses_le[4] / max(total_variables, 1),
        paper_pct_uses_le_4=profile.pct_uses_le[3],
    )


def compute_table1(
    scale: int = 6,
    seed: int = 0,
    profiles: tuple[BenchmarkProfile, ...] = SPEC_PROFILES,
    workloads: dict[str, BenchmarkWorkload] | None = None,
) -> list[Table1Row]:
    """Compute Table 1 rows for every profile (reusing workloads if given)."""
    rows = []
    for profile in profiles:
        if workloads is not None and profile.name in workloads:
            workload = workloads[profile.name]
        else:
            workload = build_workload(profile, scale=scale, seed=seed)
        rows.append(compute_row(workload))
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render the measured-vs-paper comparison."""
    headers = [
        "Benchmark",
        "#Proc",
        "Avg blocks",
        "(paper)",
        "%<=32",
        "(paper)",
        "%<=64",
        "(paper)",
        "Max",
        "(paper)",
        "%uses<=1",
        "(paper)",
        "%uses<=4",
        "(paper)",
    ]
    table_rows = [
        [
            row.benchmark,
            row.procedures,
            row.avg_blocks,
            row.paper_avg_blocks,
            row.pct_le_32,
            row.paper_pct_le_32,
            row.pct_le_64,
            row.paper_pct_le_64,
            row.max_blocks,
            row.paper_max_blocks,
            row.pct_uses_le_1,
            row.paper_pct_uses_le_1,
            row.pct_uses_le_4,
            row.paper_pct_uses_le_4,
        ]
        for row in rows
    ]
    return format_table(
        headers,
        table_rows,
        title="Table 1 — quantitative evaluation (measured vs. paper)",
    )


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    args = argv if argv is not None else sys.argv[1:]
    scale = int(args[0]) if args else 6
    print(format_table1(compute_table1(scale=scale)))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
