"""Table I — incremental precomputation patching vs full rebuild.

PR 10's tentpole claim: when a CFG edit arrives *described* (a
:class:`~repro.core.incremental.CfgDelta`), the checker patches only the
dominance-preorder numbers and the ``R``/``T`` rows the edit can reach,
instead of recomputing the whole :class:`~repro.core.LivenessPrecomputation`.
This table measures that claim directly at the kernel level:

* ``incremental`` — :func:`~repro.core.incremental.apply_cfg_delta` on a
  warm precomputation, one single-edge delta at a time;
* ``rebuild`` — ``LivenessPrecomputation(graph)`` from scratch over the
  *same* post-edit graph (what every caller paid before this PR, and
  what fallback still pays).

The measured edits are back-edge insertions ``s -> t`` with ``t``
strictly dominating ``s`` — the shape the patcher is guaranteed to apply
(a dominator is a DFS-tree ancestor, and such an edge provably preserves
the dominator tree), so the two timings compare identical work.  Bit
identity of the patched state against a from-scratch rebuild is asserted
once per function, outside the timed region.

Honesty about the cases the patcher refuses: a separate probe drives
each profile's precomputation with *random* single-edge deltas (adds and
removals, no shape guarantee) through
:func:`~repro.core.incremental.update_precomputation` and reports the
observed fallback rate — the fraction of edits where the caller still
pays a full rebuild.

Run directly with ``python -m repro.bench.table_incremental [scale]``;
``--smoke`` selects one tiny profile for CI, ``--json PATH`` overrides
where the machine-readable report (default ``BENCH_incremental.json``)
is written.  The report carries ``floor``: the guarded margin the large
profile's speed-up must clear (validated by ``benchmarks/``).
"""

from __future__ import annotations

import random
import statistics
import sys
import time
from dataclasses import dataclass

from repro.bench.reporting import format_table, parse_bench_argv, write_json_report
from repro.cfg.dominance import DominatorTree
from repro.cfg.graph import ControlFlowGraph
from repro.core.incremental import CfgDelta, apply_cfg_delta, update_precomputation
from repro.core.precompute import LivenessPrecomputation
from repro.ir.function import Function
from repro.synth.spec_profiles import generate_function_with_blocks

#: The guarded margin: on the ``large`` profile, the median single-edge
#: patch must be at least this many times faster than the median rebuild.
#: Measured headroom is well above this (~7.5x); the floor only catches
#: the optimisation being silently lost, not jitter.
SPEEDUP_FLOOR = 3.0


@dataclass(frozen=True)
class IncrementalProfile:
    """One synthetic workload tier."""

    name: str
    #: Number of functions generated (before the harness scale factor).
    functions: int
    #: Target block count per function (spec-profile shaped generator).
    target_blocks: int
    #: Guaranteed-applied single-edge edits measured per function (capped
    #: by how many dominated pairs the function actually offers).
    edits: int
    #: Random unconstrained deltas driven through the fallback probe.
    probe_trials: int


INCREMENTAL_PROFILES: tuple[IncrementalProfile, ...] = (
    IncrementalProfile("small", functions=6, target_blocks=12, edits=6, probe_trials=40),
    IncrementalProfile("medium", functions=4, target_blocks=40, edits=10, probe_trials=40),
    IncrementalProfile("large", functions=3, target_blocks=120, edits=12, probe_trials=40),
)

#: The tiny profile CI smoke-runs to catch bench-driver regressions fast.
SMOKE_PROFILES: tuple[IncrementalProfile, ...] = (
    IncrementalProfile("smoke", functions=2, target_blocks=10, edits=4, probe_trials=12),
)

#: Default output path of the machine-readable report.
DEFAULT_JSON_PATH = "BENCH_incremental.json"


@dataclass
class TableIncrementalRow:
    """Measured patch-vs-rebuild cost of one profile."""

    profile: str
    functions: int
    blocks: int
    edges: int
    #: Guaranteed-shape edits measured (timed pairs).
    edits: int
    #: How many of the timed edits the patcher actually applied.
    applied: int
    #: Median cost of one incremental patch, milliseconds.
    incremental_ms: float = 0.0
    #: Median cost of one from-scratch rebuild of the same graph, ms.
    rebuild_ms: float = 0.0
    #: Fallback probe: random unconstrained deltas.
    probe_trials: int = 0
    probe_applied: int = 0
    probe_fallbacks: int = 0

    @property
    def speedup(self) -> float:
        """How many times faster one patch is than one rebuild."""
        if not self.incremental_ms:
            return 0.0
        return self.rebuild_ms / self.incremental_ms

    @property
    def fallback_rate(self) -> float:
        """Observed fallback fraction under unconstrained random edits."""
        if not self.probe_trials:
            return 0.0
        return self.probe_fallbacks / self.probe_trials

    def as_dict(self) -> dict:
        """JSON-ready view, including the derived figures."""
        return {
            "profile": self.profile,
            "functions": self.functions,
            "blocks": self.blocks,
            "edges": self.edges,
            "edits": self.edits,
            "applied": self.applied,
            "incremental_ms": self.incremental_ms,
            "rebuild_ms": self.rebuild_ms,
            "speedup_vs_rebuild": self.speedup,
            "fallback_probe": {
                "trials": self.probe_trials,
                "applied": self.probe_applied,
                "fallbacks": self.probe_fallbacks,
                "fallback_rate": self.fallback_rate,
            },
        }


def generate_profile_functions(
    profile: IncrementalProfile, scale: int = 1, seed: int = 0
) -> list[Function]:
    """The workload of one profile: spec-shaped structured SSA functions."""
    # str.hash is randomised per process; derive a stable per-profile offset.
    rng = random.Random(seed * 104729 + sum(map(ord, profile.name)))
    return [
        generate_function_with_blocks(
            rng, target_blocks=profile.target_blocks, name=f"{profile.name}_{index}"
        )
        for index in range(profile.functions * scale)
    ]


def dominated_pairs(graph: ControlFlowGraph) -> list[tuple]:
    """Every ``(s, t)`` with ``t`` strictly dominating ``s`` and no edge yet.

    Adding ``s -> t`` for such a pair is always a DFS back edge of the
    warm precomputation and provably preserves the dominator tree, so
    :func:`apply_cfg_delta` applies it without a fallback.
    """
    dom = DominatorTree(graph)
    return [
        (source, target)
        for source in graph.nodes()
        for target in graph.nodes()
        if target != graph.entry
        and target != source
        and dom.dominates(target, source)
        and not graph.has_edge(source, target)
    ]


def assert_bit_identical(pre: LivenessPrecomputation) -> None:
    """The patched state must equal a from-scratch rebuild, bit for bit."""
    fresh = LivenessPrecomputation(pre.graph.copy())
    for node in pre.graph.nodes():
        twin = node  # node names are shared between the copies
        assert pre.reach.bitset(node).mask == fresh.reach.bitset(twin).mask, node
        assert pre.targets.bitset(node).mask == fresh.targets.bitset(twin).mask, node
        assert pre.num(node) == fresh.num(twin), node
        assert pre.maxnum(node) == fresh.maxnum(twin), node


def measure_function(
    function: Function,
    edits: int,
    rng: random.Random,
    incremental_samples: list[float],
    rebuild_samples: list[float],
) -> tuple[int, int]:
    """Time up to ``edits`` guaranteed-shape patches on one warm checker.

    Returns ``(timed, applied)``.  Each edit is timed twice over the
    same post-edit graph: once as a patch of the warm precomputation,
    once as a from-scratch rebuild (on a copy taken outside the timer).
    """
    graph = function.build_cfg()
    pre = LivenessPrecomputation(graph)
    candidates = dominated_pairs(graph)
    rng.shuffle(candidates)
    timed = applied = 0
    for source, target in candidates:
        if timed >= edits:
            break
        if pre.graph.has_edge(source, target):
            continue
        delta = CfgDelta.edge_added(source, target)
        start = time.perf_counter()
        result = apply_cfg_delta(pre, delta)
        incremental_samples.append((time.perf_counter() - start) * 1000.0)
        scratch = pre.graph.copy()
        start = time.perf_counter()
        LivenessPrecomputation(scratch)
        rebuild_samples.append((time.perf_counter() - start) * 1000.0)
        timed += 1
        if result.applied:
            applied += 1
        else:  # pragma: no cover - the shape guarantee failed; stay honest
            pre = LivenessPrecomputation(pre.graph)
    if applied:
        assert_bit_identical(pre)
    return timed, applied


def probe_fallback_rate(
    function: Function, trials: int, rng: random.Random
) -> tuple[int, int, int]:
    """Drive random unconstrained deltas; count applied vs fallback.

    Uses :func:`update_precomputation` exactly as a caller would: on a
    fallback the returned fresh rebuild replaces the working state.
    Removal candidates that would disconnect the graph are skipped (they
    model deleting a block, which the delta vocabulary spells
    differently).
    """
    pre = LivenessPrecomputation(function.build_cfg())
    attempted = applied = fallbacks = 0
    guard = 0
    while attempted < trials and guard < trials * 20:
        guard += 1
        graph = pre.graph
        nodes = graph.nodes()
        if rng.random() < 0.6:
            source, target = rng.choice(nodes), rng.choice(nodes)
            if target == graph.entry or graph.has_edge(source, target):
                continue
            delta = CfgDelta.edge_added(source, target)
        else:
            edges = graph.edges()
            if not edges:
                continue
            source, target = rng.choice(edges)
            probe = graph.copy()
            probe.remove_edge(source, target)
            if probe.unreachable_nodes():
                continue
            delta = CfgDelta.edge_removed(source, target)
        pre, result = update_precomputation(pre, delta)
        attempted += 1
        if result.applied:
            applied += 1
        else:
            fallbacks += 1
    return attempted, applied, fallbacks


def measure_profile(
    profile: IncrementalProfile,
    functions: list[Function],
    seed: int = 0,
) -> TableIncrementalRow:
    """Measure every function of one profile."""
    rng = random.Random(seed * 7907 + sum(map(ord, profile.name)))
    row = TableIncrementalRow(
        profile=profile.name,
        functions=len(functions),
        blocks=sum(len(function.blocks) for function in functions),
        edges=sum(function.build_cfg().num_edges() for function in functions),
        edits=0,
        applied=0,
    )
    incremental_samples: list[float] = []
    rebuild_samples: list[float] = []
    for function in functions:
        timed, applied = measure_function(
            function, profile.edits, rng, incremental_samples, rebuild_samples
        )
        row.edits += timed
        row.applied += applied
        attempted, probe_applied, probe_fallbacks = probe_fallback_rate(
            function, profile.probe_trials // max(len(functions), 1) + 1, rng
        )
        row.probe_trials += attempted
        row.probe_applied += probe_applied
        row.probe_fallbacks += probe_fallbacks
    if incremental_samples:
        row.incremental_ms = statistics.median(incremental_samples)
        row.rebuild_ms = statistics.median(rebuild_samples)
    return row


def compute_table_incremental(
    scale: int = 1,
    seed: int = 0,
    profiles: tuple[IncrementalProfile, ...] = INCREMENTAL_PROFILES,
) -> list[TableIncrementalRow]:
    """Measure every profile."""
    rows = []
    for profile in profiles:
        functions = generate_profile_functions(profile, scale=scale, seed=seed)
        rows.append(measure_profile(profile, functions, seed=seed))
    return rows


def format_table_incremental(rows: list[TableIncrementalRow]) -> str:
    """Render the patch-vs-rebuild comparison."""
    headers = [
        "Profile",
        "#Fn",
        "#Blocks",
        "#Edges",
        "Edits",
        "Applied",
        "patch ms",
        "rebuild ms",
        "rebuild/patch",
        "fallback%",
    ]
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.profile,
                row.functions,
                row.blocks,
                row.edges,
                row.edits,
                row.applied,
                f"{row.incremental_ms:.4f}",
                f"{row.rebuild_ms:.4f}",
                row.speedup,
                row.fallback_rate * 100.0,
            ]
        )
    return format_table(
        headers,
        table_rows,
        title=(
            "Table I — single-edge CfgDelta patch vs full precomputation "
            "rebuild (medians; fallback%: unconstrained random edits the "
            "patcher refused)"
        ),
    )


def write_report(
    rows: list[TableIncrementalRow], path: str = DEFAULT_JSON_PATH
) -> str:
    """Emit the machine-readable ``BENCH_incremental.json`` report."""
    return write_json_report(
        path,
        "table_incremental",
        {
            "baseline": "rebuild",
            "floor": SPEEDUP_FLOOR,
            "rows": [row.as_dict() for row in rows],
        },
    )


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    scale, smoke, json_path = parse_bench_argv(
        argv if argv is not None else sys.argv[1:], DEFAULT_JSON_PATH
    )
    profiles = SMOKE_PROFILES if smoke else INCREMENTAL_PROFILES
    rows = compute_table_incremental(scale=scale, profiles=profiles)
    print(format_table_incremental(rows))
    large = next((row for row in rows if row.profile == "large"), None)
    if large is not None:
        print(
            f"\nlarge profile: one incremental patch is {large.speedup:.1f}x "
            f"cheaper than one rebuild (floor {SPEEDUP_FLOOR:.1f}x, "
            f"fallback rate {large.fallback_rate:.0%} on random edits)"
        )
    written = write_report(rows, json_path)
    print(f"json report: {written}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
