"""Table C — concurrent sharded serving vs. the serial service.

Three questions, one mixed multi-function request stream:

* **lock overhead** — what does routing ``submit()`` through
  :class:`~repro.concurrent.ShardedService` (shard hashing + RW locks)
  cost a *single-threaded* caller, versus the plain serial
  :class:`~repro.service.LivenessService`?  This is the no-regression
  guard: existing single-threaded users must not pay more than
  :data:`MAX_SHARDED_OVERHEAD` for the thread-safety they do not use.
* **wire throughput** — how many requests per second does the
  worker-pool :func:`~repro.concurrent.serve_loop` sustain over a
  :class:`~repro.concurrent.ShardedClient`, across worker counts,
  measured on *real bytes*: the same stream framed as UTF-8 JSON text
  (``wire_Nw``) and as binary ``bin2`` frames (``wire_bin2_Nw``), both
  decoded and answered through the client's
  :class:`~repro.api.codec.BytesServerSession`.
  (CPython's GIL means query throughput does not *scale* with workers —
  the pool buys concurrency, overlap with I/O-bound callers and
  bounded-queue backpressure, not parallel bit-twiddling; the table
  records that honestly rather than claiming a speed-up.)
* **contention** — the same wire load driven at a 1-shard service
  (every request fights for one lock) vs. the sharded default, from
  multiple submitter threads.

Run directly with ``python -m repro.bench.table_concurrency [scale]``;
``--smoke`` selects the tiny CI profile **and enforces the overhead
guard**, ``--json PATH`` overrides where the machine-readable report
(default ``BENCH_concurrency.json``) is written.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field

from repro.api.codec import StringInterner, encode_request_bin2, encode_request_json
from repro.api.protocol import LivenessQuery
from repro.bench.reporting import format_table, parse_bench_argv, write_json_report
from repro.bench.table_service import (
    ServiceProfile,
    generate_request_stream,
    generate_service_module,
)
from repro.concurrent import ProcClient, ShardedClient, ShardedService, serve_loop
from repro.obs import Observability
from repro.service import LivenessService

#: Default output path of the machine-readable report.
DEFAULT_JSON_PATH = "BENCH_concurrency.json"

#: Bench guard: single-threaded ``ShardedService.submit`` may cost at
#: most this fraction over the serial ``LivenessService.submit``.
MAX_SHARDED_OVERHEAD = 0.15

#: Worker counts the wire loop is measured at.
WORKER_COUNTS = (1, 2, 4, 8)

#: Worker-*process* counts the multi-process coordinator is measured at.
PROC_WORKER_COUNTS = (1, 2, 4)

#: Cores required before the multi-process scaling guard is meaningful:
#: process scale-out cannot beat the GIL on a box with fewer cores than
#: workers, so the ≥2x-at-4-workers assertion only runs where 4 workers
#: can actually run in parallel.  The ``cores`` field in the report says
#: which regime a given JSON was measured in.
PROC_SCALING_MIN_CORES = 4

#: The scaling guard itself: 4 worker processes must deliver at least
#: this multiple of the 1-worker (single-process) wire figure.
PROC_SCALING_FLOOR = 2.0

#: Default shard count for the measured sharded configurations.
BENCH_SHARDS = 8


def available_cores() -> int:
    """Cores this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1

CONCURRENCY_PROFILES: tuple[ServiceProfile, ...] = (
    ServiceProfile("mixed", functions=60, target_blocks=12, queries=2000),
    ServiceProfile("wide", functions=120, target_blocks=8, queries=3000),
)

SMOKE_PROFILES: tuple[ServiceProfile, ...] = (
    ServiceProfile("smoke", functions=50, target_blocks=6, queries=400),
)


@dataclass
class TableConcurrencyRow:
    """Measured serving cost of one profile across configurations."""

    profile: str
    functions: int
    queries: int
    shards: int
    #: Best-of-N total wall-clock, milliseconds, per mode.
    millis: dict[str, float] = field(default_factory=dict)
    #: Wire requests/second through serve_loop on UTF-8 JSON text
    #: frames, per worker count.
    wire_rps: dict[int, float] = field(default_factory=dict)
    #: Per-request service-time percentiles (ms), per worker count,
    #: derived from the pool's ``wire.request_seconds`` histogram.
    wire_p50_ms: dict[int, float] = field(default_factory=dict)
    wire_p99_ms: dict[int, float] = field(default_factory=dict)
    #: The same stream as binary ``bin2`` frames, per worker count.
    wire_bin2_rps: dict[int, float] = field(default_factory=dict)
    wire_bin2_p50_ms: dict[int, float] = field(default_factory=dict)
    wire_bin2_p99_ms: dict[int, float] = field(default_factory=dict)
    #: Multi-process serving (``ProcClient.serve``): the same streams
    #: through N worker *processes*, per codec.  ``cores`` records how
    #: many cores the measurement actually had — on a 1-core container
    #: these columns are honest pipe-overhead numbers, not a speed-up.
    cores: int = 0
    wire_proc_rps: dict[int, float] = field(default_factory=dict)
    wire_proc_p50_ms: dict[int, float] = field(default_factory=dict)
    wire_proc_p99_ms: dict[int, float] = field(default_factory=dict)
    wire_proc_bin2_rps: dict[int, float] = field(default_factory=dict)
    wire_proc_bin2_p50_ms: dict[int, float] = field(default_factory=dict)
    wire_proc_bin2_p99_ms: dict[int, float] = field(default_factory=dict)

    def bin2_speedup(self, workers: int) -> float:
        """bin2 wire throughput over JSON wire throughput, same pool size."""
        json_rps = self.wire_rps.get(workers, 0.0)
        if not json_rps:
            return 0.0
        return self.wire_bin2_rps.get(workers, 0.0) / json_rps

    def proc_scaling(self, workers: int, codec: str = "json") -> float:
        """Multi-process throughput at ``workers`` over the 1-process figure."""
        rps = self.wire_proc_bin2_rps if codec == "bin2" else self.wire_proc_rps
        baseline = rps.get(1, 0.0)
        if not baseline:
            return 0.0
        return rps.get(workers, 0.0) / baseline

    @property
    def sharded_overhead(self) -> float:
        """Fractional single-thread cost of the sharded submit path."""
        serial = self.millis.get("serial_submit", 0.0)
        if not serial:
            return 0.0
        return self.millis["sharded_submit"] / serial - 1.0

    def as_dict(self) -> dict:
        return {
            "profile": self.profile,
            "functions": self.functions,
            "queries": self.queries,
            "shards": self.shards,
            "millis": dict(self.millis),
            "sharded_overhead": self.sharded_overhead,
            "wire_rps": {str(k): v for k, v in self.wire_rps.items()},
            "wire_p50_ms": {str(k): v for k, v in self.wire_p50_ms.items()},
            "wire_p99_ms": {str(k): v for k, v in self.wire_p99_ms.items()},
            "wire_bin2_rps": {
                str(k): v for k, v in self.wire_bin2_rps.items()
            },
            "wire_bin2_p50_ms": {
                str(k): v for k, v in self.wire_bin2_p50_ms.items()
            },
            "wire_bin2_p99_ms": {
                str(k): v for k, v in self.wire_bin2_p99_ms.items()
            },
            "bin2_speedup": {
                str(k): self.bin2_speedup(k) for k in self.wire_bin2_rps
            },
            "cores": self.cores,
            "wire_proc_rps": {
                str(k): v for k, v in self.wire_proc_rps.items()
            },
            "wire_proc_p50_ms": {
                str(k): v for k, v in self.wire_proc_p50_ms.items()
            },
            "wire_proc_p99_ms": {
                str(k): v for k, v in self.wire_proc_p99_ms.items()
            },
            "wire_proc_bin2_rps": {
                str(k): v for k, v in self.wire_proc_bin2_rps.items()
            },
            "wire_proc_bin2_p50_ms": {
                str(k): v for k, v in self.wire_proc_bin2_p50_ms.items()
            },
            "wire_proc_bin2_p99_ms": {
                str(k): v for k, v in self.wire_proc_bin2_p99_ms.items()
            },
            "proc_scaling": {
                str(k): self.proc_scaling(k) for k in self.wire_proc_rps
            },
            "proc_bin2_scaling": {
                str(k): self.proc_scaling(k, "bin2")
                for k in self.wire_proc_bin2_rps
            },
        }


def _best_of(repeats: int, run, inner: int = 1) -> float:
    """Best-of-``repeats`` wall clock of ``inner`` back-to-back runs, ms.

    ``inner > 1`` amplifies sub-millisecond workloads above scheduler
    jitter — the overhead guard compares two numbers a few percent
    apart, which is meaningless when each is a single ~1 ms sample.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            run()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0 / inner


def measure_profile(
    profile: ServiceProfile,
    scale: int = 1,
    seed: int = 0,
    repeats: int = 3,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
    proc_worker_counts: tuple[int, ...] = PROC_WORKER_COUNTS,
) -> TableConcurrencyRow:
    """Time one profile's stream through every serving configuration."""
    module = generate_service_module(profile, scale=scale, seed=seed)
    requests = generate_request_stream(module, profile.queries * scale, seed=seed)
    row = TableConcurrencyRow(
        profile=profile.name,
        functions=len(module),
        queries=len(requests),
        shards=BENCH_SHARDS,
        cores=available_cores(),
    )

    serial = LivenessService(module, capacity=len(module))
    sharded = ShardedService(
        module, shards=BENCH_SHARDS, capacity=len(module) + BENCH_SHARDS
    )
    reference = serial.submit(requests)  # warm-up + correctness anchor
    if sharded.submit(requests) != reference:
        raise AssertionError("sharded submit disagrees with the serial service")
    # The overhead guard compares these two, so both are measured with
    # amplified inner loops (several stream passes per sample).
    submit_repeats = max(repeats, 5)
    row.millis["serial_submit"] = _best_of(
        submit_repeats, lambda: serial.submit(requests), inner=5
    )
    row.millis["sharded_submit"] = _best_of(
        submit_repeats, lambda: sharded.submit(requests), inner=5
    )

    # Wire level: the same stream as real bytes through the pool, in
    # both framings.  Both codecs pay the full wire cost — frame decode,
    # dispatch, response encode — through the client's byte session, so
    # the bin2-vs-JSON comparison is apples to apples.
    client = ShardedClient(
        module, shards=BENCH_SHARDS, capacity=len(module) + BENCH_SHARDS
    )
    queries = [
        LivenessQuery(
            function=request.function,
            kind=request.kind,
            variable=request.variable.name,
            block=request.block,
        )
        for request in requests
    ]
    json_frames = [encode_request_json(query) for query in queries]
    interner = StringInterner()  # one connection: names sent once
    bin2_frames = [encode_request_bin2(query, interner) for query in queries]
    # A session's string table is connection state: replaying the interned
    # stream needs a fresh session per run, exactly like a reconnect.
    serve_loop(
        client.dispatch_json,
        json_frames,
        workers=2,
        bytes_session=client.bytes_session(),
    )  # warm-up
    for workers in worker_counts:
        # A fresh Observability per pool size keeps the latency
        # distribution per configuration; all measurement repeats feed
        # one histogram, so the percentiles rest on every sample.
        wire_obs = Observability()
        millis = _best_of(
            repeats,
            lambda w=workers: serve_loop(
                client.dispatch_json,
                json_frames,
                workers=w,
                obs=wire_obs,
                bytes_session=client.bytes_session(),
            ),
        )
        row.millis[f"wire_{workers}w"] = millis
        row.wire_rps[workers] = len(json_frames) / (millis / 1000.0)
        latency = wire_obs.metrics.histogram("wire.request_seconds")
        row.wire_p50_ms[workers] = latency.percentile(50) * 1000.0
        row.wire_p99_ms[workers] = latency.percentile(99) * 1000.0

        bin2_obs = Observability()
        millis = _best_of(
            repeats,
            lambda w=workers: serve_loop(
                client.dispatch_json,
                bin2_frames,
                workers=w,
                obs=bin2_obs,
                bytes_session=client.bytes_session(),
            ),
        )
        row.millis[f"wire_bin2_{workers}w"] = millis
        row.wire_bin2_rps[workers] = len(bin2_frames) / (millis / 1000.0)
        latency = bin2_obs.metrics.histogram("wire.request_seconds")
        row.wire_bin2_p50_ms[workers] = latency.percentile(50) * 1000.0
        row.wire_bin2_p99_ms[workers] = latency.percentile(99) * 1000.0

    # Multi-process serving: the identical byte streams through
    # ``ProcClient.serve`` — worker processes behind pipes, so decode,
    # liveness and encode burn *their* CPUs, not the caller's GIL.  A
    # bin2 frame's string defs are idempotent re-definitions on replay,
    # so one client (one logical connection) serves every repeat and all
    # samples land in one latency histogram, like the thread pools above.
    for workers in proc_worker_counts:
        proc_obs = Observability()
        with ProcClient(
            module,
            workers=workers,
            capacity=len(module) + workers,
            obs=proc_obs,
        ) as proc_client:
            proc_client.serve(json_frames)  # warm-up (page in the workers)
            millis = _best_of(repeats, lambda: proc_client.serve(json_frames))
            row.millis[f"wire_proc_{workers}w"] = millis
            row.wire_proc_rps[workers] = len(json_frames) / (millis / 1000.0)
            latency = proc_obs.metrics.histogram("wire.request_seconds")
            row.wire_proc_p50_ms[workers] = latency.percentile(50) * 1000.0
            row.wire_proc_p99_ms[workers] = latency.percentile(99) * 1000.0

        proc_obs = Observability()
        with ProcClient(
            module,
            workers=workers,
            capacity=len(module) + workers,
            obs=proc_obs,
        ) as proc_client:
            proc_client.serve(bin2_frames)  # warm-up + table priming
            millis = _best_of(repeats, lambda: proc_client.serve(bin2_frames))
            row.millis[f"wire_proc_bin2_{workers}w"] = millis
            row.wire_proc_bin2_rps[workers] = len(bin2_frames) / (
                millis / 1000.0
            )
            latency = proc_obs.metrics.histogram("wire.request_seconds")
            row.wire_proc_bin2_p50_ms[workers] = latency.percentile(50) * 1000.0
            row.wire_proc_bin2_p99_ms[workers] = latency.percentile(99) * 1000.0
    return row


def compute_table_concurrency(
    scale: int = 1,
    seed: int = 0,
    profiles: tuple[ServiceProfile, ...] = CONCURRENCY_PROFILES,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
    proc_worker_counts: tuple[int, ...] = PROC_WORKER_COUNTS,
) -> list[TableConcurrencyRow]:
    return [
        measure_profile(
            profile,
            scale=scale,
            seed=seed,
            worker_counts=worker_counts,
            proc_worker_counts=proc_worker_counts,
        )
        for profile in profiles
    ]


def format_table_concurrency(rows: list[TableConcurrencyRow]) -> str:
    headers = ["Profile", "#Fn", "#Q", "Shards", "serial ms", "sharded ms", "ovh%"]
    worker_counts = sorted(rows[0].wire_rps) if rows else []
    proc_counts = sorted(rows[0].wire_proc_rps) if rows else []
    headers.extend(f"wire {count}w req/s" for count in worker_counts)
    headers.extend(f"bin2 {count}w req/s" for count in worker_counts)
    headers.extend(f"bin2 {count}w x" for count in worker_counts)
    headers.extend(f"{count}w p50/p99 ms" for count in worker_counts)
    headers.extend(f"proc {count}p req/s" for count in proc_counts)
    headers.extend(f"proc bin2 {count}p req/s" for count in proc_counts)
    table_rows = []
    for row in rows:
        cells: list[object] = [
            row.profile,
            row.functions,
            row.queries,
            row.shards,
            row.millis["serial_submit"],
            row.millis["sharded_submit"],
            100.0 * row.sharded_overhead,
        ]
        cells.extend(row.wire_rps[count] for count in worker_counts)
        cells.extend(row.wire_bin2_rps[count] for count in worker_counts)
        cells.extend(row.bin2_speedup(count) for count in worker_counts)
        cells.extend(
            f"{row.wire_p50_ms[count]:.3f}/{row.wire_p99_ms[count]:.3f}"
            for count in worker_counts
        )
        cells.extend(row.wire_proc_rps[count] for count in proc_counts)
        cells.extend(row.wire_proc_bin2_rps[count] for count in proc_counts)
        table_rows.append(cells)
    return format_table(
        headers,
        table_rows,
        title=(
            "Table C — sharded serving: single-thread overhead vs. the serial "
            "service, wire throughput per worker count (JSON vs. bin2), and "
            "multi-process serving per worker-process count"
        ),
    )


def write_report(
    rows: list[TableConcurrencyRow], path: str = DEFAULT_JSON_PATH
) -> str:
    payload = {
        "baseline": "serial_submit",
        "max_sharded_overhead": MAX_SHARDED_OVERHEAD,
        "rows": [row.as_dict() for row in rows],
    }
    return write_json_report(path, "table_concurrency", payload)


def main(argv: list[str] | None = None) -> int:
    scale, smoke, json_path = parse_bench_argv(
        argv if argv is not None else sys.argv[1:], DEFAULT_JSON_PATH
    )
    profiles = SMOKE_PROFILES if smoke else CONCURRENCY_PROFILES
    worker_counts = (1, 2, 4) if smoke else WORKER_COUNTS
    rows = compute_table_concurrency(
        scale=scale, profiles=profiles, worker_counts=worker_counts
    )
    print(format_table_concurrency(rows))
    headline = rows[0]
    print(
        f"\n{headline.profile} profile: sharded submit() costs "
        f"{headline.sharded_overhead:+.1%} over the serial service at "
        f"1 thread (budget {MAX_SHARDED_OVERHEAD:.0%}); JSON wire loop at "
        + ", ".join(
            f"{count}w={rps:,.0f} req/s"
            for count, rps in sorted(headline.wire_rps.items())
        )
        + "; bin2 at "
        + ", ".join(
            f"{count}w={rps:,.0f} req/s ({headline.bin2_speedup(count):.1f}x)"
            for count, rps in sorted(headline.wire_bin2_rps.items())
        )
    )
    print(
        f"multi-process ({headline.cores} core(s) available): JSON at "
        + ", ".join(
            f"{count}p={rps:,.0f} req/s ({headline.proc_scaling(count):.2f}x)"
            for count, rps in sorted(headline.wire_proc_rps.items())
        )
        + "; bin2 at "
        + ", ".join(
            f"{count}p={rps:,.0f} req/s "
            f"({headline.proc_scaling(count, 'bin2'):.2f}x)"
            for count, rps in sorted(headline.wire_proc_bin2_rps.items())
        )
    )
    written = write_report(rows, json_path)
    print(f"json report: {written}")
    if smoke:
        # The GIL-honesty guard: thread-safety must stay ~free for the
        # single-threaded caller.
        failed = [row for row in rows if row.sharded_overhead >= MAX_SHARDED_OVERHEAD]
        if failed:
            for row in failed:
                print(
                    f"FAIL: profile {row.profile!r} pays "
                    f"{row.sharded_overhead:.1%} for sharding at 1 thread, "
                    f"budget is {MAX_SHARDED_OVERHEAD:.0%}"
                )
            return 1
        # The observability guard: every pool size must report sane
        # latency percentiles (present, nonzero, p50 ≤ p99) — for both
        # codecs.
        for row in rows:
            for count in worker_counts:
                for label, p50s, p99s in (
                    ("json", row.wire_p50_ms, row.wire_p99_ms),
                    ("bin2", row.wire_bin2_p50_ms, row.wire_bin2_p99_ms),
                ):
                    p50 = p50s.get(count, 0.0)
                    p99 = p99s.get(count, 0.0)
                    if not (0.0 < p50 <= p99):
                        print(
                            f"FAIL: profile {row.profile!r} ({label}) at "
                            f"{count}w has implausible latency percentiles "
                            f"p50={p50} p99={p99}"
                        )
                        return 1
        # The codec guard: the binary framing must actually be faster
        # on the wire than JSON text at every measured pool size.  (The
        # full profiles show ~4x; smoke only asserts direction to stay
        # robust against CI jitter.)
        for row in rows:
            for count in worker_counts:
                speedup = row.bin2_speedup(count)
                if speedup <= 1.0:
                    print(
                        f"FAIL: profile {row.profile!r} at {count}w: bin2 "
                        f"wire loop is not faster than JSON "
                        f"(speedup {speedup:.2f}x)"
                    )
                    return 1
        # The multi-process guards.  Percentile sanity is unconditional;
        # the ≥2x scaling floor needs enough cores for 4 workers to run
        # in parallel (a 1-core container records honest flat numbers —
        # asserting a speed-up the hardware cannot produce would only
        # teach the suite to ignore red).
        for row in rows:
            for label, rpss, p50s, p99s in (
                ("json", row.wire_proc_rps, row.wire_proc_p50_ms, row.wire_proc_p99_ms),
                (
                    "bin2",
                    row.wire_proc_bin2_rps,
                    row.wire_proc_bin2_p50_ms,
                    row.wire_proc_bin2_p99_ms,
                ),
            ):
                for count in rpss:
                    p50, p99 = p50s.get(count, 0.0), p99s.get(count, 0.0)
                    if not (0.0 < p50 <= p99):
                        print(
                            f"FAIL: profile {row.profile!r} (proc {label}) at "
                            f"{count}p has implausible latency percentiles "
                            f"p50={p50} p99={p99}"
                        )
                        return 1
                # No-collapse floor: whatever the core count, adding
                # worker processes must never crater throughput.
                fastest = max(rpss.values())
                slowest = min(rpss.values())
                if slowest <= 0.25 * fastest:
                    print(
                        f"FAIL: profile {row.profile!r} (proc {label}): "
                        f"throughput collapses across process counts "
                        f"({slowest:,.0f} vs {fastest:,.0f} req/s)"
                    )
                    return 1
                if row.cores >= PROC_SCALING_MIN_CORES and 4 in rpss:
                    scaling = row.proc_scaling(4, label)
                    if scaling < PROC_SCALING_FLOOR:
                        print(
                            f"FAIL: profile {row.profile!r} (proc {label}): "
                            f"4 workers deliver only {scaling:.2f}x the "
                            f"single-process figure on {row.cores} cores "
                            f"(floor {PROC_SCALING_FLOOR:.1f}x)"
                        )
                        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
