"""Table R — end-to-end register-allocation time per liveness backend.

The paper's tables measure the liveness *engines* under a recorded query
stream; this table measures a whole client: the allocator of
:mod:`repro.regalloc` run to completion — pressure, iterative spilling,
chordal coloring — with only the liveness backend swapped out:

* ``fast`` — :class:`~repro.core.FastLivenessChecker` with the batch
  engine; spill edits only rebuild def–use chains;
* ``mask`` — the same checker behind the accelerated
  :mod:`~repro.core.maskengine` batch backend (vectorised row kernels);
* ``sets`` — the same checker forced onto the readable Algorithm-1/2
  set path, no bitsets, no batching (how much the engineering buys);
* ``dataflow`` — the conventional baseline, which must recompute its
  whole fixpoint after every spill rewrite (a fresh
  :class:`~repro.liveness.DataflowLiveness` per round).

On the smallest profile the precomputed sets win — few edits, cheap
fixpoint — which is the same break-even the paper reports for tiny
procedures.  As functions grow and the spiller iterates, the checker's
``R``/``T`` reuse takes over and the ``fast`` backend pulls ahead; the
``large`` profile is the headline number.

Run directly with ``python -m repro.bench.table_regalloc [scale]``
(``scale`` multiplies the per-profile function counts); ``--smoke``
selects one tiny profile for CI, ``--json PATH`` overrides where the
machine-readable report (default ``BENCH_regalloc.json``) is written.
"""

from __future__ import annotations

import copy
import random
import sys
import time
from dataclasses import dataclass, field

import repro.core.maskengine  # noqa: F401  (pay numpy's import outside the timed region)
from repro.api.registry import DATAFLOW, FAST, MASK, SETS
from repro.bench.reporting import format_table, parse_bench_argv, write_json_report
from repro.ir.function import Function
from repro.regalloc.allocator import allocate
from repro.synth.spec_profiles import generate_function_with_blocks

#: Backend names in reporting order; ``dataflow`` is the speed-up baseline.
BACKEND_ORDER = (FAST, MASK, SETS, DATAFLOW)


@dataclass(frozen=True)
class RegallocProfile:
    """One synthetic workload tier."""

    name: str
    #: Number of functions generated (before the harness scale factor).
    functions: int
    #: Target block count per function (spec-profile shaped generator).
    target_blocks: int
    #: Register budget handed to the allocator (chosen to force spilling).
    num_registers: int


REGALLOC_PROFILES: tuple[RegallocProfile, ...] = (
    RegallocProfile("small", functions=6, target_blocks=10, num_registers=4),
    RegallocProfile("medium", functions=4, target_blocks=30, num_registers=6),
    RegallocProfile("large", functions=3, target_blocks=70, num_registers=8),
)

#: The tiny profile CI smoke-runs to catch bench-driver regressions fast.
SMOKE_PROFILES: tuple[RegallocProfile, ...] = (
    RegallocProfile("smoke", functions=2, target_blocks=8, num_registers=4),
)

#: Default output path of the machine-readable report.
DEFAULT_JSON_PATH = "BENCH_regalloc.json"


@dataclass
class TableRegallocRow:
    """Measured allocation cost of one profile, per backend."""

    profile: str
    functions: int
    blocks: int
    variables: int
    spills: int
    registers: int
    #: Total allocation wall-clock per backend, milliseconds.
    millis: dict[str, float] = field(default_factory=dict)

    def speedup(self, backend: str, baseline: str = DATAFLOW) -> float:
        """How many times faster ``backend`` is than ``baseline``."""
        if not self.millis.get(backend):
            return 0.0
        return self.millis[baseline] / self.millis[backend]

    def as_dict(self) -> dict:
        """JSON-ready view, including the derived speed-ups."""
        return {
            "profile": self.profile,
            "functions": self.functions,
            "blocks": self.blocks,
            "variables": self.variables,
            "spills": self.spills,
            "registers": self.registers,
            "millis": dict(self.millis),
            "speedup_vs_dataflow": {
                backend: self.speedup(backend)
                for backend in self.millis
                if backend != DATAFLOW
            },
        }


def generate_profile_functions(
    profile: RegallocProfile, scale: int = 1, seed: int = 0
) -> list[Function]:
    """The workload of one profile: spec-shaped structured SSA functions."""
    # str.hash is randomised per process; derive a stable per-profile offset.
    rng = random.Random(seed * 7919 + sum(map(ord, profile.name)))
    return [
        generate_function_with_blocks(
            rng, target_blocks=profile.target_blocks, name=f"{profile.name}_{index}"
        )
        for index in range(profile.functions * scale)
    ]


def measure_profile(
    profile: RegallocProfile,
    functions: list[Function],
    backends: tuple[str, ...] = BACKEND_ORDER,
) -> TableRegallocRow:
    """Allocate every function once per backend, timing the whole pipeline.

    Each backend gets its own deep copy of each function (allocation
    mutates: edge splitting and spill code), so the backends see
    identical inputs.
    """
    row = TableRegallocRow(
        profile=profile.name,
        functions=len(functions),
        blocks=sum(len(function.blocks) for function in functions),
        variables=sum(len(function.variables()) for function in functions),
        spills=0,
        registers=0,
    )
    for backend in backends:
        total = 0.0
        spills = 0
        registers = 0
        for function in functions:
            scratch = copy.deepcopy(function)
            start = time.perf_counter()
            allocation = allocate(
                scratch, num_registers=profile.num_registers, backend=backend
            )
            total += time.perf_counter() - start
            spills += len(allocation.spilled)
            registers = max(registers, allocation.registers_used)
        row.millis[backend] = total * 1000.0
        # All backends answer the same queries, so the spill/register
        # figures coincide; keep the last measured pair.
        row.spills = spills
        row.registers = registers
    return row


def compute_table_regalloc(
    scale: int = 1,
    seed: int = 0,
    profiles: tuple[RegallocProfile, ...] = REGALLOC_PROFILES,
    backends: tuple[str, ...] = BACKEND_ORDER,
) -> list[TableRegallocRow]:
    """Measure every profile with every backend."""
    rows = []
    for profile in profiles:
        functions = generate_profile_functions(profile, scale=scale, seed=seed)
        rows.append(measure_profile(profile, functions, backends))
    return rows


def format_table_regalloc(rows: list[TableRegallocRow]) -> str:
    """Render the per-backend wall-clock comparison."""
    backends = [
        backend for backend in BACKEND_ORDER if backend in (rows[0].millis if rows else {})
    ]
    headers = ["Profile", "#Fn", "#Blocks", "#Vars", "Spills", "Regs"]
    for backend in backends:
        headers.append(f"{backend} ms")
    for backend in backends:
        if backend != DATAFLOW:
            headers.append(f"{backend}/df")
    table_rows = []
    for row in rows:
        cells: list[object] = [
            row.profile,
            row.functions,
            row.blocks,
            row.variables,
            row.spills,
            row.registers,
        ]
        cells.extend(row.millis[backend] for backend in backends)
        cells.extend(
            row.speedup(backend) for backend in backends if backend != DATAFLOW
        )
        table_rows.append(cells)
    return format_table(
        headers,
        table_rows,
        title=(
            "Table R — allocator wall-clock per liveness backend "
            "(x/df: speed-up over the recompute-full-dataflow baseline)"
        ),
    )


def write_report(rows: list[TableRegallocRow], path: str = DEFAULT_JSON_PATH) -> str:
    """Emit the machine-readable ``BENCH_regalloc.json`` report."""
    return write_json_report(
        path,
        "table_regalloc",
        {
            "baseline": DATAFLOW,
            "rows": [row.as_dict() for row in rows],
        },
    )


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    scale, smoke, json_path = parse_bench_argv(
        argv if argv is not None else sys.argv[1:], DEFAULT_JSON_PATH
    )
    profiles = SMOKE_PROFILES if smoke else REGALLOC_PROFILES
    rows = compute_table_regalloc(scale=scale, profiles=profiles)
    print(format_table_regalloc(rows))
    large = next((row for row in rows if row.profile == "large"), None)
    if large is not None:
        print(
            f"\nlarge profile: fast backend is {large.speedup(FAST):.2f}x the "
            "recompute-full-dataflow baseline"
        )
    written = write_report(rows, json_path)
    print(f"json report: {written}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
