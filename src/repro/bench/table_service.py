"""Table S — multi-function serving: cached service vs. per-query rebuild.

The paper's tables measure one function at a time; this table measures the
multi-function front door (:class:`repro.service.LivenessService`) under a
mixed workload: a module of many spec-profile-shaped functions and a
random interleaved stream of live-in/live-out requests across all of them.

Three ways of answering the same stream are timed:

* ``service`` — one :class:`LivenessService` with capacity for every
  function: each checker is built once on first touch and every later
  request hits the cache (the intended serving configuration);
* ``service_mask`` — the same full-capacity service answering through
  the fifth engine (``engine="mask"``: the accelerated
  :mod:`~repro.core.maskengine` batch backend);
* ``service_lru`` — the same service squeezed to a quarter of the module,
  so the LRU policy matters and the hit rate is what the cache geometry
  allows (the memory-bounded configuration);
* ``rebuild`` — a fresh :class:`~repro.core.FastLivenessChecker` built for
  *every request*, which is what "no serving layer" degenerates to when
  queries about many functions interleave and nothing is retained.

The ``rebuild`` column pays one full DFS + dominance + ``R``/``T``
precomputation per query; the ``service`` column pays it once per function
and then rides the cached query plans.  The gap is the constant-factor
argument of the paper, compounded across a module.

Run directly with ``python -m repro.bench.table_service [scale]``;
``--smoke`` selects the tiny CI profile, ``--json PATH`` overrides where
the machine-readable report (default ``BENCH_service.json``) is written.
"""

from __future__ import annotations

import random
import sys
import time
from dataclasses import dataclass, field

from repro.bench.reporting import format_table, parse_bench_argv, write_json_report
from repro.core.live_checker import FastLivenessChecker
from repro.ir.function import Function
from repro.ir.module import Module
from repro.service import LivenessRequest, LivenessService
from repro.synth.spec_profiles import generate_function_with_blocks

#: Mode names in reporting order; ``rebuild`` is the speed-up baseline.
MODE_ORDER = ("service", "service_mask", "service_lru", "rebuild")

#: Default output path of the machine-readable report.
DEFAULT_JSON_PATH = "BENCH_service.json"


@dataclass(frozen=True)
class ServiceProfile:
    """One synthetic multi-function workload tier."""

    name: str
    #: Number of functions in the module (before the harness scale factor).
    functions: int
    #: Target block count per function (spec-profile shaped generator).
    target_blocks: int
    #: Number of requests in the mixed stream.
    queries: int


SERVICE_PROFILES: tuple[ServiceProfile, ...] = (
    ServiceProfile("mixed", functions=60, target_blocks=12, queries=2000),
    ServiceProfile("wide", functions=120, target_blocks=8, queries=3000),
)

#: The tiny profile CI smoke-runs (still ≥ 50 functions, so the headline
#: speed-up criterion is measured even in the cheap configuration).
SMOKE_PROFILES: tuple[ServiceProfile, ...] = (
    ServiceProfile("smoke", functions=50, target_blocks=6, queries=400),
)


@dataclass
class TableServiceRow:
    """Measured serving cost of one profile, per mode."""

    profile: str
    functions: int
    blocks: int
    variables: int
    queries: int
    #: Total wall-clock per mode, milliseconds.
    millis: dict[str, float] = field(default_factory=dict)
    #: Cache hit rate per service mode (absent for ``rebuild``).
    hit_rate: dict[str, float] = field(default_factory=dict)

    def speedup(self, mode: str, baseline: str = "rebuild") -> float:
        """How many times faster ``mode`` is than ``baseline``."""
        if not self.millis.get(mode):
            return 0.0
        return self.millis[baseline] / self.millis[mode]

    def as_dict(self) -> dict:
        """JSON-ready view, including the derived speed-ups."""
        return {
            "profile": self.profile,
            "functions": self.functions,
            "blocks": self.blocks,
            "variables": self.variables,
            "queries": self.queries,
            "millis": dict(self.millis),
            "hit_rate": dict(self.hit_rate),
            "speedup_vs_rebuild": {
                mode: self.speedup(mode)
                for mode in self.millis
                if mode != "rebuild"
            },
        }


def generate_service_module(
    profile: ServiceProfile, scale: int = 1, seed: int = 0
) -> Module:
    """A module of spec-shaped functions for one profile."""
    rng = random.Random(seed * 6271 + sum(map(ord, profile.name)))
    module = Module(f"service_{profile.name}")
    for index in range(profile.functions * scale):
        module.add_function(
            generate_function_with_blocks(
                rng,
                target_blocks=profile.target_blocks,
                name=f"{profile.name}_{index}",
            )
        )
    return module


def generate_request_stream(
    module: Module, queries: int, seed: int = 0
) -> list[LivenessRequest]:
    """A uniform random mixed stream over every function of the module."""
    rng = random.Random(seed * 104729 + len(module))
    functions = list(module)
    candidates: list[tuple[Function, list, list]] = []
    for function in functions:
        variables = function.variables()
        blocks = [block.name for block in function]
        if variables and blocks:
            candidates.append((function, variables, blocks))
    if not candidates:
        raise ValueError("module has no queryable function")
    stream = []
    for _ in range(queries):
        function, variables, blocks = rng.choice(candidates)
        stream.append(
            LivenessRequest(
                function=function.name,
                kind=rng.choice(("in", "out")),
                variable=rng.choice(variables),
                block=rng.choice(blocks),
            )
        )
    return stream


def _answer_by_rebuilding(
    module: Module, requests: list[LivenessRequest]
) -> list[bool]:
    """The no-serving-layer baseline: a fresh checker per request."""
    answers = []
    for request in requests:
        checker = FastLivenessChecker(module.function(request.function))
        if request.kind == "in":
            answers.append(checker.is_live_in(request.variable, request.block))
        else:
            answers.append(checker.is_live_out(request.variable, request.block))
    return answers


def measure_profile(
    profile: ServiceProfile,
    module: Module,
    requests: list[LivenessRequest],
    modes: tuple[str, ...] = MODE_ORDER,
) -> TableServiceRow:
    """Answer the same request stream once per mode, timing each."""
    row = TableServiceRow(
        profile=profile.name,
        functions=len(module),
        blocks=sum(len(function.blocks) for function in module),
        variables=sum(len(function.variables()) for function in module),
        queries=len(requests),
    )
    reference: list[bool] | None = None
    for mode in modes:
        if mode == "rebuild":
            start = time.perf_counter()
            answers = _answer_by_rebuilding(module, requests)
            row.millis[mode] = (time.perf_counter() - start) * 1000.0
        else:
            capacity = (
                max(1, len(module) // 4)
                if mode == "service_lru"
                else len(module)
            )
            engine = "mask" if mode == "service_mask" else "fast"
            service = LivenessService(module, capacity=capacity, engine=engine)
            start = time.perf_counter()
            answers = service.submit(requests)
            row.millis[mode] = (time.perf_counter() - start) * 1000.0
            row.hit_rate[mode] = service.stats.hit_rate
        if reference is None:
            reference = answers
        elif answers != reference:
            raise AssertionError(
                f"mode {mode!r} disagrees with {modes[0]!r} on profile "
                f"{profile.name!r}"
            )
    return row


def compute_table_service(
    scale: int = 1,
    seed: int = 0,
    profiles: tuple[ServiceProfile, ...] = SERVICE_PROFILES,
    modes: tuple[str, ...] = MODE_ORDER,
) -> list[TableServiceRow]:
    """Measure every profile with every mode."""
    rows = []
    for profile in profiles:
        module = generate_service_module(profile, scale=scale, seed=seed)
        requests = generate_request_stream(
            module, profile.queries * scale, seed=seed
        )
        rows.append(measure_profile(profile, module, requests, modes))
    return rows


def format_table_service(rows: list[TableServiceRow]) -> str:
    """Render the per-mode wall-clock comparison."""
    modes = [
        mode for mode in MODE_ORDER if mode in (rows[0].millis if rows else {})
    ]
    headers = ["Profile", "#Fn", "#Blocks", "#Vars", "#Q"]
    for mode in modes:
        headers.append(f"{mode} ms")
    for mode in modes:
        if mode != "rebuild":
            headers.append(f"{mode} hit%")
    for mode in modes:
        if mode != "rebuild":
            headers.append(f"rb/{mode}")
    table_rows = []
    for row in rows:
        cells: list[object] = [
            row.profile,
            row.functions,
            row.blocks,
            row.variables,
            row.queries,
        ]
        cells.extend(row.millis[mode] for mode in modes)
        cells.extend(
            100.0 * row.hit_rate.get(mode, 0.0)
            for mode in modes
            if mode != "rebuild"
        )
        cells.extend(
            row.speedup(mode) for mode in modes if mode != "rebuild"
        )
        table_rows.append(cells)
    return format_table(
        headers,
        table_rows,
        title=(
            "Table S — multi-function serving wall-clock per mode "
            "(rb/x: speed-up over rebuilding a checker per query)"
        ),
    )


@dataclass
class DispatchOverhead:
    """Measured cost of the ``CompilerClient.dispatch`` protocol layer."""

    #: Best-of-N wall-clock of ``LivenessService.submit`` (milliseconds).
    submit_millis: float
    #: Best-of-N wall-clock of the same stream through ``dispatch``.
    dispatch_millis: float

    @property
    def overhead(self) -> float:
        """Fractional overhead of dispatch over direct submit (0.05 = 5%)."""
        if not self.submit_millis:
            return 0.0
        return self.dispatch_millis / self.submit_millis - 1.0

    def as_dict(self) -> dict:
        return {
            "submit_millis": self.submit_millis,
            "dispatch_millis": self.dispatch_millis,
            "overhead": self.overhead,
        }


#: Bench guard: the protocol layer may cost at most this fraction on top
#: of calling ``LivenessService.submit`` directly.
MAX_DISPATCH_OVERHEAD = 0.10


def measure_dispatch_overhead(
    module: Module, requests: list[LivenessRequest], repeats: int = 5
) -> DispatchOverhead:
    """Time the same mixed stream through ``submit`` and ``dispatch``.

    The protocol mirror of the stream addresses functions through
    unversioned handles and variables by name — exactly what a wire
    client would send.  Both sides get one warm-up pass (so checker
    construction and name-map building are excluded, as in the steady
    serving state) and the best of ``repeats`` timed passes is kept.
    """
    from repro.api.client import CompilerClient
    from repro.api.protocol import BatchLiveness, LivenessQuery

    service = LivenessService(module, capacity=len(module))
    client = CompilerClient(module, capacity=len(module))
    batch = BatchLiveness(
        queries=tuple(
            LivenessQuery(
                function=request.function,
                kind=request.kind,
                variable=request.variable.name,
                block=request.block,
            )
            for request in requests
        )
    )
    direct = service.submit(requests)
    response = client.dispatch(batch)
    if response.error is not None:
        raise AssertionError(f"dispatch failed: {response.error}")
    if list(response.values) != direct:
        raise AssertionError("dispatch() and submit() disagree on the stream")
    submit_best = dispatch_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        service.submit(requests)
        submit_best = min(submit_best, time.perf_counter() - start)
        start = time.perf_counter()
        client.dispatch(batch)
        dispatch_best = min(dispatch_best, time.perf_counter() - start)
    return DispatchOverhead(
        submit_millis=submit_best * 1000.0,
        dispatch_millis=dispatch_best * 1000.0,
    )


def write_report(
    rows: list[TableServiceRow],
    path: str = DEFAULT_JSON_PATH,
    dispatch_overhead: DispatchOverhead | None = None,
) -> str:
    """Emit the machine-readable ``BENCH_service.json`` report."""
    payload = {
        "baseline": "rebuild",
        "rows": [row.as_dict() for row in rows],
    }
    if dispatch_overhead is not None:
        payload["dispatch_overhead"] = dispatch_overhead.as_dict()
    return write_json_report(path, "table_service", payload)


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    scale, smoke, json_path = parse_bench_argv(
        argv if argv is not None else sys.argv[1:], DEFAULT_JSON_PATH
    )
    profiles = SMOKE_PROFILES if smoke else SERVICE_PROFILES
    rows = compute_table_service(scale=scale, profiles=profiles)
    print(format_table_service(rows))
    headline = rows[0]
    print(
        f"\n{headline.profile} profile: cached service is "
        f"{headline.speedup('service'):.1f}x per-query checker reconstruction "
        f"over {headline.functions} functions"
    )
    overhead = None
    if smoke:
        # Bench guard: the typed protocol layer must stay thin.  The same
        # mixed stream is answered through CompilerClient.dispatch() and
        # through LivenessService.submit() directly; more than
        # MAX_DISPATCH_OVERHEAD between them fails the smoke run.
        profile = profiles[0]
        module = generate_service_module(profile, scale=scale)
        requests = generate_request_stream(module, profile.queries * scale)
        overhead = measure_dispatch_overhead(module, requests)
        print(
            f"dispatch layer: submit {overhead.submit_millis:.1f} ms, "
            f"dispatch {overhead.dispatch_millis:.1f} ms "
            f"({overhead.overhead:+.1%} overhead)"
        )
        if overhead.overhead >= MAX_DISPATCH_OVERHEAD:
            print(
                f"FAIL: dispatch() adds {overhead.overhead:.1%} over "
                f"submit(), budget is {MAX_DISPATCH_OVERHEAD:.0%}"
            )
            return 1
    written = write_report(rows, json_path, dispatch_overhead=overhead)
    print(f"json report: {written}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
