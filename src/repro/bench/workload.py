"""Shared benchmark workloads.

A :class:`BenchmarkWorkload` holds, for one SPEC profile, the generated
SSA-form procedures together with per-procedure artefacts every table
needs: def–use chains, the φ-related variable subset and the liveness query
stream recorded from one SSA-destruction run.  Recording the stream once
and replaying it against each engine keeps the comparison apples-to-apples
— exactly the same queries hit both the native and the new implementation,
as in the paper's measurement setup.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.core import FastLivenessChecker
from repro.ir.function import Function
from repro.ir.value import Variable
from repro.liveness.oracle import LivenessOracle
from repro.ssa.defuse import DefUseChains
from repro.ssadestruct.pipeline import destruct, phi_related_variables
from repro.synth.spec_profiles import BenchmarkProfile, generate_benchmark_functions


class RecordingOracle(LivenessOracle):
    """Wraps an oracle and records every query for later replay."""

    def __init__(self, inner: LivenessOracle) -> None:
        self.inner = inner
        #: (kind, variable, block) triples in issue order.
        self.queries: list[tuple[str, Variable, str]] = []

    def prepare(self) -> None:
        self.inner.prepare()

    def is_live_in(self, var: Variable, block: str) -> bool:
        self.queries.append(("in", var, block))
        return self.inner.is_live_in(var, block)

    def is_live_out(self, var: Variable, block: str) -> bool:
        self.queries.append(("out", var, block))
        return self.inner.is_live_out(var, block)

    def live_variables(self) -> list[Variable]:
        return self.inner.live_variables()


@dataclass
class ProcedureWorkload:
    """One procedure plus the artefacts the benchmarks replay."""

    function: Function
    defuse: DefUseChains
    phi_related: list[Variable]
    #: Recorded (kind, variable, block) liveness queries from SSA destruction.
    queries: list[tuple[str, Variable, str]]

    @property
    def num_blocks(self) -> int:
        return len(self.function.blocks)


@dataclass
class BenchmarkWorkload:
    """All procedures generated for one benchmark profile."""

    profile: BenchmarkProfile
    scale: int
    procedures: list[ProcedureWorkload] = field(default_factory=list)

    @property
    def total_queries(self) -> int:
        return sum(len(proc.queries) for proc in self.procedures)

    @property
    def total_blocks(self) -> int:
        return sum(proc.num_blocks for proc in self.procedures)


def build_workload(
    profile: BenchmarkProfile, scale: int, seed: int = 0
) -> BenchmarkWorkload:
    """Generate ``scale`` procedures for ``profile`` and record query streams.

    SSA destruction is run on a *copy* of each function (it mutates its
    input), so the workload keeps the original SSA form for the engines to
    analyse, exactly like the paper measures the destruction pass's queries
    without keeping its output around.
    """
    workload = BenchmarkWorkload(profile=profile, scale=scale)
    for function in generate_benchmark_functions(profile, scale=scale, seed=seed):
        # Split critical edges up front so the recorded query stream refers
        # to block names that exist in the retained (SSA) function as well.
        function.split_critical_edges()
        scratch = copy.deepcopy(function)
        recorder = RecordingOracle(FastLivenessChecker(scratch))
        destruct(scratch, oracle_factory=lambda fn: recorder)
        # The recorded queries reference the scratch copy's variables (the
        # isolation stage's fresh φ resources are filtered below); remap
        # them onto the original function by (unique) name.
        by_name = {var.name: var for var in function.variables()}
        queries = [
            (kind, by_name[var.name], block)
            for kind, var, block in recorder.queries
            if var.name in by_name
        ]
        workload.procedures.append(
            ProcedureWorkload(
                function=function,
                defuse=DefUseChains(function),
                phi_related=phi_related_variables(function),
                queries=queries,
            )
        )
    return workload
