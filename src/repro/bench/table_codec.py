"""Table D — wire codec microbench: bin2 vs. JSON, per message type.

Two questions about :mod:`repro.api.codec`, answered without a service
behind the wire (pure encode/decode, no dispatch):

* **size** — how many bytes does each protocol message cost in compact
  JSON text vs. the ``bin2`` binary framing?  The guard asserts bin2 is
  strictly smaller for *every* message type — if a protocol change ever
  makes the binary framing lose to text, the smoke run fails loudly.
* **speed** — what do encode and decode cost per message, per codec?
  These are the per-request constants that bound the wire loop in
  Table C (``BENCH_concurrency.json``).

A third mini-table isolates **name interning**: the same request
re-encoded over one connection's :class:`~repro.api.codec.StringInterner`
shrinks to ref-only frames; the report records the first-frame size
(definitions included) against the steady-state repeat size.

Run directly with ``python -m repro.bench.table_codec [scale]``;
``--smoke`` selects short timing loops **and enforces the size guard**,
``--json PATH`` overrides where the machine-readable report (default
``BENCH_codec.json``) is written.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

from repro.api.codec import (
    StringInterner,
    StringTable,
    decode_request_bin2,
    decode_request_json,
    decode_response_bin2,
    decode_response_json,
    encode_request_bin2,
    encode_request_json,
    encode_response_bin2,
    encode_response_json,
)
from repro.api.errors import ApiError, ErrorCode
from repro.api.handles import FunctionHandle
from repro.api.protocol import (
    AllocateRequest,
    AllocateResponse,
    AllocationSummary,
    BatchLiveness,
    BatchLivenessResponse,
    CompileSourceRequest,
    CompileSourceResponse,
    DestructRequest,
    DestructResponse,
    DestructStats,
    ErrorResponse,
    EvictRequest,
    EvictResponse,
    LivenessQuery,
    LivenessResponse,
    LiveSetRequest,
    LiveSetResponse,
    NotifyRequest,
    NotifyResponse,
    StatsRequest,
    StatsResponse,
)
from repro.bench.reporting import format_table, parse_bench_argv, write_json_report

#: Default output path of the machine-readable report.
DEFAULT_JSON_PATH = "BENCH_codec.json"

_HANDLE = FunctionHandle("hot_loop_kernel", 7)
_QUERY = LivenessQuery(function=_HANDLE, kind="in", variable="acc", block="body3")

#: One representative instance per protocol message type, realistic
#: field sizes (the corpus the size guard quantifies over).
SAMPLE_MESSAGES: tuple[tuple[str, str, object], ...] = (
    ("liveness_query", "request", _QUERY),
    (
        "batch_liveness",
        "request",
        BatchLiveness(
            queries=tuple(
                LivenessQuery(_HANDLE, kind, variable, block)
                for kind in ("in", "out")
                for variable in ("acc", "idx")
                for block in ("entry", "body3", "exit")
            )
        ),
    ),
    (
        "live_set_request",
        "request",
        LiveSetRequest(function=_HANDLE, block="body3", kind="out"),
    ),
    (
        "destruct_request",
        "request",
        DestructRequest(function=_HANDLE, engine="fast", verify=True),
    ),
    (
        "allocate_request",
        "request",
        AllocateRequest(function=_HANDLE, num_registers=8, engine="fast"),
    ),
    ("notify_request", "request", NotifyRequest(function=_HANDLE, kind="cfg")),
    ("evict_request", "request", EvictRequest(function=_HANDLE)),
    (
        "compile_source",
        "request",
        CompileSourceRequest(
            source="func f(a, b) { c = a + b; return c; }",
            module_name="bench",
        ),
    ),
    ("stats_request", "request", StatsRequest(reset=False)),
    ("liveness_response", "response", LivenessResponse(value=True)),
    (
        "batch_liveness_response",
        "response",
        BatchLivenessResponse(values=[bool(i % 3) for i in range(24)]),
    ),
    (
        "live_set_response",
        "response",
        LiveSetResponse(variables=("acc", "idx", "limit", "tmp0")),
    ),
    (
        "destruct_response",
        "response",
        DestructResponse(
            function=_HANDLE,
            stats=DestructStats(
                engine="fast",
                critical_edges_split=3,
                phis_isolated=5,
                parallel_copies=4,
                pairs_inserted=12,
                pairs_coalesced=9,
                classes_merged=6,
                interference_tests=148,
                liveness_queries=96,
                copies_emitted=7,
                temps_inserted=2,
                phis_removed=5,
            ),
        ),
    ),
    (
        "allocate_response",
        "response",
        AllocateResponse(
            function=_HANDLE,
            allocation=AllocationSummary(
                registers={"acc": 0, "idx": 1, "limit": 2},
                spill_slots={"tmp0": 0},
                registers_used=3,
                max_live=4,
                max_live_before_spill=5,
                spilled=("tmp0",),
                reconstructed_ssa=True,
            ),
        ),
    ),
    ("notify_response", "response", NotifyResponse(function=_HANDLE)),
    ("evict_response", "response", EvictResponse(function=_HANDLE)),
    (
        "compile_source_response",
        "response",
        CompileSourceResponse(
            functions=(FunctionHandle("f", 0), FunctionHandle("g", 0))
        ),
    ),
    (
        "stats_response",
        "response",
        StatsResponse(
            snapshot={"counters": {"wire.bytes_in{codec=bin2}": 4096}},
            stats={"queries": 512, "hits": 498, "hit_rate": 0.97},
        ),
    ),
    (
        "error_response",
        "response",
        ErrorResponse(
            error=ApiError(ErrorCode.UNKNOWN_FUNCTION, "no function 'gone'")
        ),
    ),
)


@dataclass
class TableCodecRow:
    """One message type's size and per-op cost in both codecs."""

    message: str
    kind: str
    json_bytes: int
    bin2_bytes: int
    json_encode_us: float
    bin2_encode_us: float
    json_decode_us: float
    bin2_decode_us: float

    @property
    def size_ratio(self) -> float:
        """bin2 size as a fraction of the JSON text size."""
        return self.bin2_bytes / self.json_bytes

    def as_dict(self) -> dict:
        return {
            "message": self.message,
            "kind": self.kind,
            "json_bytes": self.json_bytes,
            "bin2_bytes": self.bin2_bytes,
            "size_ratio": self.size_ratio,
            "json_encode_us": self.json_encode_us,
            "bin2_encode_us": self.bin2_encode_us,
            "json_decode_us": self.json_decode_us,
            "bin2_decode_us": self.bin2_decode_us,
        }


def _best_us(repeats: int, number: int, run) -> float:
    """Best-of-``repeats`` mean microseconds over ``number`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            run()
        best = min(best, time.perf_counter() - start)
    return best * 1e6 / number


def measure_message(
    name: str, kind: str, message, repeats: int = 5, number: int = 2000
) -> TableCodecRow:
    """Size and per-op encode/decode cost of one message, both codecs."""
    if kind == "request":
        enc_json, dec_json = encode_request_json, decode_request_json
        enc_bin2, dec_bin2 = encode_request_bin2, decode_request_bin2
    else:
        enc_json, dec_json = encode_response_json, decode_response_json
        enc_bin2, dec_bin2 = encode_response_bin2, decode_response_bin2
    json_frame = enc_json(message)
    bin2_frame = enc_bin2(message)
    if dec_json(json_frame) != message or dec_bin2(bin2_frame) != message:
        raise AssertionError(f"codec roundtrip mismatch for {name}")
    return TableCodecRow(
        message=name,
        kind=kind,
        json_bytes=len(json_frame),
        bin2_bytes=len(bin2_frame),
        json_encode_us=_best_us(repeats, number, lambda: enc_json(message)),
        bin2_encode_us=_best_us(repeats, number, lambda: enc_bin2(message)),
        json_decode_us=_best_us(repeats, number, lambda: dec_json(json_frame)),
        bin2_decode_us=_best_us(repeats, number, lambda: dec_bin2(bin2_frame)),
    )


def measure_interning(stream_len: int = 64) -> dict:
    """First-frame vs. steady-state size of a repeated interned query."""
    interner = StringInterner()
    table = StringTable()
    sizes = []
    for _ in range(stream_len):
        frame = encode_request_bin2(_QUERY, interner)
        if decode_request_bin2(frame, table) != _QUERY:
            raise AssertionError("interned stream roundtrip mismatch")
        sizes.append(len(frame))
    return {
        "stream_len": stream_len,
        "self_contained_bytes": len(encode_request_bin2(_QUERY)),
        "first_frame_bytes": sizes[0],
        "steady_state_bytes": sizes[-1],
        "json_bytes": len(encode_request_json(_QUERY)),
    }


def compute_table_codec(
    scale: int = 1, repeats: int = 5, number: int = 2000
) -> list[TableCodecRow]:
    number = max(100, number * scale)
    return [
        measure_message(name, kind, message, repeats=repeats, number=number)
        for name, kind, message in SAMPLE_MESSAGES
    ]


def format_table_codec(rows: list[TableCodecRow]) -> str:
    headers = [
        "Message",
        "JSON B",
        "bin2 B",
        "ratio",
        "enc js us",
        "enc b2 us",
        "dec js us",
        "dec b2 us",
    ]
    table_rows = [
        [
            row.message,
            row.json_bytes,
            row.bin2_bytes,
            row.size_ratio,
            row.json_encode_us,
            row.bin2_encode_us,
            row.json_decode_us,
            row.bin2_decode_us,
        ]
        for row in rows
    ]
    return format_table(
        headers,
        table_rows,
        title="Table D — wire codec: frame size and per-op cost, bin2 vs. JSON",
    )


def write_report(
    rows: list[TableCodecRow],
    interning: dict,
    path: str = DEFAULT_JSON_PATH,
) -> str:
    payload = {
        "rows": [row.as_dict() for row in rows],
        "interning": interning,
    }
    return write_json_report(path, "table_codec", payload)


def main(argv: list[str] | None = None) -> int:
    scale, smoke, json_path = parse_bench_argv(
        argv if argv is not None else sys.argv[1:], DEFAULT_JSON_PATH
    )
    repeats, number = (3, 200) if smoke else (5, 2000)
    rows = compute_table_codec(scale=scale, repeats=repeats, number=number)
    interning = measure_interning()
    print(format_table_codec(rows))
    mean_ratio = sum(row.size_ratio for row in rows) / len(rows)
    print(
        f"\nbin2 frames average {mean_ratio:.0%} of compact JSON; a repeated "
        f"liveness query shrinks {interning['self_contained_bytes']} B -> "
        f"{interning['steady_state_bytes']} B once its names are interned "
        f"(JSON: {interning['json_bytes']} B)"
    )
    written = write_report(rows, interning, json_path)
    print(f"json report: {written}")
    if smoke:
        # The size guard: the binary framing must beat compact JSON text
        # for every message type — no exceptions, no averaging.
        failed = [row for row in rows if row.bin2_bytes >= row.json_bytes]
        for row in failed:
            print(
                f"FAIL: {row.message} is {row.bin2_bytes} B in bin2 but "
                f"{row.json_bytes} B in JSON"
            )
        if failed:
            return 1
        if interning["steady_state_bytes"] >= interning["self_contained_bytes"]:
            print(
                "FAIL: interning does not shrink repeat frames "
                f"({interning['steady_state_bytes']} B steady vs. "
                f"{interning['self_contained_bytes']} B self-contained)"
            )
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
