"""Plain-text table formatting for the benchmark harness."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table (right-aligned numbers)."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
