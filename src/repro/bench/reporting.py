"""Plain-text table formatting and JSON emission for the benchmark harness."""

from __future__ import annotations

import json
from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table (right-aligned numbers)."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def parse_bench_argv(
    args: Sequence[str], default_json_path: str
) -> tuple[int, bool, str]:
    """Parse the flags shared by the bench CLIs: ``[scale] [--smoke] [--json PATH]``.

    Returns ``(scale, smoke, json_path)``.  Exits with a usage message on a
    dangling ``--json`` or an unparsable scale instead of tracebacking.
    """
    remaining = list(args)
    json_path = default_json_path
    if "--json" in remaining:
        index = remaining.index("--json")
        remaining.pop(index)
        if index >= len(remaining) or remaining[index].startswith("--"):
            raise SystemExit("usage: --json requires a path argument")
        json_path = remaining.pop(index)
    smoke = "--smoke" in remaining
    if smoke:
        remaining.remove("--smoke")
    if not remaining:
        return 1, smoke, json_path
    try:
        scale = int(remaining[0])
    except ValueError:
        raise SystemExit(
            f"usage: [scale] [--smoke] [--json PATH]; got {remaining[0]!r}"
        ) from None
    return scale, smoke, json_path


def write_json_report(path: str, bench: str, payload: dict) -> str:
    """Write a machine-readable benchmark report next to the text table.

    The file carries a ``bench`` name and a ``schema`` version so the
    cross-PR perf trackers (``BENCH_*.json`` at the repository root) can
    evolve without ambiguity.  Returns the path written.
    """
    document = {"bench": bench, "schema": 1, **payload}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
