"""Table P — durable snapshots: restore vs cold rebuild, WAL throughput.

Three questions about the persistence layer:

* **restore speed** — how much faster is bringing a server up from a
  snapshot (read + re-register printed IR + reinstall the serialized
  precomputation arrays) than a *cold* rebuild (parse + register + run
  the full liveness precomputation per function)?  On CFGs big enough
  that the precomputation's quadratic set construction dominates, the
  snapshot path skips exactly that work, so the gap is the paper's
  precompute cost made visible — :data:`MIN_RESTORE_SPEEDUP` is the
  guard on the ``large`` profile.
* **WAL cost** — appends/second under each fsync policy (the price of
  the durability knob), measured on real notify traffic.
* **replay speed** — WAL records/second through recovery's dispatch
  replay path, the figure that bounds catch-up and crash-restart time.

Correctness rides along: every measured restore is probed against the
cold server and must answer identically before its time is reported.

Run directly with ``python -m repro.bench.table_persist [scale]``;
``--smoke`` selects the tiny CI profile and enforces the direction
guard (restore strictly faster than cold), ``--json PATH`` overrides
where the machine-readable report (default ``BENCH_persist.json``) is
written.
"""

from __future__ import annotations

import json
import random
import sys
import tempfile
import time
from dataclasses import dataclass, field

from repro.api.handles import FunctionHandle
from repro.api.protocol import (
    LivenessQuery,
    NotifyRequest,
    encode_response,
)
from repro.bench.reporting import format_table, parse_bench_argv, write_json_report
from repro.bench.table_service import ServiceProfile, generate_service_module
from repro.concurrent.client import ShardedClient
from repro.synth.random_function import random_ssa_function
from repro.ir.parser import parse_function
from repro.ir.printer import print_function
from repro.persist.durability import capture_state
from repro.persist.recovery import recover
from repro.persist.snapshot import write_snapshot
from repro.persist.wal import WriteAheadLog, read_wal

#: Default output path of the machine-readable report.
DEFAULT_JSON_PATH = "BENCH_persist.json"

#: Bench guard (full profiles): restoring the ``large`` profile from a
#: snapshot must be at least this many times faster than a cold rebuild.
MIN_RESTORE_SPEEDUP = 5.0

#: Fsync policies measured for the append-throughput column.
APPEND_POLICIES = ("never", "batch")

#: Sharding of the measured server (matches the serving-layer default).
BENCH_SHARDS = 4


@dataclass(frozen=True)
class PersistProfile:
    """One durability workload tier."""

    name: str
    #: Number of functions in the corpus.
    functions: int
    #: Target block count per function.
    target_blocks: int
    #: WAL append/replay record count.
    records: int
    #: ``"spec"`` — spec-profile shaped CFGs, instruction-heavy (parse
    #: cost and precompute cost comparable: a service-like corpus);
    #: ``"irreducible"`` — large sparse irreducible CFGs where the
    #: precomputation's quadratic transitive closure dominates (the
    #: regime snapshots exist for).
    shape: str = "spec"


PERSIST_PROFILES: tuple[PersistProfile, ...] = (
    PersistProfile("mixed", functions=40, target_blocks=16, records=1500),
    PersistProfile(
        "large", functions=8, target_blocks=800, records=1500,
        shape="irreducible",
    ),
)

SMOKE_PROFILES: tuple[PersistProfile, ...] = (
    PersistProfile(
        "smoke", functions=6, target_blocks=120, records=200,
        shape="irreducible",
    ),
)


def generate_persist_functions(
    profile: PersistProfile, scale: int = 1, seed: int = 0
) -> list:
    """The corpus for one profile (same args ⇒ bit-identical IR)."""
    if profile.shape == "irreducible":
        rng = random.Random(seed * 7919 + sum(map(ord, profile.name)))
        return [
            random_ssa_function(
                rng,
                num_blocks=profile.target_blocks,
                num_variables=2,
                instructions_per_block=0,
                force_irreducible=True,
                name=f"{profile.name}_{index}",
            )
            for index in range(profile.functions * scale)
        ]
    module = generate_service_module(
        ServiceProfile(
            profile.name, profile.functions, profile.target_blocks,
            profile.records,
        ),
        scale=scale,
        seed=seed,
    )
    return list(module)


@dataclass
class TablePersistRow:
    """Measured durability costs of one profile."""

    profile: str
    functions: int
    blocks: int
    #: Cold start: parse + register + build every checker, milliseconds.
    cold_ms: float = 0.0
    #: Snapshot restore: read + register + reinstall arrays, milliseconds.
    restore_ms: float = 0.0
    #: Encoded snapshot size on disk, bytes.
    snapshot_bytes: int = 0
    #: Snapshot capture + atomic write, milliseconds.
    snapshot_write_ms: float = 0.0
    #: WAL appends/second, per fsync policy.
    wal_append_rps: dict[str, float] = field(default_factory=dict)
    #: WAL records replayed through dispatch (count and records/second).
    replay_entries: int = 0
    replay_rps: float = 0.0

    @property
    def restore_speedup(self) -> float:
        """How many times faster restore is than the cold rebuild."""
        return self.cold_ms / self.restore_ms if self.restore_ms else 0.0

    def as_dict(self) -> dict:
        return {
            "profile": self.profile,
            "functions": self.functions,
            "blocks": self.blocks,
            "cold_ms": self.cold_ms,
            "restore_ms": self.restore_ms,
            "restore_speedup": self.restore_speedup,
            "snapshot_bytes": self.snapshot_bytes,
            "snapshot_write_ms": self.snapshot_write_ms,
            "wal_append_rps": dict(self.wal_append_rps),
            "replay_entries": self.replay_entries,
            "replay_rps": self.replay_rps,
        }


def _warm_probes(functions) -> list[LivenessQuery]:
    """One checker-building query per function (first variable/block)."""
    probes = []
    for function in functions:
        variables = function.variables()
        blocks = list(function)
        if not variables or not blocks:
            continue
        probes.append(
            LivenessQuery(
                function=FunctionHandle(function.name),
                kind="in",
                variable=variables[0].name,
                block=blocks[0].name,
            )
        )
    return probes


def _cold_start(sources: list[str], capacity: int) -> ShardedClient:
    """The rebuild path: parse, register, run every precomputation."""
    functions = [parse_function(source) for source in sources]
    client = ShardedClient(functions, shards=BENCH_SHARDS, capacity=capacity)
    for probe in _warm_probes(functions):
        client.dispatch(probe)
    return client


def _canonical(response) -> str:
    return json.dumps(encode_response(response), sort_keys=True)


def compute_table_persist(
    scale: int = 1,
    seed: int = 0,
    profiles: tuple[PersistProfile, ...] = PERSIST_PROFILES,
    reps: int = 3,
) -> list[TablePersistRow]:
    rows = []
    for profile in profiles:
        functions = generate_persist_functions(profile, scale=scale, seed=seed)
        sources = [print_function(function) for function in functions]
        capacity = len(functions)
        row = TablePersistRow(
            profile=profile.name,
            functions=len(functions),
            blocks=sum(len(function.blocks) for function in functions),
        )

        # --- cold rebuild (best of reps) -------------------------------
        best = float("inf")
        cold = None
        for _ in range(reps):
            start = time.perf_counter()
            candidate = _cold_start(sources, capacity)
            best = min(best, time.perf_counter() - start)
            cold = candidate
        row.cold_ms = best * 1000.0

        with tempfile.TemporaryDirectory(prefix="repro-persist-") as tmp:
            # --- snapshot write ---------------------------------------
            start = time.perf_counter()
            state = capture_state(cold)
            path = write_snapshot(tmp, state)
            row.snapshot_write_ms = (time.perf_counter() - start) * 1000.0
            with open(path, "rb") as handle:
                row.snapshot_bytes = len(handle.read())

            # --- restore (best of reps), then the identity probe ------
            best = float("inf")
            restored = None
            for _ in range(reps):
                start = time.perf_counter()
                candidate, report = recover(tmp)
                best = min(best, time.perf_counter() - start)
                assert report.checkers_restored == len(state.precomps)
                restored = candidate
            row.restore_ms = best * 1000.0
            for probe in _warm_probes(functions):
                assert _canonical(restored.dispatch(probe)) == _canonical(
                    cold.dispatch(probe)
                ), f"restored answer diverged on {probe}"

        # --- WAL append throughput, per fsync policy ------------------
        records = profile.records * scale
        names = [function.name for function in functions]
        stream = [
            NotifyRequest(function=FunctionHandle(names[i % len(names)]), kind="cfg")
            for i in range(records)
        ]
        for policy in APPEND_POLICIES:
            with tempfile.TemporaryDirectory(prefix="repro-wal-") as tmp:
                with WriteAheadLog(tmp, fsync=policy) as wal:
                    start = time.perf_counter()
                    for request in stream:
                        wal.append(request)
                    elapsed = time.perf_counter() - start
                row.wal_append_rps[policy] = records / elapsed

        # --- replay throughput ----------------------------------------
        with tempfile.TemporaryDirectory(prefix="repro-replay-") as tmp:
            with WriteAheadLog(tmp, fsync="never") as wal:
                for request in stream:
                    wal.append(request)
            scan = read_wal(tmp)
            target = ShardedClient(
                [parse_function(source) for source in sources],
                shards=BENCH_SHARDS,
                capacity=capacity,
            )
            start = time.perf_counter()
            for _seq, request in scan.entries:
                target.dispatch(request)
            elapsed = time.perf_counter() - start
            row.replay_entries = len(scan.entries)
            row.replay_rps = row.replay_entries / elapsed

        rows.append(row)
    return rows


def format_table_persist(rows: list[TablePersistRow]) -> str:
    headers = (
        "profile",
        "functions",
        "blocks",
        "cold_ms",
        "restore_ms",
        "speedup",
        "snap_KB",
        "replay_rps",
        "append_rps(batch)",
    )
    return format_table(
        headers,
        [
            (
                row.profile,
                row.functions,
                row.blocks,
                row.cold_ms,
                row.restore_ms,
                row.restore_speedup,
                row.snapshot_bytes / 1024.0,
                row.replay_rps,
                row.wal_append_rps.get("batch", 0.0),
            )
            for row in rows
        ],
        title="Table P — snapshot restore vs cold rebuild, WAL throughput",
    )


def main(argv: list[str] | None = None) -> int:
    scale, smoke, json_path = parse_bench_argv(
        sys.argv[1:] if argv is None else argv, DEFAULT_JSON_PATH
    )
    profiles = SMOKE_PROFILES if smoke else PERSIST_PROFILES
    rows = compute_table_persist(scale=scale, profiles=profiles)
    print(format_table_persist(rows))  # noqa: T201 - bench CLI output
    write_json_report(
        json_path,
        "table_persist",
        {
            "min_restore_speedup": MIN_RESTORE_SPEEDUP,
            "smoke": smoke,
            "rows": [row.as_dict() for row in rows],
        },
    )
    for row in rows:
        assert row.restore_ms < row.cold_ms, (
            f"profile {row.profile!r}: restore ({row.restore_ms:.1f} ms) is "
            f"not faster than the cold rebuild ({row.cold_ms:.1f} ms)"
        )
    if not smoke:
        large = {row.profile: row for row in rows}.get("large")
        if large is not None:
            assert large.restore_speedup >= MIN_RESTORE_SPEEDUP, (
                f"large-profile restore speedup {large.restore_speedup:.1f}x "
                f"is below the {MIN_RESTORE_SPEEDUP:.0f}x guard"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
