"""Table 2 — runtime of precomputation and queries, native vs. new.

For every benchmark profile the harness measures, per procedure:

* the *native* precomputation: the conventional data-flow liveness of
  :class:`repro.liveness.DataflowLiveness`, restricted (like LAO) to the
  φ-related variables the SSA destruction pass actually queries;
* the *new* precomputation: the CFG-only ``R``/``T`` construction of
  :class:`repro.core.LivenessPrecomputation`;
* the per-query cost of both engines on the *same* recorded query stream
  (the liveness queries one SSA-destruction run issues).

The combined speed-up uses the paper's formula
``#proc × avg_precompute + #queries × avg_query``.  Absolute numbers are
nanoseconds of pure Python rather than Pentium-M cycles, so only the shape
(precompute ratio > 1, query ratio < 1, combined ratio driven by
queries-per-procedure) is expected to match; the paper's published
speed-ups are printed alongside.

Run directly with ``python -m repro.bench.table2 [scale]``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

from repro.bench.reporting import format_table
from repro.bench.workload import BenchmarkWorkload, ProcedureWorkload, build_workload
from repro.core.live_checker import FastLivenessChecker
from repro.core.precompute import LivenessPrecomputation
from repro.liveness.dataflow import DataflowLiveness
from repro.synth.spec_profiles import SPEC_PROFILES, BenchmarkProfile


@dataclass
class Table2Row:
    """Measured + published runtime figures for one benchmark."""

    benchmark: str
    procedures: int
    native_precompute_ns: float
    new_precompute_ns: float
    precompute_speedup: float
    paper_precompute_speedup: float
    queries: int
    native_query_ns: float
    new_query_ns: float
    query_speedup: float
    paper_query_speedup: float
    combined_speedup: float
    paper_combined_speedup: float


def _time_native_precompute(proc: ProcedureWorkload) -> float:
    start = time.perf_counter_ns()
    engine = DataflowLiveness(proc.function, variables=proc.phi_related)
    engine.prepare()
    return float(time.perf_counter_ns() - start)


def _time_new_precompute(proc: ProcedureWorkload) -> float:
    graph = proc.function.build_cfg()
    start = time.perf_counter_ns()
    LivenessPrecomputation(graph)
    return float(time.perf_counter_ns() - start)


def _replay(oracle, queries) -> float:
    """Replay a recorded stream and return the elapsed time in nanoseconds."""
    start = time.perf_counter_ns()
    for kind, var, block in queries:
        if kind == "in":
            oracle.is_live_in(var, block)
        else:
            oracle.is_live_out(var, block)
    return float(time.perf_counter_ns() - start)


def measure_procedure(proc: ProcedureWorkload) -> tuple[float, float, float, float, int]:
    """Return (native pre, new pre, native query total, new query total, #queries)."""
    native_pre = _time_native_precompute(proc)
    new_pre = _time_new_precompute(proc)

    native_engine = DataflowLiveness(proc.function, variables=proc.phi_related)
    native_engine.prepare()
    new_engine = FastLivenessChecker(proc.function, defuse=proc.defuse)
    new_engine.prepare()

    queries = proc.queries
    native_query = _replay(native_engine, queries)
    new_query = _replay(new_engine, queries)
    return native_pre, new_pre, native_query, new_query, len(queries)


def compute_row(workload: BenchmarkWorkload) -> Table2Row:
    """Measure Table 2's columns for one generated workload."""
    profile = workload.profile
    native_pre_total = 0.0
    new_pre_total = 0.0
    native_query_total = 0.0
    new_query_total = 0.0
    query_count = 0
    for proc in workload.procedures:
        native_pre, new_pre, native_query, new_query, queries = measure_procedure(proc)
        native_pre_total += native_pre
        new_pre_total += new_pre
        native_query_total += native_query
        new_query_total += new_query
        query_count += queries

    procedures = len(workload.procedures)
    native_pre_avg = native_pre_total / procedures
    new_pre_avg = new_pre_total / procedures
    native_query_avg = native_query_total / max(query_count, 1)
    new_query_avg = new_query_total / max(query_count, 1)

    native_combined = procedures * native_pre_avg + query_count * native_query_avg
    new_combined = procedures * new_pre_avg + query_count * new_query_avg
    return Table2Row(
        benchmark=profile.name,
        procedures=procedures,
        native_precompute_ns=native_pre_avg,
        new_precompute_ns=new_pre_avg,
        precompute_speedup=native_pre_avg / new_pre_avg if new_pre_avg else 0.0,
        paper_precompute_speedup=profile.precompute_speedup,
        queries=query_count,
        native_query_ns=native_query_avg,
        new_query_ns=new_query_avg,
        query_speedup=native_query_avg / new_query_avg if new_query_avg else 0.0,
        paper_query_speedup=profile.query_speedup,
        combined_speedup=native_combined / new_combined if new_combined else 0.0,
        paper_combined_speedup=profile.combined_speedup,
    )


def compute_table2(
    scale: int = 6,
    seed: int = 0,
    profiles: tuple[BenchmarkProfile, ...] = SPEC_PROFILES,
    workloads: dict[str, BenchmarkWorkload] | None = None,
) -> list[Table2Row]:
    """Compute Table 2 rows for every profile (reusing workloads if given)."""
    rows = []
    for profile in profiles:
        if workloads is not None and profile.name in workloads:
            workload = workloads[profile.name]
        else:
            workload = build_workload(profile, scale=scale, seed=seed)
        rows.append(compute_row(workload))
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Render the measured-vs-paper comparison."""
    headers = [
        "Benchmark",
        "#Proc",
        "Pre native ns",
        "Pre new ns",
        "Spdup",
        "(paper)",
        "#Queries",
        "Qry native ns",
        "Qry new ns",
        "Spdup",
        "(paper)",
        "Both",
        "(paper)",
    ]
    table_rows = [
        [
            row.benchmark,
            row.procedures,
            row.native_precompute_ns,
            row.new_precompute_ns,
            row.precompute_speedup,
            row.paper_precompute_speedup,
            row.queries,
            row.native_query_ns,
            row.new_query_ns,
            row.query_speedup,
            row.paper_query_speedup,
            row.combined_speedup,
            row.paper_combined_speedup,
        ]
        for row in rows
    ]
    return format_table(
        headers,
        table_rows,
        title="Table 2 — runtime experiments (measured vs. paper speed-ups)",
    )


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    args = argv if argv is not None else sys.argv[1:]
    scale = int(args[0]) if args else 6
    print(format_table2(compute_table2(scale=scale)))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
