"""A multi-function liveness-query front door.

Everything below :mod:`repro.core` serves exactly one
:class:`~repro.ir.function.Function` at a time; a compiler (or a
compilation server) holds *many* functions and fires interleaved queries
and edit notifications at them.  :class:`LivenessService` is that front
door: it keeps a bounded, LRU-managed cache of
:class:`~repro.core.live_checker.FastLivenessChecker` instances keyed by
function name, builds checkers on demand, routes per-function edit
notifications to the right cache entry, and answers multi-function batch
requests in one call.

Design points:

* **Bounded cache.**  A checker's precomputation is the expensive part
  (DFS + dominance + ``R``/``T``); the service caps how many are resident
  (``capacity``) and evicts least-recently-used entries.  Re-touching an
  evicted function rebuilds its checker from scratch — the same trade the
  paper's Section 6.1 memory discussion makes explicit.
* **Invalidation contract, per function.**  ``notify_cfg_changed(name)``
  drops that function's precomputation (nothing else);
  ``notify_instructions_changed(name)`` drops only its query plans and
  def–use chains; other functions are never touched.
* **Batch API.**  :meth:`submit` takes a stream of
  :class:`LivenessRequest` items spanning any number of functions and
  answers them in order, routing each through the owning checker's batch
  engine so per-variable query plans are compiled once per function no
  matter how the stream interleaves.
* **Observability.**  :class:`ServiceStats` counts cache hits, misses,
  evictions, invalidations and answered queries — the numbers
  ``bench/table_service.py`` reports.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.live_checker import FastLivenessChecker
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.value import Variable

#: Default maximum number of resident checkers.
DEFAULT_CAPACITY = 64


@dataclass(frozen=True)
class LivenessRequest:
    """One liveness question addressed to a named function."""

    #: Name of the function the question is about.
    function: str
    #: ``"in"`` or ``"out"``.
    kind: str
    #: The variable queried.
    variable: Variable
    #: The block queried.
    block: str


@dataclass
class ServiceStats:
    """Cache and traffic counters of one :class:`LivenessService`."""

    #: Checker found resident in the cache.
    hits: int = 0
    #: Checker had to be (re)built.
    misses: int = 0
    #: Checkers dropped because the cache was over capacity.
    evictions: int = 0
    #: Per-function CFG invalidations routed through the service.
    cfg_invalidations: int = 0
    #: Per-function instruction-level invalidations routed through.
    instruction_invalidations: int = 0
    #: Individual liveness questions answered.
    queries: int = 0
    #: Out-of-SSA translations performed through :meth:`LivenessService.destruct`.
    destructions: int = 0

    @property
    def lookups(self) -> int:
        """Total checker lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for JSON reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "cfg_invalidations": self.cfg_invalidations,
            "instruction_invalidations": self.instruction_invalidations,
            "queries": self.queries,
            "destructions": self.destructions,
            "hit_rate": self.hit_rate,
        }


class LivenessService:
    """Liveness queries for a whole :class:`~repro.ir.module.Module`.

    Parameters
    ----------
    module:
        Functions to serve.  More can be registered later with
        :meth:`register`; a plain iterable of functions works too.
    capacity:
        Maximum number of resident checkers (≥ 1).  Least-recently-used
        entries are evicted beyond that.
    strategy:
        ``TargetSets`` construction strategy handed to every checker.
    """

    def __init__(
        self,
        module: Module | Iterable[Function] | None = None,
        capacity: int = DEFAULT_CAPACITY,
        strategy: str = "exact",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self._functions: dict[str, Function] = {}
        self._checkers: OrderedDict[str, FastLivenessChecker] = OrderedDict()
        self._capacity = capacity
        self._strategy = strategy
        self.stats = ServiceStats()
        if module is not None:
            for function in module:
                self.register(function)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, function: Function) -> Function:
        """Make ``function`` servable; names must be unique."""
        if function.name in self._functions:
            raise ValueError(f"duplicate function name {function.name!r}")
        self._functions[function.name] = function
        return function

    def functions(self) -> list[str]:
        """Names of every registered function, in registration order."""
        return list(self._functions)

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __len__(self) -> int:
        return len(self._functions)

    # ------------------------------------------------------------------
    # The checker cache
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of resident checkers."""
        return self._capacity

    def resident(self) -> list[str]:
        """Functions with a live checker, least-recently-used first."""
        return list(self._checkers)

    def checker(self, name: str) -> FastLivenessChecker:
        """The (cached) checker for function ``name``.

        Builds and prepares one on a miss; touching an entry makes it
        most-recently-used.  May evict another function's checker.
        """
        cached = self._checkers.get(name)
        if cached is not None:
            self._checkers.move_to_end(name)
            self.stats.hits += 1
            return cached
        try:
            function = self._functions[name]
        except KeyError:
            raise KeyError(f"unknown function {name!r}") from None
        self.stats.misses += 1
        checker = FastLivenessChecker(function, strategy=self._strategy)
        checker.prepare()
        self._checkers[name] = checker
        while len(self._checkers) > self._capacity:
            self._checkers.popitem(last=False)
            self.stats.evictions += 1
        return checker

    def evict(self, name: str) -> bool:
        """Drop one function's checker (True if it was resident)."""
        return self._checkers.pop(name, None) is not None

    def clear(self) -> None:
        """Drop every resident checker (registrations are kept)."""
        self._checkers.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_live_in(self, function: str, var: Variable, block: str) -> bool:
        """Live-in query against one function, through the cached checker."""
        self.stats.queries += 1
        return self.checker(function).batch.is_live_in(var, block)

    def is_live_out(self, function: str, var: Variable, block: str) -> bool:
        """Live-out query against one function, through the cached checker."""
        self.stats.queries += 1
        return self.checker(function).batch.is_live_out(var, block)

    def submit(
        self, requests: Sequence[LivenessRequest | tuple[str, str, Variable, str]]
    ) -> list[bool]:
        """Answer a mixed multi-function request stream, in order.

        Each item is a :class:`LivenessRequest` or a plain
        ``(function, kind, variable, block)`` tuple with ``kind`` one of
        ``"in"`` / ``"out"``.  Consecutive requests for the same function
        share one cache lookup; every request shares the per-variable
        query plans the checker already holds.
        """
        answers: list[bool] = []
        current_name: str | None = None
        current_checker: FastLivenessChecker | None = None
        for request in requests:
            if isinstance(request, LivenessRequest):
                name, kind, var, block = (
                    request.function,
                    request.kind,
                    request.variable,
                    request.block,
                )
            else:
                name, kind, var, block = request
            if name != current_name:
                current_checker = self.checker(name)
                current_name = name
            assert current_checker is not None
            self.stats.queries += 1
            if kind == "in":
                answers.append(current_checker.batch.is_live_in(var, block))
            elif kind == "out":
                answers.append(current_checker.batch.is_live_out(var, block))
            else:
                raise ValueError(f"unknown query kind {kind!r}")
        return answers

    # ------------------------------------------------------------------
    # Edit notifications, routed per function
    # ------------------------------------------------------------------
    def _require_known(self, function: str) -> None:
        # A typoed name must fail loudly here: silently "invalidating"
        # nothing would leave the real function's checker stale.
        if function not in self._functions:
            raise KeyError(f"unknown function {function!r}")

    def notify_cfg_changed(self, function: str) -> None:
        """The function's CFG changed: its precomputation is gone."""
        self._require_known(function)
        self.stats.cfg_invalidations += 1
        cached = self._checkers.get(function)
        if cached is not None:
            cached.notify_cfg_changed()

    def notify_instructions_changed(self, function: str) -> None:
        """Instruction-level edits: drop the function's plans only."""
        self._require_known(function)
        self.stats.instruction_invalidations += 1
        cached = self._checkers.get(function)
        if cached is not None:
            cached.notify_instructions_changed()

    def notify_variable_changed(self, function: str, var: Variable) -> None:
        """One variable's chain changed (incremental def–use maintenance)."""
        self._require_known(function)
        cached = self._checkers.get(function)
        if cached is not None:
            cached.notify_variable_changed(var)

    # ------------------------------------------------------------------
    # Out-of-SSA translation
    # ------------------------------------------------------------------
    def destruct(
        self,
        function: str,
        verify: bool = False,
        collect_decisions: bool = False,
    ):
        """Translate one registered function out of SSA form, in place.

        The pass runs through the function's *cached* checker so all of its
        interference queries share the per-variable
        :class:`~repro.core.plans.QueryPlan` cache the service already
        holds; critical-edge splitting (the pipeline's one CFG edit) is
        routed through :meth:`notify_cfg_changed`, and φ isolation
        maintains the checker's def–use chains incrementally through
        ``notify_variable_changed`` — no other resident function is
        touched.  Afterwards the function is no longer SSA, so its checker
        is evicted; a later liveness query against it fails loudly when
        the def–use chains refuse the multi-definition program.

        Returns the :class:`~repro.ssadestruct.pipeline.DestructReport`.
        """
        from repro.ssadestruct.pipeline import destruct as run_destruct

        self._require_known(function)
        fn = self._functions[function]
        checker = self.checker(function)
        report = run_destruct(
            fn,
            backend="fast",
            checker=checker,
            verify=verify,
            collect_decisions=collect_decisions,
            on_cfg_changed=lambda: self.notify_cfg_changed(function),
        )
        self.evict(function)
        self.stats.destructions += 1
        return report

    def __repr__(self) -> str:
        return (
            f"LivenessService(functions={len(self._functions)}, "
            f"resident={len(self._checkers)}/{self._capacity}, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )
