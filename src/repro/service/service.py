"""A multi-function liveness-query front door.

Everything below :mod:`repro.core` serves exactly one
:class:`~repro.ir.function.Function` at a time; a compiler (or a
compilation server) holds *many* functions and fires interleaved queries
and edit notifications at them.  :class:`LivenessService` is that front
door: it keeps a bounded, LRU-managed cache of
:class:`~repro.core.live_checker.FastLivenessChecker` instances keyed by
function name, builds checkers on demand, routes per-function edit
notifications to the right cache entry, and answers multi-function batch
requests in one call.

Design points:

* **Bounded cache.**  A checker's precomputation is the expensive part
  (DFS + dominance + ``R``/``T``); the service caps how many are resident
  (``capacity``) and evicts least-recently-used entries.  Re-touching an
  evicted function rebuilds its checker from scratch — the same trade the
  paper's Section 6.1 memory discussion makes explicit.
* **Invalidation contract, per function.**  ``notify_cfg_changed(name)``
  drops that function's precomputation (nothing else);
  ``notify_instructions_changed(name)`` drops only its query plans and
  def–use chains; other functions are never touched.
* **Revisions.**  Every edit notification bumps the function's *revision*
  counter; :meth:`handle` mints
  :class:`~repro.api.handles.FunctionHandle` values pinned to the current
  revision and :meth:`check_handle` rejects stale ones — the protocol
  layer's ``STALE_HANDLE`` enforcement lives here.  Cache eviction does
  **not** bump revisions (a rebuilt checker answers identically).
* **Batch API.**  :meth:`submit` takes a stream of
  :class:`LivenessRequest` items spanning any number of functions and
  answers them in order, routing each through the owning checker's batch
  engine so per-variable query plans are compiled once per function no
  matter how the stream interleaves.
* **Observability.**  :class:`ServiceStats` counts cache hits, misses,
  evictions, invalidations and answered queries — the numbers
  ``bench/table_service.py`` reports.  The same counters are registered
  (not copied) into a :class:`repro.obs.Observability` metrics registry
  — labelled per shard by the concurrent layer — so wire-level
  ``StatsRequest`` snapshots see them at zero hot-path cost; checker
  construction and out-of-SSA translation are bracketed in trace spans.
  All of it is recording-only and never alters an answer.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.api.handles import FunctionHandle
from repro.api.protocol import QueryKind
from repro.api.registry import FAST, MASK, get_engine
from repro.core.live_checker import FastLivenessChecker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.incremental import CfgDelta
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.parser import parse_function
from repro.ir.printer import print_function
from repro.ir.value import Variable
from repro.obs import Observability
from repro.utils import AtomicCounter

#: Default maximum number of resident checkers.
DEFAULT_CAPACITY = 64


@dataclass(frozen=True)
class LivenessRequest:
    """One liveness question addressed to a named function.

    ``kind`` is validated at construction (legacy ``"in"``/``"out"``
    strings are accepted and normalised to :class:`QueryKind`; anything
    else fails loudly instead of being accepted silently and rejected —
    or worse, dropped — only at answer time).
    """

    #: Name of the function the question is about.
    function: str
    #: :class:`QueryKind` (or one of the legacy strings ``"in"``/``"out"``).
    kind: QueryKind
    #: The variable queried.
    variable: Variable
    #: The block queried.
    block: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", QueryKind.coerce(self.kind))


#: The counter fields of :class:`ServiceStats`, in reporting order.
STAT_FIELDS = (
    "hits",
    "misses",
    "evictions",
    "cfg_invalidations",
    "instruction_invalidations",
    "queries",
    "destructions",
    "stale_handle_rejections",
    "cfg_incremental_applied",
    "cfg_incremental_fallbacks",
)


@dataclass
class ServiceStats:
    """Cache and traffic counters of one :class:`LivenessService`.

    Every field is an :class:`~repro.utils.AtomicCounter`, so the familiar
    ``stats.queries += 1`` call sites are lock-free-to-write *and* safe
    under the concurrent serving layer (:mod:`repro.concurrent`) — plain
    ``int`` fields lose updates when reader threads race on the
    read-modify-write.  Counters compare and format like ints, but the
    attributes are **live** objects: capture a point-in-time value with
    ``int(stats.misses)`` (or :meth:`as_dict`), not by binding the
    attribute.
    """

    #: Checker found resident in the cache.
    hits: AtomicCounter = field(default_factory=AtomicCounter)
    #: Checker had to be (re)built.
    misses: AtomicCounter = field(default_factory=AtomicCounter)
    #: Checkers dropped because the cache was over capacity.
    evictions: AtomicCounter = field(default_factory=AtomicCounter)
    #: Per-function CFG invalidations routed through the service.
    cfg_invalidations: AtomicCounter = field(default_factory=AtomicCounter)
    #: Per-function instruction-level invalidations routed through.
    instruction_invalidations: AtomicCounter = field(default_factory=AtomicCounter)
    #: Individual liveness questions answered.
    queries: AtomicCounter = field(default_factory=AtomicCounter)
    #: Out-of-SSA translations performed through :meth:`LivenessService.destruct`.
    destructions: AtomicCounter = field(default_factory=AtomicCounter)
    #: Requests rejected because they carried a stale function handle.
    stale_handle_rejections: AtomicCounter = field(default_factory=AtomicCounter)
    #: CFG notifications absorbed by patching the precomputation in place
    #: (a :class:`~repro.core.incremental.CfgDelta` the patcher accepted).
    cfg_incremental_applied: AtomicCounter = field(default_factory=AtomicCounter)
    #: Delta-carrying CFG notifications that still had to rebuild (tree
    #: shape changed, block edits, restored shims…) — the honest
    #: complement of :attr:`cfg_incremental_applied`.
    cfg_incremental_fallbacks: AtomicCounter = field(default_factory=AtomicCounter)

    @property
    def lookups(self) -> int:
        """Total checker lookups (hits + misses)."""
        return int(self.hits) + int(self.misses)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        if not self.lookups:
            return 0.0
        return int(self.hits) / self.lookups

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (ints, not counters) for JSON reports."""
        payload: dict[str, float] = {
            name: int(getattr(self, name)) for name in STAT_FIELDS
        }
        payload["hit_rate"] = self.hit_rate
        return payload

    @classmethod
    def aggregate(cls, parts: Iterable["ServiceStats"]) -> "ServiceStats":
        """A snapshot summing several stats objects (per-shard roll-up)."""
        total = cls()
        for part in parts:
            for name in STAT_FIELDS:
                getattr(total, name).add(int(getattr(part, name)))
        return total

    def reset(self) -> dict[str, int]:
        """Zero every counter; returns the counts they replaced.

        Each counter's get-and-set is atomic (one critical section per
        field), so an interval scrape — ``StatsRequest(reset=True)`` —
        attributes every concurrent increment to exactly one interval.
        """
        return {name: getattr(self, name).reset() for name in STAT_FIELDS}


class LivenessService:
    """Liveness queries for a whole :class:`~repro.ir.module.Module`.

    Parameters
    ----------
    module:
        Functions to serve.  More can be registered later with
        :meth:`register`; a plain iterable of functions works too.
    capacity:
        Maximum number of resident checkers (≥ 1).  Least-recently-used
        entries are evicted beyond that.
    strategy:
        ``TargetSets`` construction strategy handed to every checker.
    obs:
        :class:`repro.obs.Observability` to record into; a private
        instance is created when omitted, so independent services never
        share instruments.  Pass one shared instance (the concurrent
        layer does) to get a whole-stack snapshot.
    obs_labels:
        Label dimensions stamped on every cache metric — the sharded
        layer passes ``{"shard": i}`` so snapshots separate per shard.
    engine:
        Which checker implementation backs the cache: ``"fast"`` (the
        default) or ``"mask"`` (the accelerated batch engine; answers are
        bit-identical).  ``None`` reads the ``REPRO_ENGINE`` environment
        variable so a deployment — or a CI lane — can switch the whole
        service without touching call sites.
    """

    def __init__(
        self,
        module: Module | Iterable[Function] | None = None,
        capacity: int = DEFAULT_CAPACITY,
        strategy: str = "exact",
        obs: Observability | None = None,
        obs_labels: dict | None = None,
        engine: str | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        if engine is None:
            engine = os.environ.get("REPRO_ENGINE", FAST)
        if engine not in (FAST, MASK):
            # The cache stores FastLivenessChecker-shaped objects (plans,
            # batch engine, notify hooks); other registry engines don't
            # fit that contract, so fail at construction, not query time.
            raise ValueError(
                f"service engine must be {FAST!r} or {MASK!r}, got {engine!r}"
            )
        self._engine = engine
        self._checker_factory = self._resolve_checker_factory(engine)
        self._functions: dict[str, Function] = {}
        self._checkers: OrderedDict[str, FastLivenessChecker] = OrderedDict()
        self._revisions: dict[str, int] = {}
        self._capacity = capacity
        self._strategy = strategy
        self.stats = ServiceStats()
        self.obs = obs if obs is not None else Observability()
        labels = dict(obs_labels or {})
        # The cache/traffic counters the stats object already maintains
        # are *registered* as metrics rather than mirrored — snapshots
        # read the very same AtomicCounter objects, so the query hot path
        # pays nothing extra for observability (the single-thread
        # no-regression bench guard holds it to that).
        metrics = self.obs.metrics
        metrics.register_counter("service.cache.hits", self.stats.hits, **labels)
        metrics.register_counter(
            "service.cache.misses", self.stats.misses, **labels
        )
        metrics.register_counter(
            "service.cache.evictions", self.stats.evictions, **labels
        )
        metrics.register_counter(
            "engine.queries", self.stats.queries, engine=self._engine, **labels
        )
        self._obs_precomputations = metrics.counter(
            "engine.precomputations", engine=self._engine, **labels
        )
        if module is not None:
            for function in module:
                self.register(function)

    @staticmethod
    def _resolve_checker_factory(
        engine: str,
    ) -> Callable[..., FastLivenessChecker]:
        if engine == MASK:
            from repro.core.maskengine import MaskLivenessChecker

            return MaskLivenessChecker
        return FastLivenessChecker

    @property
    def engine(self) -> str:
        """The checker implementation backing this service's cache."""
        return self._engine

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, function: Function) -> Function:
        """Make ``function`` servable; names must be unique."""
        if function.name in self._functions:
            raise ValueError(f"duplicate function name {function.name!r}")
        self._functions[function.name] = function
        self._revisions[function.name] = 0
        return function

    def functions(self) -> list[str]:
        """Names of every registered function, in registration order."""
        return list(self._functions)

    def function(self, name: str) -> Function:
        """The registered function object (raises ``KeyError`` when unknown)."""
        self._require_known(name)
        return self._functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __len__(self) -> int:
        return len(self._functions)

    # ------------------------------------------------------------------
    # Revisions and handles
    # ------------------------------------------------------------------
    def revision(self, name: str) -> int:
        """The function's current edit revision (0 until the first edit)."""
        self._require_known(name)
        return self._revisions[name]

    def handle(self, name: str) -> FunctionHandle:
        """Mint a :class:`FunctionHandle` pinned to the current revision."""
        return FunctionHandle(name=name, revision=self.revision(name))

    def check_handle(self, handle: FunctionHandle) -> Function:
        """Resolve a handle, rejecting unknown names and stale revisions.

        Unversioned handles (``revision=None``) always resolve; versioned
        ones must match the current revision exactly — an edit
        notification in between means the client's derived facts may be
        wrong, which is precisely what the ``STALE_HANDLE`` error exists
        to surface instead of a silently-wrong answer.
        """
        from repro.api.errors import StaleHandleError

        function = self.function(handle.name)
        current = self._revisions[handle.name]
        if handle.revision is not None and handle.revision != current:
            self.stats.stale_handle_rejections += 1
            raise StaleHandleError(
                f"handle {handle} is stale: function {handle.name!r} is at "
                f"revision {current}"
            )
        return function

    def _bump_revision(self, name: str) -> None:
        self._revisions[name] += 1

    # ------------------------------------------------------------------
    # The checker cache
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of resident checkers."""
        return self._capacity

    def resident(self) -> list[str]:
        """Functions with a live checker, least-recently-used first."""
        return list(self._checkers)

    def checker(self, name: str) -> FastLivenessChecker:
        """The (cached) checker for function ``name``.

        Builds and prepares one on a miss; touching an entry makes it
        most-recently-used.  May evict another function's checker.
        """
        cached = self._checkers.get(name)
        if cached is not None:
            self._checkers.move_to_end(name)
            self.stats.hits += 1
            return cached
        try:
            function = self._functions[name]
        except KeyError:
            raise KeyError(f"unknown function {name!r}") from None
        self.stats.misses += 1
        with self.obs.span("checker_build", function=name):
            checker = self._checker_factory(function, strategy=self._strategy)
            checker.prepare()
        self._obs_precomputations.add(1)
        self._checkers[name] = checker
        while len(self._checkers) > self._capacity:
            self._checkers.popitem(last=False)
            self.stats.evictions += 1
        return checker

    def evict(self, name: str) -> bool:
        """Drop one function's checker (True if it was resident).

        Purely a cache-geometry event: the function itself is unedited,
        so its revision — and every outstanding handle — stays valid.
        """
        return self._checkers.pop(name, None) is not None

    def clear(self) -> None:
        """Drop every resident checker (registrations are kept)."""
        self._checkers.clear()

    # ------------------------------------------------------------------
    # Snapshot export / import (the persist layer's surface)
    # ------------------------------------------------------------------
    @property
    def strategy(self) -> str:
        """``TargetSets`` strategy handed to every checker."""
        return self._strategy

    def export_functions(self) -> list[tuple[str, int, str]]:
        """``(name, revision, printed source)``, in registration order.

        The printed text round-trips through the parser to the same
        function (the printer/parser fixpoint the wire layer already
        relies on), so re-registering these triples — with
        :meth:`import_function` — reproduces this service's observable
        state exactly.
        """
        return [
            (name, self._revisions[name], print_function(function))
            for name, function in self._functions.items()
        ]

    def import_function(self, name: str, revision: int, source: str) -> Function:
        """Register a function at an explicit revision (restore path).

        Unlike :meth:`register` — which is the *live* registration path
        and always starts at revision 0 — this reinstates a function
        exactly as a snapshot recorded it, revision included, so
        outstanding handle semantics survive a restore.
        """
        function = parse_function(source)
        if function.name != name:
            raise ValueError(
                f"snapshot names function {name!r} but its source parses "
                f"as {function.name!r}"
            )
        if name in self._functions:
            raise ValueError(f"duplicate function name {name!r}")
        self._functions[name] = function
        self._revisions[name] = revision
        return function

    def export_precomputations(self) -> list[tuple[str, object]]:
        """``(name, precomputation)`` of every *warm* checker, LRU order.

        Reads :attr:`FastLivenessChecker.resident_precomputation`, so
        exporting never builds anything — the snapshot captures the
        cache as it stands.  LRU order is preserved so a restore
        re-creates the same eviction priorities.
        """
        exported: list[tuple[str, object]] = []
        for name, checker in self._checkers.items():
            pre = checker.resident_precomputation
            if pre is not None:
                exported.append((name, pre))
        return exported

    def install_checker(self, name: str, checker: FastLivenessChecker) -> None:
        """Insert a pre-built checker as the most-recently-used entry.

        The restore path's counterpart to the :meth:`checker` miss path:
        no stats are bumped (a restore is not traffic), but capacity is
        still enforced — installing beyond it evicts LRU entries without
        counting them as traffic evictions either.
        """
        self._require_known(name)
        self._checkers[name] = checker
        self._checkers.move_to_end(name)
        while len(self._checkers) > self._capacity:
            self._checkers.popitem(last=False)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_live_in(self, function: str, var: Variable, block: str) -> bool:
        """Live-in query against one function, through the cached checker."""
        self.stats.queries += 1
        return self.checker(function).batch.is_live_in(var, block)

    def is_live_out(self, function: str, var: Variable, block: str) -> bool:
        """Live-out query against one function, through the cached checker."""
        self.stats.queries += 1
        return self.checker(function).batch.is_live_out(var, block)

    def submit(
        self, requests: Sequence[LivenessRequest | tuple[str, str, Variable, str]]
    ) -> list[bool]:
        """Answer a mixed multi-function request stream, in order.

        Each item is a :class:`LivenessRequest` or a plain
        ``(function, kind, variable, block)`` tuple with ``kind`` a
        :class:`QueryKind` (or a legacy ``"in"``/``"out"`` string).
        Consecutive requests for the same function share one cache
        lookup; every request shares the per-variable query plans the
        checker already holds.
        """
        answers: list[bool] = []
        current_name: str | None = None
        current_checker: FastLivenessChecker | None = None
        for request in requests:
            if isinstance(request, LivenessRequest):
                name, kind, var, block = (
                    request.function,
                    request.kind,
                    request.variable,
                    request.block,
                )
            else:
                name, kind, var, block = request
            if name != current_name:
                current_checker = self.checker(name)
                current_name = name
            assert current_checker is not None
            self.stats.queries += 1
            if kind == QueryKind.LIVE_IN:
                answers.append(current_checker.batch.is_live_in(var, block))
            elif kind == QueryKind.LIVE_OUT:
                answers.append(current_checker.batch.is_live_out(var, block))
            else:
                raise ValueError(f"unknown query kind {kind!r}")
        return answers

    # ------------------------------------------------------------------
    # Edit notifications, routed per function
    # ------------------------------------------------------------------
    def _require_known(self, function: str) -> None:
        # A typoed name must fail loudly here: silently "invalidating"
        # nothing would leave the real function's checker stale.
        if function not in self._functions:
            raise KeyError(f"unknown function {function!r}")

    def notify_cfg_changed(
        self, function: str, delta: "CfgDelta | None" = None
    ) -> None:
        """The function's CFG changed: patch or drop its precomputation.

        Without a delta this is the historical full invalidation.  With
        one, the cached checker tries the incremental patch first
        (:mod:`repro.core.incremental`) and the stats record which way it
        went — ``cfg_incremental_applied`` vs ``cfg_incremental_fallbacks``
        — so the bench tables report an honest hit rate.  Either way the
        revision bumps: the *function* changed, so outstanding handles
        must go stale regardless of how cheaply the cache absorbed it.
        """
        self._require_known(function)
        self.stats.cfg_invalidations += 1
        self._bump_revision(function)
        cached = self._checkers.get(function)
        if cached is not None:
            result = cached.notify_cfg_changed(delta)
            if delta is not None:
                if result.applied:
                    self.stats.cfg_incremental_applied += 1
                else:
                    self.stats.cfg_incremental_fallbacks += 1

    def notify_instructions_changed(self, function: str) -> None:
        """Instruction-level edits: drop the function's plans only."""
        self._require_known(function)
        self.stats.instruction_invalidations += 1
        self._bump_revision(function)
        cached = self._checkers.get(function)
        if cached is not None:
            cached.notify_instructions_changed()

    def notify_variable_changed(self, function: str, var: Variable) -> None:
        """One variable's chain changed (incremental def–use maintenance)."""
        self._require_known(function)
        self._bump_revision(function)
        cached = self._checkers.get(function)
        if cached is not None:
            cached.notify_variable_changed(var)

    # ------------------------------------------------------------------
    # Out-of-SSA translation
    # ------------------------------------------------------------------
    def destruct(
        self,
        function: str,
        engine: str = FAST,
        verify: bool = False,
        collect_decisions: bool = False,
    ):
        """Translate one registered function out of SSA form, in place.

        ``engine`` is resolved through the registry; with the default fast
        engine the pass runs through the function's *cached* checker so
        all of its interference queries share the per-variable
        :class:`~repro.core.plans.QueryPlan` cache the service already
        holds; critical-edge splitting (the pipeline's one CFG edit) is
        routed through :meth:`notify_cfg_changed`, and φ isolation
        maintains the checker's def–use chains incrementally through
        ``notify_variable_changed`` — no other resident function is
        touched.  Afterwards the function is no longer SSA, so its checker
        is evicted and its revision bumped (outstanding handles go stale);
        a later liveness query against it fails loudly when the def–use
        chains refuse the multi-definition program.

        Returns the :class:`~repro.ssadestruct.pipeline.DestructReport`.
        """
        from repro.ssadestruct.pipeline import destruct as run_destruct

        self._require_known(function)
        spec = get_engine(engine)  # unknown engines fail before any mutation
        fn = self._functions[function]
        # Both cache-backed engines answer through the FastLivenessChecker
        # interface, so either can reuse the service's resident checker
        # (and its warm plan cache) for the translation.
        checker = self.checker(function) if spec.name in (FAST, MASK) else None
        if checker is not None and checker.is_restored:
            # The pipeline borrows the checker's dominator tree, which a
            # snapshot-restored precomputation does not carry — swap in a
            # genuine rebuild before translating.
            self.evict(function)
            checker = self.checker(function)
        self.obs.counter("engine.destructs", engine=spec.name).add(1)
        try:
            with self.obs.span("destruct", function=function, engine=spec.name):
                report = run_destruct(
                    fn,
                    backend=spec,
                    checker=checker,
                    verify=verify,
                    collect_decisions=collect_decisions,
                    on_cfg_changed=lambda: self.notify_cfg_changed(function),
                )
        except Exception:
            # Past engine resolution, the pipeline mutates before it can
            # fail (edge splitting, φ isolation): invalidate pessimistically
            # so no handle or resident checker survives a half-translated
            # function.
            self.evict(function)
            self._bump_revision(function)
            raise
        self.evict(function)
        self.stats.destructions += 1
        # The lowering rewrote instructions wholesale: whatever the
        # translation did, every outstanding handle must go stale.
        self._bump_revision(function)
        return report

    def __repr__(self) -> str:
        return (
            f"LivenessService(functions={len(self._functions)}, "
            f"resident={len(self._checkers)}/{self._capacity}, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )
