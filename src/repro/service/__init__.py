"""Multi-function liveness serving on top of :mod:`repro.core`.

The paper's checker answers queries about one function; a compilation
server answers them about *thousands*, interleaved with program edits.
This package provides :class:`LivenessService` — a keyed, LRU-bounded
cache of :class:`~repro.core.live_checker.FastLivenessChecker` instances
over a whole :class:`~repro.ir.module.Module`, with a multi-function batch
API (:meth:`LivenessService.submit`), per-function edit routing,
hit/miss/eviction statistics, and an out-of-SSA entry point
(:meth:`LivenessService.destruct`) that runs the
:mod:`repro.ssadestruct` pipeline through the cached checker.

``bench/table_service.py`` measures this layer: a mixed many-function
workload against per-query checker reconstruction.
"""

from repro.service.service import (
    DEFAULT_CAPACITY,
    LivenessRequest,
    LivenessService,
    ServiceStats,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "LivenessRequest",
    "LivenessService",
    "ServiceStats",
]
