"""repro — Fast Liveness Checking for SSA-Form Programs.

A full reproduction of Boissinot, Hack, Grund, Dupont de Dinechin and
Rastello, *Fast Liveness Checking for SSA-Form Programs* (CGO 2008),
including every substrate the paper relies on: a small SSA IR with
construction and destruction passes, the CFG analyses (DFS, dominance,
reducibility, loop forests), conventional liveness baselines, and the
paper's liveness checker itself with its bitset engineering, plus the
benchmark harness reproducing the paper's tables.

Typical use::

    from repro import compile_source, FastLivenessChecker

    module = compile_source('''
    func count(n) {
        s = 0;
        while (n > 0) { s = s + n; n = n - 1; }
        return s;
    }
    ''')
    function = module.function("count")
    checker = FastLivenessChecker(function)
    s = function.variable_by_name("s.3")
    print(checker.is_live_in(s, "bb2"))

See ``DESIGN.md`` for the module map and ``EXPERIMENTS.md`` for the
reproduction of the paper's evaluation.
"""

from repro.api import (
    ApiError,
    CompilerClient,
    EngineSpec,
    ErrorCode,
    FunctionHandle,
    QueryKind,
    StatsRequest,
    StatsResponse,
    available_engines,
    get_engine,
    register_engine,
)
from repro.cfg import (
    ControlFlowGraph,
    DepthFirstSearch,
    DominanceFrontiers,
    DominatorTree,
    EdgeKind,
    LoopNestingForest,
    PostDominatorTree,
    is_reducible,
)
from repro.concurrent import (
    ProcClient,
    ShardedClient,
    ShardedService,
    WireServer,
    serve_loop,
)
from repro.core import (
    BitsetChecker,
    FastLivenessChecker,
    LivenessPrecomputation,
    LoopForestChecker,
    ReducedReachability,
    SetBasedChecker,
    TargetSets,
    TransformationSession,
)
from repro.frontend import compile_function, compile_source
from repro.ir import (
    BasicBlock,
    Function,
    FunctionBuilder,
    Instruction,
    Module,
    ParallelCopy,
    Phi,
    Variable,
    parse_function,
    print_function,
    verify_ssa,
)
from repro.liveness import (
    CountingOracle,
    DataflowLiveness,
    LivenessOracle,
    PathExplorationLiveness,
)
from repro.obs import MetricsRegistry, Observability, Tracer, to_prometheus
from repro.regalloc import (
    Allocation,
    allocate,
    color_function,
    compute_pressure,
    max_live,
    verify_allocation,
)
from repro.service import LivenessRequest, LivenessService, ServiceStats
from repro.ssa import (
    CopyCoalescer,
    DefUseChains,
    InterferenceChecker,
    construct_ssa,
    destruct_ssa,
)
from repro.ssadestruct import (
    DestructReport,
    destruct,
    verify_conventional_ssa,
    verify_destructed,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # api (the versioned front door)
    "ApiError",
    "CompilerClient",
    "EngineSpec",
    "ErrorCode",
    "FunctionHandle",
    "QueryKind",
    "StatsRequest",
    "StatsResponse",
    "available_engines",
    "get_engine",
    "register_engine",
    # cfg
    "ControlFlowGraph",
    "DepthFirstSearch",
    "EdgeKind",
    "DominatorTree",
    "DominanceFrontiers",
    "PostDominatorTree",
    "LoopNestingForest",
    "is_reducible",
    # ir
    "Variable",
    "Instruction",
    "Phi",
    "ParallelCopy",
    "BasicBlock",
    "Function",
    "Module",
    "FunctionBuilder",
    "parse_function",
    "print_function",
    "verify_ssa",
    # ssa
    "DefUseChains",
    "construct_ssa",
    "destruct_ssa",
    "InterferenceChecker",
    "CopyCoalescer",
    # ssadestruct (the staged out-of-SSA client)
    "destruct",
    "DestructReport",
    "verify_conventional_ssa",
    "verify_destructed",
    # liveness
    "LivenessOracle",
    "CountingOracle",
    "DataflowLiveness",
    "PathExplorationLiveness",
    # core (the paper)
    "LivenessPrecomputation",
    "ReducedReachability",
    "TargetSets",
    "SetBasedChecker",
    "BitsetChecker",
    "FastLivenessChecker",
    "LoopForestChecker",
    "TransformationSession",
    # regalloc (the query-driven client)
    "Allocation",
    "allocate",
    "color_function",
    "compute_pressure",
    "max_live",
    "verify_allocation",
    # obs (metrics, tracing, wire-drivable introspection)
    "MetricsRegistry",
    "Observability",
    "Tracer",
    "to_prometheus",
    # service (multi-function front door)
    "LivenessService",
    "LivenessRequest",
    "ServiceStats",
    # concurrent (sharded thread-safe + multi-process serving)
    "ProcClient",
    "ShardedClient",
    "ShardedService",
    "WireServer",
    "serve_loop",
    # frontend
    "compile_source",
    "compile_function",
]
