"""Small shared utilities with no dependency on the rest of the package.

Currently home to :class:`AtomicCounter` and :class:`AtomicSum`, the
thread-safe accumulators behind :class:`~repro.service.ServiceStats`,
the concurrent serving layer's traffic accounting, and the metrics of
:mod:`repro.obs`.

A note on snapshot reads: ``int(counter)`` / ``counter.value`` read the
underlying attribute *without* the lock.  That is deliberate and safe —
a CPython attribute load of an ``int`` (or ``float``) is a single
reference fetch under the GIL, so the read observes some value that was
actually stored; there is no torn/partial read to protect against.  The
lock exists for read-*modify*-write sequences (``add``, ``reset``),
which genuinely lose updates without it.  :meth:`AtomicCounter.snapshot`
takes the lock anyway, for callers that want a read ordered *after* any
in-flight ``add``/``reset`` on another thread.
"""

from __future__ import annotations

import threading


class AtomicCounter:
    """An int-like counter whose ``+=`` is atomic under threads.

    CPython's GIL makes single bytecodes atomic, but ``x += 1`` on an
    ``int`` attribute is a LOAD/ADD/STORE sequence — two threads can read
    the same value and one increment is lost.  ``AtomicCounter`` keeps the
    augmented-assignment *syntax* (``stats.hits += 1``) while making the
    update atomic: ``__iadd__`` performs a locked add and returns ``self``,
    so the subsequent attribute store rebinds the same object and no
    update can be lost.

    The counter compares, adds and formats like the ``int`` it replaces
    (``counter == 3``, ``counter + 1``, ``counter > 0``, ``f"{counter}"``)
    so existing call sites and tests keep working unchanged; ``int(...)``
    (or :attr:`value`) produces a plain snapshot for JSON reports.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, value: int = 0) -> None:
        self._lock = threading.Lock()
        self._value = int(value)

    @property
    def value(self) -> int:
        """A plain-``int`` snapshot of the current count."""
        return self._value

    def add(self, delta: int = 1) -> int:
        """Atomically add ``delta``; returns the new value."""
        with self._lock:
            self._value += delta
            return self._value

    def reset(self, value: int = 0) -> int:
        """Atomically reset the count; returns the value it replaced.

        The get-and-set is one critical section, so ``old = c.reset()``
        is snapshot-consistent: every concurrent ``add`` lands entirely
        in the returned total or entirely in the fresh count — none is
        split across the two or lost.
        """
        with self._lock:
            previous = self._value
            self._value = int(value)
            return previous

    def snapshot(self) -> int:
        """A locked point-in-time read (ordered after in-flight adds)."""
        with self._lock:
            return self._value

    # -- augmented assignment: ``counter += n`` is a locked add ---------
    def __iadd__(self, delta: int) -> "AtomicCounter":
        self.add(delta)
        return self

    def __isub__(self, delta: int) -> "AtomicCounter":
        self.add(-delta)
        return self

    # -- int-like views -------------------------------------------------
    def __int__(self) -> int:
        return self._value

    __index__ = __int__

    def __float__(self) -> float:
        return float(self._value)

    def __bool__(self) -> bool:
        return self._value != 0

    # -- arithmetic produces plain ints (snapshots) ---------------------
    def __add__(self, other):
        return self._value + int(other)

    __radd__ = __add__

    def __sub__(self, other):
        return self._value - int(other)

    def __rsub__(self, other):
        return int(other) - self._value

    # -- comparisons against ints (and other counters) ------------------
    def _coerce(self, other):
        if isinstance(other, AtomicCounter):
            return other._value
        if isinstance(other, (int, float)):
            return other
        return NotImplemented

    def __eq__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._value == other

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._value < other

    def __le__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._value <= other

    def __gt__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._value > other

    def __ge__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._value >= other

    __hash__ = None  # mutable; identity comparisons should use ``is``

    def __repr__(self) -> str:
        return f"AtomicCounter({self._value})"

    def __str__(self) -> str:
        return str(self._value)

    def __format__(self, spec: str) -> str:
        return format(self._value, spec)


class AtomicSum:
    """A float accumulator whose ``add`` is atomic under threads.

    The timing sibling of :class:`AtomicCounter`: histogram totals and
    wall-clock sums accumulate fractional seconds, where ``x += dt`` on
    a plain float attribute has the same lost-update race as the integer
    counter.  Kept separate from :class:`AtomicCounter` on purpose — the
    counter's int-like identity (``__index__``, exact comparisons) is a
    contract its users rely on, and floats satisfy none of it.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, value: float = 0.0) -> None:
        self._lock = threading.Lock()
        self._value = float(value)

    @property
    def value(self) -> float:
        """A plain-``float`` snapshot of the current total."""
        return self._value

    def add(self, delta: float) -> float:
        """Atomically add ``delta``; returns the new total."""
        with self._lock:
            self._value += delta
            return self._value

    def reset(self, value: float = 0.0) -> float:
        """Atomically reset the total; returns the total it replaced."""
        with self._lock:
            previous = self._value
            self._value = float(value)
            return previous

    def snapshot(self) -> float:
        """A locked point-in-time read (ordered after in-flight adds)."""
        with self._lock:
            return self._value

    def __iadd__(self, delta: float) -> "AtomicSum":
        self.add(delta)
        return self

    def __float__(self) -> float:
        return self._value

    def __bool__(self) -> bool:
        return self._value != 0.0

    def __repr__(self) -> str:
        return f"AtomicSum({self._value!r})"
