"""Small shared utilities with no dependency on the rest of the package.

Currently home to :class:`AtomicCounter`, the thread-safe counter behind
:class:`~repro.service.ServiceStats` and the concurrent serving layer's
traffic accounting.
"""

from __future__ import annotations

import threading


class AtomicCounter:
    """An int-like counter whose ``+=`` is atomic under threads.

    CPython's GIL makes single bytecodes atomic, but ``x += 1`` on an
    ``int`` attribute is a LOAD/ADD/STORE sequence — two threads can read
    the same value and one increment is lost.  ``AtomicCounter`` keeps the
    augmented-assignment *syntax* (``stats.hits += 1``) while making the
    update atomic: ``__iadd__`` performs a locked add and returns ``self``,
    so the subsequent attribute store rebinds the same object and no
    update can be lost.

    The counter compares, adds and formats like the ``int`` it replaces
    (``counter == 3``, ``counter + 1``, ``counter > 0``, ``f"{counter}"``)
    so existing call sites and tests keep working unchanged; ``int(...)``
    (or :attr:`value`) produces a plain snapshot for JSON reports.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, value: int = 0) -> None:
        self._lock = threading.Lock()
        self._value = int(value)

    @property
    def value(self) -> int:
        """A plain-``int`` snapshot of the current count."""
        return self._value

    def add(self, delta: int = 1) -> int:
        """Atomically add ``delta``; returns the new value."""
        with self._lock:
            self._value += delta
            return self._value

    def reset(self, value: int = 0) -> None:
        """Atomically reset the count."""
        with self._lock:
            self._value = int(value)

    # -- augmented assignment: ``counter += n`` is a locked add ---------
    def __iadd__(self, delta: int) -> "AtomicCounter":
        self.add(delta)
        return self

    def __isub__(self, delta: int) -> "AtomicCounter":
        self.add(-delta)
        return self

    # -- int-like views -------------------------------------------------
    def __int__(self) -> int:
        return self._value

    __index__ = __int__

    def __float__(self) -> float:
        return float(self._value)

    def __bool__(self) -> bool:
        return self._value != 0

    # -- arithmetic produces plain ints (snapshots) ---------------------
    def __add__(self, other):
        return self._value + int(other)

    __radd__ = __add__

    def __sub__(self, other):
        return self._value - int(other)

    def __rsub__(self, other):
        return int(other) - self._value

    # -- comparisons against ints (and other counters) ------------------
    def _coerce(self, other):
        if isinstance(other, AtomicCounter):
            return other._value
        if isinstance(other, (int, float)):
            return other
        return NotImplemented

    def __eq__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._value == other

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._value < other

    def __le__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._value <= other

    def __gt__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._value > other

    def __ge__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._value >= other

    __hash__ = None  # mutable; identity comparisons should use ``is``

    def __repr__(self) -> str:
        return f"AtomicCounter({self._value})"

    def __str__(self) -> str:
        return str(self._value)

    def __format__(self, spec: str) -> str:
        return format(self._value, spec)
