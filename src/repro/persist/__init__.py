"""Durable snapshots, a write-ahead log, and replica catch-up.

The serving stack's linearization witness — the ``observer`` hook fired
with ``(request, response)`` while the shard locks are held — is a
write-ahead log in everything but durability.  This package makes it
durable and builds the production stories on top:

* :mod:`repro.persist.records` — CRC-protected, length-prefixed record
  framing shared by snapshots and the WAL (bin2 conventions via the
  public primitives of :mod:`repro.api.codec`);
* :mod:`repro.persist.snapshot` — the versioned snapshot format:
  printed module IR, handle revisions and (optionally) each resident
  checker's precomputation arrays, such that restore → re-snapshot is
  byte-identical;
* :mod:`repro.persist.wal` — the append-only log of mutating requests
  with configurable fsync policy, segment rotation and compaction;
* :mod:`repro.persist.policy` — which ``(request, response)`` pairs are
  replayable (evictions never: cache geometry stays unobservable);
* :mod:`repro.persist.durability` — the front door wiring a
  :class:`~repro.concurrent.ShardedClient` / ``ProcClient`` observer to
  the WAL, with snapshot compaction;
* :mod:`repro.persist.recovery` — torn-tail-tolerant crash recovery:
  newest valid snapshot + WAL tail replay, never raising on damage;
* :mod:`repro.persist.replica` — a read-only follower tailing the
  primary's log, with a state-digest divergence checker;
* ``python -m repro.persist.inspect`` — a CLI dumping snapshot headers
  and WAL records.
"""

from repro.persist.durability import Durability, live_state_digest
from repro.persist.policy import is_replayable, is_worker_failure
from repro.persist.records import RecordDamage, scan_records
from repro.persist.recovery import load_state, recover
from repro.persist.replica import Replica
from repro.persist.snapshot import (
    FunctionState,
    PrecompState,
    SnapshotState,
    load_snapshot,
    state_digest,
    write_snapshot,
)
from repro.persist.wal import WriteAheadLog, read_wal

__all__ = [
    "Durability",
    "FunctionState",
    "PrecompState",
    "RecordDamage",
    "Replica",
    "SnapshotState",
    "WriteAheadLog",
    "is_replayable",
    "is_worker_failure",
    "live_state_digest",
    "load_snapshot",
    "load_state",
    "read_wal",
    "recover",
    "scan_records",
    "state_digest",
    "write_snapshot",
]
