"""Replica catch-up: a read-only follower tailing the primary's log.

A :class:`Replica` points at the primary's state directory (a shared
filesystem in spirit; the tests literally share a tmpdir), bootstraps
from the newest valid snapshot, and :meth:`catch_up` applies whatever
WAL entries have landed since — the exact replay path crash recovery
uses, so a caught-up follower answers every read query identically to
the primary *by the same argument that makes recovery correct*: the log
is a linearization of the primary's confirmed mutations.

Two deliberate asymmetries with the primary:

* **Reads only.**  Mutations must flow through the primary (whose WAL
  is the single source of truth); the replica answers them with a
  structured ``UNSUPPORTED`` error, never by forking history.
* **Torn tails are benign.**  The primary may be mid-append when the
  follower polls; the scan simply stops at the damage and the next
  :meth:`catch_up` picks up the completed record.  Only a *sequence
  gap* — the primary compacted away segments the follower had not
  applied yet — forces a re-bootstrap from the newest snapshot.

Divergence checking rides the state digest: both sides hash the same
observable state ((name, revision, source) in registration order — cache
geometry deliberately excluded), so :meth:`matches_primary` is one
string comparison against :func:`~repro.persist.durability.live_state_digest`
of the primary (or :meth:`SnapshotState.digest` of any snapshot).
"""

from __future__ import annotations

from repro.api.errors import ApiError, ErrorCode
from repro.api.protocol import (
    BatchLiveness,
    LivenessQuery,
    LiveSetRequest,
    Request,
    Response,
    StatsRequest,
)
from repro.obs import Observability
from repro.persist.durability import live_state_digest
from repro.persist.snapshot import load_newest_snapshot
from repro.persist.wal import read_wal

#: Request types a replica answers; everything else is read-only-rejected.
READ_REQUESTS = (LivenessQuery, BatchLiveness, LiveSetRequest, StatsRequest)


class Replica:
    """A read-only follower over a primary's snapshot + WAL directory."""

    def __init__(
        self,
        directory: str,
        obs: Observability | None = None,
        catch_up: bool = True,
    ) -> None:
        self.directory = directory
        self.obs = obs if obs is not None else Observability()
        self._client = None
        self._applied = 0
        self._obs_applied = self.obs.counter("replica.applied")
        self._obs_bootstraps = self.obs.counter("replica.bootstraps")
        self._obs_position = self.obs.gauge("replica.position")
        self._bootstrap()
        if catch_up:
            self.catch_up()

    # ------------------------------------------------------------------
    # Log following
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """(Re)build the inner server from the newest valid snapshot."""
        # Imported lazily: repro.concurrent imports this package, so a
        # module-level import would be a cycle.
        from repro.concurrent.client import ShardedClient
        from repro.core.live_checker import FastLivenessChecker
        from repro.persist.precomp import RestoredPrecomputation

        state, _path, _damage = load_newest_snapshot(self.directory)
        if state is not None:
            client = ShardedClient(
                shards=state.shards,
                capacity=state.capacity,
                strategy=state.strategy,
                obs=self.obs,
            )
            if state.functions:
                client.import_state(
                    [(f.name, f.revision, f.source) for f in state.functions]
                )
            for pre_state in state.precomps:
                try:
                    function = client.service.function(pre_state.name)
                except KeyError:
                    continue
                client.install_checker(
                    pre_state.name,
                    FastLivenessChecker.from_precomputation(
                        function,
                        RestoredPrecomputation(pre_state),
                        strategy=pre_state.strategy,
                    ),
                )
            self._applied = state.last_seq
        else:
            client = ShardedClient(obs=self.obs)
            self._applied = 0
        self._client = client
        self._obs_bootstraps.add(1)
        self._obs_position.set(self._applied)

    def catch_up(self) -> int:
        """Apply every new WAL entry; returns how many were applied.

        Never raises on damage: a torn tail just ends this round.  A
        sequence gap (compaction outran this follower) triggers one
        re-bootstrap from the newest snapshot, then a re-tail.
        """
        scan = read_wal(self.directory, after_seq=self._applied)
        if scan.entries and scan.entries[0][0] > self._applied + 1:
            # The primary compacted past us: segments holding
            # (applied, first) were pruned after a snapshot covered
            # them.  Restart from that snapshot.
            self._bootstrap()
            scan = read_wal(self.directory, after_seq=self._applied)
            if scan.entries and scan.entries[0][0] > self._applied + 1:
                return 0  # still racing the compactor; try again later
        applied = 0
        for seq, request in scan.entries:
            self._client.dispatch(request)
            self._applied = seq
            applied += 1
        if applied:
            self._obs_applied.add(applied)
            self._obs_position.set(self._applied)
        return applied

    @property
    def position(self) -> int:
        """Sequence number of the last applied WAL entry."""
        return self._applied

    # ------------------------------------------------------------------
    # Serving (reads only)
    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> Response:
        """Answer read requests; reject mutations with ``UNSUPPORTED``."""
        from repro.api.client import failure_response

        if isinstance(request, READ_REQUESTS):
            return self._client.dispatch(request)
        return failure_response(
            request,
            ApiError(
                ErrorCode.UNSUPPORTED,
                "replica is read-only: mutations must go to the primary",
            ),
        )

    # ------------------------------------------------------------------
    # Divergence checking
    # ------------------------------------------------------------------
    def state_digest(self) -> str:
        """Digest of the replica's observable state (see module docstring)."""
        return live_state_digest(self._client)

    def matches_primary(self, primary) -> bool:
        """Digest comparison against a live primary client.

        ``primary`` is anything with the export surface (a
        ``ShardedClient`` / ``ProcClient``).  Equal digests mean the
        follower would answer every read identically — the stronger
        query-level claim the differential tests establish once, and the
        digest then polices cheaply forever.
        """
        return self.state_digest() == live_state_digest(primary)

    def close(self) -> None:
        """Release the inner server (idempotent)."""
        self._client = None

    def __repr__(self) -> str:
        return f"Replica({self.directory!r}, position={self._applied})"
