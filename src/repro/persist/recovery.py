"""Crash recovery: newest valid snapshot + WAL tail, never raising.

The contract mirrors the rest of the package: *damage is data, not an
exception*.  :func:`load_state` inspects a state directory and reports
what is recoverable — the newest snapshot that decodes clean (older ones
are tried when the newest is damaged), the WAL entries past it, and a
structured list of everything that had to be skipped or truncated.
:func:`recover` turns that into a live serving client: rebuild the
topology the snapshot recorded, reinstate the functions (revisions
intact), reinstall each warm checker from its snapshot arrays
(thread transport only — worker processes rebuild on demand), then
replay the WAL tail through the ordinary ``dispatch`` path.

The differential guarantee (what ``tests/persist`` proves): a server
that crashed — torn WAL tail included — and recovered answers every
probe bit-identically to a server that never crashed, because the
replayed tail is exactly the confirmed-mutation suffix the linearization
witness recorded and the snapshot is exactly the state at the pinned
sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.persist.records import RecordDamage
from repro.persist.snapshot import SnapshotState, load_newest_snapshot
from repro.persist.wal import read_wal


@dataclass(frozen=True)
class RecoveredState:
    """What :func:`load_state` found on disk."""

    #: The newest snapshot that decoded clean (``None`` when no usable
    #: snapshot exists — recovery then starts from an empty service).
    snapshot: SnapshotState | None
    #: Path the snapshot was read from (``None`` without one).
    snapshot_path: str | None
    #: WAL entries past the snapshot, ``(seq, request)`` in log order.
    entries: tuple[tuple[int, object], ...]
    #: Everything unreadable, in discovery order (snapshot damage first,
    #: then WAL damage) — empty for a clean shutdown.
    damage: tuple[RecordDamage, ...]
    #: Highest sequence number recovered (snapshot's when the tail is
    #: empty) — the position a resumed WAL should continue from.
    last_seq: int


@dataclass
class RecoveryReport:
    """What :func:`recover` did to produce a live client."""

    #: Where the state came from.
    directory: str
    #: Snapshot file used (``None`` when recovering from WAL alone).
    snapshot_path: str | None
    #: Functions reinstated from the snapshot.
    functions: int = 0
    #: Checkers reinstalled from snapshot precomputation arrays.
    checkers_restored: int = 0
    #: WAL entries replayed through dispatch.
    replayed: int = 0
    #: Replayed entries whose response carried an error (deterministic
    #: failures are legal history — they replay to the same error).
    replay_errors: int = 0
    #: Damage encountered while reading (torn tails, CRC hits, ...).
    damage: list[RecordDamage] = field(default_factory=list)
    #: The sequence number the resumed WAL should continue from.
    last_seq: int = 0


def load_state(directory: str) -> RecoveredState:
    """Read everything recoverable from ``directory``; never raises.

    Tries snapshots newest-first until one decodes clean, then reads the
    WAL strictly past that snapshot's pinned sequence (records the
    snapshot already covers are skipped by sequence number, so snapshot
    and log overlapping is harmless by construction).
    """
    state, path, snap_damage = load_newest_snapshot(directory)
    after = state.last_seq if state is not None else 0
    scan = read_wal(directory, after_seq=after)
    return RecoveredState(
        snapshot=state,
        snapshot_path=path,
        entries=scan.entries,
        damage=tuple(snap_damage) + scan.damage,
        last_seq=scan.last_seq,
    )


def recover(
    directory: str,
    transport: str = "threads",
    shards: int | None = None,
    capacity: int | None = None,
    strategy: str | None = None,
    repair: bool = False,
    **client_kwargs,
):
    """Rebuild a live serving client from a state directory.

    Parameters
    ----------
    transport:
        ``"threads"`` builds a
        :class:`~repro.concurrent.client.ShardedClient`, ``"procs"`` a
        :class:`~repro.concurrent.procs.ProcClient`.
    shards / capacity / strategy:
        Override the topology recorded in the snapshot header (defaults
        to exactly what the snapshot recorded; paper defaults when there
        is no snapshot).
    repair:
        Also *physically* truncate torn WAL tails and delete
        post-damage segments (:func:`repro.persist.wal.repair`), so a
        durability layer re-armed over this directory appends after a
        clean tail.
    client_kwargs:
        Extra keyword arguments for the client constructor (``obs``,
        ``observer``, ``timeout``...).

    Returns ``(client, report)``.  Never raises on *damage* — a torn
    tail or corrupt snapshot shows up in ``report.damage`` — but does
    propagate real environment failures (unspawnable workers, unwritable
    repair).
    """
    # Imported here, not at module level: repro.concurrent imports this
    # package's policy module, so a module-level import would be a cycle.
    from repro.core.live_checker import FastLivenessChecker
    from repro.persist.precomp import RestoredPrecomputation
    from repro.persist.wal import repair as repair_wal

    recovered = load_state(directory)
    report = RecoveryReport(
        directory=directory,
        snapshot_path=recovered.snapshot_path,
        damage=list(recovered.damage),
        last_seq=max(
            recovered.last_seq,
            recovered.snapshot.last_seq if recovered.snapshot else 0,
        ),
    )
    if repair and any(d.kind != "gap" for d in recovered.damage):
        repair_wal(directory)

    snapshot = recovered.snapshot
    topo_shards = shards if shards is not None else (
        snapshot.shards if snapshot is not None else None
    )
    topo_capacity = capacity if capacity is not None else (
        snapshot.capacity if snapshot is not None else None
    )
    topo_strategy = strategy if strategy is not None else (
        snapshot.strategy if snapshot is not None else "exact"
    )

    if transport == "threads":
        from repro.concurrent.client import ShardedClient

        kwargs = dict(client_kwargs)
        if topo_shards is not None:
            kwargs.setdefault("shards", topo_shards)
        if topo_capacity is not None:
            kwargs.setdefault("capacity", topo_capacity)
        kwargs.setdefault("strategy", topo_strategy)
        client = ShardedClient(**kwargs)
    elif transport == "procs":
        from repro.concurrent.procs import ProcClient

        kwargs = dict(client_kwargs)
        if topo_shards is not None:
            kwargs.setdefault("workers", topo_shards)
        if topo_capacity is not None:
            kwargs.setdefault("capacity", topo_capacity)
        kwargs.setdefault("strategy", topo_strategy)
        client = ProcClient(**kwargs)
    else:
        raise ValueError(
            f"transport must be 'threads' or 'procs', got {transport!r}"
        )

    if snapshot is not None and snapshot.functions:
        client.import_state(
            [(f.name, f.revision, f.source) for f in snapshot.functions]
        )
        report.functions = len(snapshot.functions)

    if transport == "threads" and snapshot is not None:
        # Reinstall warm checkers from the snapshot's arrays — the
        # restore-speed half of the story.  Skipped for processes: the
        # arrays would have to cross a pipe into workers that rebuild
        # on demand anyway.
        sharded = client.service
        for pre_state in snapshot.precomps:
            try:
                function = sharded.function(pre_state.name)
            except KeyError:
                continue  # snapshot names a function its own IR lacks
            checker = FastLivenessChecker.from_precomputation(
                function,
                RestoredPrecomputation(pre_state),
                strategy=pre_state.strategy,
            )
            client.install_checker(pre_state.name, checker)
            report.checkers_restored += 1

    for _seq, request in recovered.entries:
        response = client.dispatch(request)
        report.replayed += 1
        if getattr(response, "error", None) is not None:
            report.replay_errors += 1
    return client, report
