"""Serializable form of a checker's precomputation, and its restore shim.

The expensive half of a cold start is rebuilding each resident checker's
:class:`~repro.core.precompute.LivenessPrecomputation` — DFS, dominator
tree, the quadratic reduced-reachability closure and the target sets.
The *query* engines, however, only ever touch the flat numeric view that
precomputation lowers everything to: ``maxnums`` / ``r_masks`` /
``t_masks`` / ``is_back_target`` indexed by dominance-preorder number,
plus the name↔number mapping and two scalars (``reducible`` and the
target-set strategy).  That view is a few arrays of integers — exactly
what a snapshot can carry.

:class:`RestoredPrecomputation` duck-types that numeric surface; a
checker built over it (:meth:`FastLivenessChecker.from_precomputation`)
answers every liveness query, live-set sweep and batch identically to a
freshly built one, because the arrays *are* the freshly built ones —
:func:`export_precomputation` reads them off a live checker and the
round trip is value-identical by construction.  What the shim does *not*
carry are the object views (``domtree``/``reach``/``dfs``): passes that
need those — out-of-SSA destruction shares the checker's dominator tree
— get a real rebuild first (the service swaps restored checkers out
before ``destruct``), and any CFG-edit notification drops the shim
entirely, falling back to a genuine recompute.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PrecompState:
    """The numeric precomputation of one function, as plain values."""

    #: Function name the arrays belong to.
    name: str
    #: ``TargetSets`` strategy the arrays were built with.
    strategy: str
    #: Whether the CFG was reducible (arms the Theorem-2 fast path).
    reducible: bool
    #: Block names by dominance-preorder number (index = number).
    order: tuple[str, ...]
    #: ``maxnums[n]`` — largest preorder number in node n's subtree.
    maxnums: tuple[int, ...]
    #: ``r_masks[n]`` — reduced-reachability bit mask of node n.
    r_masks: tuple[int, ...]
    #: ``t_masks[n]`` — back-edge-target bit mask of node n.
    t_masks: tuple[int, ...]
    #: Bit ``i`` set ⇔ node number ``i`` is a DFS back-edge target.
    back_mask: int


class _RestoredTargets:
    """Just enough of ``TargetSets`` for the query engines: the strategy."""

    __slots__ = ("strategy",)

    def __init__(self, strategy: str) -> None:
        self.strategy = strategy


class _RestoredGraph:
    """Just enough of ``ControlFlowGraph``: the node listing."""

    __slots__ = ("_order",)

    def __init__(self, order: list[str]) -> None:
        self._order = order

    def nodes(self) -> list[str]:
        return list(self._order)

    def __len__(self) -> int:
        return len(self._order)


class RestoredPrecomputation:
    """The flat-array query surface, rebuilt from snapshot values.

    Attribute-compatible with :class:`LivenessPrecomputation` everywhere
    the numeric engines look (:mod:`repro.core.bitset_query`,
    :mod:`repro.core.plans`, :mod:`repro.core.batch`): the four arrays,
    ``reducible``, ``targets.strategy``, ``graph.nodes()`` and the
    ``num``/``node_of``/``is_back_edge_target`` mapping helpers.  The
    object views (``domtree``, ``reach``, ``dfs``) are deliberately
    absent — see the module docstring.
    """

    #: Marks the shim so the service can swap it for a real rebuild
    #: before passes that need the object views (out-of-SSA destruct).
    restored = True

    def __init__(self, state: PrecompState) -> None:
        self.maxnums = list(state.maxnums)
        self.r_masks = list(state.r_masks)
        self.t_masks = list(state.t_masks)
        self.is_back_target = [
            bool((state.back_mask >> index) & 1)
            for index in range(len(state.order))
        ]
        self.reducible = state.reducible
        self.targets = _RestoredTargets(state.strategy)
        self._order = list(state.order)
        self._num = {name: index for index, name in enumerate(self._order)}
        self.graph = _RestoredGraph(self._order)

    def num(self, node: str) -> int:
        """Dominance-preorder number of ``node`` (``KeyError`` if unknown)."""
        return self._num[node]

    def maxnum(self, node: str) -> int:
        """Largest preorder number inside ``node``'s dominance subtree."""
        return self.maxnums[self._num[node]]

    def node_of(self, number: int) -> str:
        """Inverse of :meth:`num`."""
        return self._order[number]

    def is_back_edge_target(self, node: str) -> bool:
        """True iff a DFS back edge points at ``node``."""
        return self.is_back_target[self._num[node]]

    def num_blocks(self) -> int:
        """Number of CFG nodes the arrays cover."""
        return len(self._order)

    def __repr__(self) -> str:
        return (
            f"RestoredPrecomputation(blocks={len(self._order)}, "
            f"reducible={self.reducible}, "
            f"strategy={self.targets.strategy!r})"
        )


def export_precomputation(name: str, pre) -> PrecompState:
    """Read the numeric view off a live (or restored) precomputation.

    Works identically for :class:`LivenessPrecomputation` and
    :class:`RestoredPrecomputation` — both expose the same arrays and
    mapping helpers — which is what makes restore → re-snapshot
    byte-identical: re-exporting a restored shim reproduces the very
    values the snapshot carried.
    """
    count = len(pre.maxnums)
    back_mask = 0
    for index, flag in enumerate(pre.is_back_target):
        if flag:
            back_mask |= 1 << index
    return PrecompState(
        name=name,
        strategy=pre.targets.strategy,
        reducible=bool(pre.reducible),
        order=tuple(str(pre.node_of(index)) for index in range(count)),
        maxnums=tuple(pre.maxnums),
        r_masks=tuple(pre.r_masks),
        t_masks=tuple(pre.t_masks),
        back_mask=back_mask,
    )
