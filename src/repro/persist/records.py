"""CRC-protected, length-prefixed record framing for on-disk state.

Snapshots and WAL segments are both flat sequences of *records* framed
the way :mod:`repro.api.codec` frames wire messages — a little-endian
``u32`` length prefix, varint/string primitives for the body — plus the
two things a durable file needs that a pipe does not:

* a ``u32`` CRC-32 of the payload, so a flipped bit anywhere in the body
  is detected before a single byte of it is interpreted;
* damage-tolerant scanning: :func:`scan_records` never raises.  It walks
  the file record by record and stops at the first torn, corrupt or
  malformed record, reporting *what* was wrong and *where* the clean
  prefix ends — which is exactly the truncation point crash recovery
  needs (a process dying mid-``write`` leaves a torn tail, not a clean
  EOF).

On-disk layout of one record::

    u32 length   | length of everything after this prefix (crc + payload)
    u32 crc32    | zlib.crc32 of the payload bytes
    payload      | magic (0xD5) | format version | record type | body

The payload leads with its own magic/version byte pair (mirroring the
``0xB2``/protocol-version lead-in of bin2 frames) so a file of the wrong
kind — or a record written by a future format — fails loudly as
structured damage instead of being misparsed.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

#: First payload byte of every persist record (bin2 frames use 0xB2).
PERSIST_MAGIC = 0xD5

#: On-disk format version; bump on any incompatible layout change.
PERSIST_VERSION = 1

#: Upper bound on one record's framed size — a garbage-length guard,
#: mirroring the wire codec's MAX_FRAME.
MAX_RECORD = 16 * 1024 * 1024

_HEADER = struct.Struct("<II")


@dataclass(frozen=True)
class RecordDamage:
    """Structured description of the first unreadable record in a file.

    ``offset`` is where the damaged record *starts* — everything before
    it scanned clean, so it doubles as the safe truncation point.
    """

    #: One of ``torn`` (file ends mid-record), ``crc`` (checksum
    #: mismatch), ``magic``/``version`` (not a record of this format)
    #: or ``oversize`` (length prefix exceeds :data:`MAX_RECORD`).
    kind: str
    #: Byte offset at which the damaged record starts.
    offset: int
    #: Human-readable detail for reports and the inspect CLI.
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} record at byte {self.offset}: {self.detail}"


@dataclass(frozen=True)
class ScanResult:
    """Every clean record of a byte string, plus the first damage (if any)."""

    #: ``(record_type, body, offset)`` triples in file order.
    records: tuple[tuple[int, bytes, int], ...]
    #: ``None`` when the whole input scanned clean.
    damage: RecordDamage | None

    @property
    def clean_length(self) -> int:
        """Bytes of clean prefix — the truncation point after damage."""
        if self.damage is not None:
            return self.damage.offset
        if not self.records:
            return 0
        _rectype, body, offset = self.records[-1]
        return offset + _HEADER.size + 3 + len(body)


def encode_record(rectype: int, body: bytes | bytearray) -> bytes:
    """One framed record: length + CRC + (magic, version, type, body)."""
    payload = bytes((PERSIST_MAGIC, PERSIST_VERSION, rectype)) + bytes(body)
    if len(payload) + 4 > MAX_RECORD:
        raise ValueError(
            f"record of {len(payload)} payload bytes exceeds {MAX_RECORD}"
        )
    return _HEADER.pack(len(payload) + 4, zlib.crc32(payload)) + payload


def scan_records(data: bytes) -> ScanResult:
    """Walk ``data`` record by record; never raises.

    Returns every record before the first damage.  Records *after* a
    damaged one are deliberately not salvaged: a CRC failure means the
    writer (or the medium) cannot be trusted past that point, which is
    the classic WAL recovery rule.
    """
    records: list[tuple[int, bytes, int]] = []
    pos = 0
    end = len(data)
    while pos < end:
        if end - pos < _HEADER.size:
            return ScanResult(
                tuple(records),
                RecordDamage(
                    "torn",
                    pos,
                    f"{end - pos} trailing bytes, record header needs "
                    f"{_HEADER.size}",
                ),
            )
        length, crc = _HEADER.unpack_from(data, pos)
        if length > MAX_RECORD or length < 7:
            return ScanResult(
                tuple(records),
                RecordDamage(
                    "oversize" if length > MAX_RECORD else "torn",
                    pos,
                    f"record length prefix {length} out of range",
                ),
            )
        body_start = pos + _HEADER.size
        body_end = pos + 4 + length
        if body_end > end:
            return ScanResult(
                tuple(records),
                RecordDamage(
                    "torn",
                    pos,
                    f"record declares {length} bytes but only "
                    f"{end - pos - 4} remain",
                ),
            )
        payload = data[body_start:body_end]
        if zlib.crc32(payload) != crc:
            return ScanResult(
                tuple(records),
                RecordDamage("crc", pos, "payload checksum mismatch"),
            )
        if payload[0] != PERSIST_MAGIC:
            return ScanResult(
                tuple(records),
                RecordDamage(
                    "magic",
                    pos,
                    f"payload leads with {payload[0]:#04x}, "
                    f"expected {PERSIST_MAGIC:#04x}",
                ),
            )
        if payload[1] != PERSIST_VERSION:
            return ScanResult(
                tuple(records),
                RecordDamage(
                    "version",
                    pos,
                    f"format version {payload[1]}, this build reads "
                    f"{PERSIST_VERSION}",
                ),
            )
        records.append((payload[2], payload[3:], pos))
        pos = body_end
    return ScanResult(tuple(records), None)
