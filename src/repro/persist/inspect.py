"""``python -m repro.persist.inspect`` — dump snapshots and WAL records.

Operational introspection for a state directory: which snapshots exist
(and whether they decode), what the WAL holds (sequence ranges, record
counts, request types), and any damage — torn tails, CRC hits — exactly
as recovery would classify it.  ``--json`` emits the same facts as one
machine-readable object for scripts and CI assertions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.persist.records import scan_records
from repro.persist.snapshot import (
    SNAPSHOT_RECORD_NAMES,
    decode_snapshot,
    list_snapshots,
)
from repro.persist.wal import decode_wal_body, list_segments

from repro.api.errors import ProtocolError


def inspect_directory(directory: str) -> dict:
    """Everything the CLI prints, as one JSON-ready dict; never raises."""
    report: dict = {"directory": directory, "snapshots": [], "wal": []}
    for seq, path in list_snapshots(directory):
        entry: dict = {
            "file": os.path.basename(path),
            "bytes": os.path.getsize(path),
        }
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            entry["error"] = str(exc)
            report["snapshots"].append(entry)
            continue
        state, damage = decode_snapshot(data)
        if state is not None:
            entry.update(
                valid=True,
                last_seq=state.last_seq,
                shards=state.shards,
                capacity=state.capacity,
                strategy=state.strategy,
                functions=len(state.functions),
                precomps=len(state.precomps),
                digest=state.digest(),
            )
        else:
            entry.update(valid=False, damage=str(damage))
        scan = scan_records(data)
        entry["records"] = [
            SNAPSHOT_RECORD_NAMES.get(rectype, f"0x{rectype:02x}")
            for rectype, _body, _offset in scan.records
        ]
        report["snapshots"].append(entry)
    for _first_seq, path in list_segments(directory):
        entry = {
            "file": os.path.basename(path),
            "bytes": os.path.getsize(path),
            "records": [],
        }
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            entry["error"] = str(exc)
            report["wal"].append(entry)
            continue
        scan = scan_records(data)
        for _rectype, body, offset in scan.records:
            try:
                seq, request = decode_wal_body(body)
            except ProtocolError as exc:
                entry["records"].append(
                    {"offset": offset, "error": exc.error.detail}
                )
                continue
            entry["records"].append(
                {
                    "seq": seq,
                    "type": type(request).__name__,
                    "offset": offset,
                }
            )
        if scan.damage is not None:
            entry["damage"] = {
                "kind": scan.damage.kind,
                "offset": scan.damage.offset,
                "detail": scan.damage.detail,
            }
        report["wal"].append(entry)
    return report


def _print_report(report: dict) -> None:
    print(f"state directory: {report['directory']}")
    if not report["snapshots"]:
        print("  (no snapshots)")
    for entry in report["snapshots"]:
        if entry.get("valid"):
            print(
                f"  {entry['file']}  {entry['bytes']}B  "
                f"seq={entry['last_seq']}  shards={entry['shards']}  "
                f"capacity={entry['capacity']}  "
                f"strategy={entry['strategy']}  "
                f"functions={entry['functions']}  "
                f"precomps={entry['precomps']}"
            )
            print(f"    digest {entry['digest']}")
        else:
            reason = entry.get("damage") or entry.get("error")
            print(f"  {entry['file']}  {entry['bytes']}B  INVALID: {reason}")
    if not report["wal"]:
        print("  (no WAL segments)")
    for entry in report["wal"]:
        records = entry.get("records", [])
        seqs = [r["seq"] for r in records if "seq" in r]
        span = f"seq {seqs[0]}..{seqs[-1]}" if seqs else "empty"
        print(f"  {entry['file']}  {entry['bytes']}B  {len(records)} records  {span}")
        for record in records:
            if "seq" in record:
                print(
                    f"    #{record['seq']:>6}  {record['type']}  "
                    f"@{record['offset']}"
                )
            else:
                print(f"    @{record['offset']}  MALFORMED: {record['error']}")
        damage = entry.get("damage")
        if damage:
            print(
                f"    DAMAGE: {damage['kind']} at byte {damage['offset']} — "
                f"{damage['detail']}"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.persist.inspect",
        description="Dump the snapshots and WAL records of a state directory.",
    )
    parser.add_argument("directory", help="state directory to inspect")
    parser.add_argument(
        "--json", action="store_true", help="emit one JSON object instead"
    )
    args = parser.parse_args(argv)
    if not os.path.isdir(args.directory):
        print(f"not a directory: {args.directory}", file=sys.stderr)
        return 2
    report = inspect_directory(args.directory)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        _print_report(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
