"""The durability front door: wire a serving client to disk.

:class:`Durability` owns one state directory holding snapshots and WAL
segments, and plugs into a serving client through the client's existing
``observer`` hook — the callback the differential harness already uses
as its linearization witness.  Usage::

    durability = Durability("/var/lib/repro")
    client = ShardedClient(functions, observer=durability.observer)
    durability.attach(client)          # baseline snapshot, then armed
    ...
    durability.snapshot()              # compaction point, any time
    durability.close()

Ordering is the subtle part, so it is pinned down here once:

* The observer is *installed* at construction but *armed* by
  :meth:`attach`.  Until armed it drops everything, so the constructor
  burst of registrations is captured by the baseline snapshot rather
  than logged.
* :meth:`attach` arms the log **before** taking the baseline snapshot.
  ``export_state`` reads the WAL position *while holding every shard
  lock* — no mutation is in flight at that instant, so the snapshot
  covers exactly the appends numbered ``<= pinned`` and recovery replays
  exactly those ``> pinned``.  A mutation racing with attach is thus
  either in the snapshot and skipped at replay, or absent from it and
  replayed — never both, never neither.
* :meth:`snapshot` is the compaction path: same pinned export, then the
  WAL rotates (so the just-covered segment stops being the append
  target) and segments/snapshots the new snapshot supersedes are pruned.
"""

from __future__ import annotations

import os
import threading

from repro.obs import Observability
from repro.persist.policy import is_replayable
from repro.persist.precomp import export_precomputation
from repro.persist.snapshot import (
    SnapshotState,
    list_snapshots,
    make_snapshot_state,
    state_digest,
    write_snapshot,
)
from repro.persist.wal import (
    DEFAULT_FSYNC_INTERVAL,
    DEFAULT_SEGMENT_BYTES,
    WriteAheadLog,
    prune_segments,
)

#: Snapshots kept after compaction (the newest plus one fallback, so a
#: crash *during* snapshot write still leaves a valid restore point).
KEEP_SNAPSHOTS = 2


def capture_state(client, include_precomps: bool = True) -> SnapshotState:
    """One :class:`SnapshotState` of a live client, locks held once.

    ``client`` is anything with the export surface (``export_state`` /
    ``topology``) — :class:`~repro.concurrent.client.ShardedClient` or
    :class:`~repro.concurrent.procs.ProcClient`.  The WAL position is
    pinned at 0; callers coordinating with a live log use
    :meth:`Durability.snapshot`, which pins the real position.
    """
    functions, precomps, _pinned = client.export_state()
    topology = client.topology()
    return make_snapshot_state(
        shards=topology["shards"],
        capacity=topology["capacity"],
        strategy=topology["strategy"],
        functions=functions,
        precomps=(
            tuple(
                export_precomputation(name, pre) for name, pre in precomps
            )
            if include_precomps
            else ()
        ),
        last_seq=0,
    )


def live_state_digest(client) -> str:
    """Digest of a live client's observable state (functions+revisions).

    Computed over the same bytes as :meth:`SnapshotState.digest`, so a
    replica can compare itself against a primary — or against a snapshot
    — without either side shipping its full state.
    """
    functions, _precomps, _pinned = client.export_state()
    return state_digest(functions)


class Durability:
    """Snapshots plus WAL for one serving client, in one directory."""

    def __init__(
        self,
        directory: str,
        fsync: str = "batch",
        fsync_interval: int = DEFAULT_FSYNC_INTERVAL,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        keep_snapshots: int = KEEP_SNAPSHOTS,
        obs: Observability | None = None,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self._fsync = fsync
        self._fsync_interval = fsync_interval
        self._segment_bytes = segment_bytes
        self._keep_snapshots = max(1, keep_snapshots)
        self._obs = obs if obs is not None else Observability()
        self._wal: WriteAheadLog | None = None
        self._client = None
        self._armed = False
        self._snapshot_lock = threading.Lock()
        self._closed = False
        self._obs_snap_writes = self._obs.counter("snapshot.writes")
        self._obs_snap_bytes = self._obs.gauge("snapshot.bytes")
        self._obs_snap_functions = self._obs.gauge("snapshot.functions")
        self._obs_snap_precomps = self._obs.gauge("snapshot.precomps")

    # ------------------------------------------------------------------
    # The serving-side hook
    # ------------------------------------------------------------------
    def observer(self, request, response) -> None:
        """Client observer: log the pair iff armed and replay-worthy.

        Runs at the linearization point (shard locks held), so append
        order is a valid linearization of the run.  Pass this as the
        client's ``observer=``; compose manually when tracing too.
        """
        if not self._armed:
            return
        if not is_replayable(request, response):
            return
        self._wal.append(request)

    @property
    def wal(self) -> WriteAheadLog | None:
        """The underlying log (``None`` before :meth:`attach`)."""
        return self._wal

    @property
    def last_seq(self) -> int:
        """Sequence number of the last logged mutation (0 before attach)."""
        return self._wal.last_seq if self._wal is not None else 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, client, start_seq: int = 0) -> str:
        """Arm the log over ``client`` and write the baseline snapshot.

        ``start_seq`` is where the log resumes numbering — 0 for a fresh
        directory; recovery passes the last replayed sequence so new
        appends extend the history it just consumed.  Returns the
        baseline snapshot's path.
        """
        if self._closed:
            raise ValueError("durability layer is closed")
        if self._armed:
            raise ValueError("already attached")
        self._client = client
        if self._wal is None:
            self._wal = WriteAheadLog(
                self.directory,
                fsync=self._fsync,
                fsync_interval=self._fsync_interval,
                segment_bytes=self._segment_bytes,
                start_seq=start_seq,
                obs=self._obs,
            )
        self._armed = True  # before the snapshot — see module docstring
        return self.snapshot()

    def snapshot(self) -> str:
        """Write a snapshot at the current WAL position, then compact.

        The export pins the WAL position under every shard lock, so the
        snapshot and the ``pinned`` sequence agree exactly.  Afterwards
        the log rotates and segments fully covered by the new snapshot
        are deleted, as are snapshots older than the retention window.
        Returns the new snapshot's path.
        """
        if not self._armed:
            raise ValueError("not attached to a client")
        with self._snapshot_lock:
            wal = self._wal
            functions, precomps, pinned = self._client.export_state(
                pin=lambda: wal.last_seq
            )
            topology = self._client.topology()
            state = make_snapshot_state(
                shards=topology["shards"],
                capacity=topology["capacity"],
                strategy=topology["strategy"],
                functions=functions,
                precomps=tuple(
                    export_precomputation(name, pre)
                    for name, pre in precomps
                ),
                last_seq=pinned,
            )
            path = write_snapshot(self.directory, state)
            self._obs_snap_writes.add(1)
            self._obs_snap_bytes.set(os.path.getsize(path))
            self._obs_snap_functions.set(len(state.functions))
            self._obs_snap_precomps.set(len(state.precomps))
            wal.rotate()
            prune_segments(self.directory, pinned)
            self._prune_snapshots()
            return path

    def _prune_snapshots(self) -> None:
        snapshots = list_snapshots(self.directory)
        for _seq, path in snapshots[: -self._keep_snapshots]:
            os.unlink(path)

    def close(self) -> None:
        """Disarm and flush; idempotent.  The client is not closed."""
        self._armed = False
        if self._closed:
            return
        self._closed = True
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "Durability":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Durability({self.directory!r}, armed={self._armed}, "
            f"last_seq={self.last_seq})"
        )
