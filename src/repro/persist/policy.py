"""Which ``(request, response)`` pairs a write-ahead log must replay.

One predicate, shared by every durability consumer — the WAL appender,
crash recovery, replica catch-up and ``ProcClient``'s per-worker restart
recipe — so "what counts as a mutation" cannot drift between them.

The rules, and why:

* **Queries never.**  ``LivenessQuery`` / ``BatchLiveness`` /
  ``LiveSetRequest`` / ``StatsRequest`` read state; replaying them is
  harmless but pointless, and logging them would make the WAL scale
  with traffic instead of with edits.
* **Evictions never.**  ``EvictRequest`` changes cache geometry only,
  and cache geometry is *unobservable by protocol design* — eviction
  bumps no revision and ``EvictResponse`` does not report residency.
  Logging evictions would leak geometry into durable state and force
  recovery to reproduce an LRU order no response can distinguish.
* **Successful mutations always** — ``NotifyRequest``,
  ``DestructRequest``, ``AllocateRequest``, ``CompileSourceRequest``.
* **Failed destructs/allocates too**, *unless* the error code proves
  nothing was touched.  An allocate can fail after pessimistically
  invalidating its function's checker (revision bumped); that
  deterministic side effect must survive into the replayed state or
  later ``STALE_HANDLE`` responses diverge.  ``UNKNOWN_FUNCTION`` /
  ``STALE_HANDLE`` / ``INVALID_REQUEST`` / ``UNSUPPORTED`` all fail
  before any mutation, so those are skipped.
* **Worker failures never.**  A multi-process dispatch answered with a
  structured "worker crashed" INTERNAL error may or may not have
  executed; the crash-injection differential excludes those responses
  from replay, and the WAL must make the same call.
"""

from __future__ import annotations

from repro.api.errors import ApiError, ErrorCode
from repro.api.protocol import (
    AllocateRequest,
    CompileSourceRequest,
    DestructRequest,
    NotifyRequest,
    Request,
    Response,
)

#: Error codes that guarantee the request failed before mutating state.
UNTOUCHED_CODES = frozenset(
    (
        ErrorCode.UNKNOWN_FUNCTION,
        ErrorCode.STALE_HANDLE,
        ErrorCode.INVALID_REQUEST,
        ErrorCode.UNSUPPORTED,
    )
)


def is_worker_failure(error: ApiError | None) -> bool:
    """Is this the structured error of a crashed/unresponsive worker?

    The canonical predicate (``repro.concurrent.procs`` re-exports it):
    an ``INTERNAL`` whose detail names a worker that crashed or timed
    out.  Such a response proves nothing about whether the request's
    effects landed, so differential replay and the WAL both exclude it.
    """
    return (
        error is not None
        and error.code == ErrorCode.INTERNAL
        and error.detail.startswith("worker ")
        and ("crashed" in error.detail or "did not answer" in error.detail)
    )


def is_replayable(request: Request, response: Response) -> bool:
    """Must this confirmed ``(request, response)`` land in durable state?"""
    error = getattr(response, "error", None)
    if is_worker_failure(error):
        return False
    if isinstance(request, (NotifyRequest, CompileSourceRequest)):
        # A failed notify touched nothing (unknown/stale handles reject
        # before the bump); a failed compile registered nothing
        # (registration is all-or-nothing).
        return error is None
    if isinstance(request, (DestructRequest, AllocateRequest)):
        if error is None:
            return True
        return error.code not in UNTOUCHED_CODES
    return False
