"""The write-ahead log: mutating requests, append-only, in commit order.

Appends happen at the serving layer's existing linearization point — the
``observer`` hook fires with ``(request, response)`` while the request's
shard locks (or worker mutex) are still held — so WAL order *is* a valid
linearization of the run; the log's own lock only orders appends of
requests on disjoint shards, which commute.  Each record's body is the
request's self-contained bin2 wire frame (throwaway interner), prefixed
with the record's sequence number: the exact encoding the wire already
round-trips under hypothesis, reused rather than reinvented.

Durability knobs:

* ``fsync="always"`` — one ``fsync`` per append (every confirmed
  mutation survives power loss; slowest);
* ``fsync="batch"`` — ``fsync`` every ``fsync_interval`` appends and on
  rotation/close (bounded loss window; the default);
* ``fsync="never"`` — leave flushing to the OS (fastest; crash-consistent
  thanks to per-record CRCs, but the tail may be lost).

Segments rotate at ``segment_bytes``; each file is named by the sequence
number of its *first* record (``wal-<seq016>.log``) so recovery and
compaction order and prune them by name alone.  Compaction — deleting
every segment whose records a snapshot already covers — lives here as
:func:`prune_segments`; taking the snapshot itself is the front door's
job (:class:`repro.persist.durability.Durability`).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from repro.api.codec import (
    Reader,
    decode_request_bin2,
    encode_request_bin2,
    write_uvarint,
)
from repro.api.errors import ProtocolError
from repro.api.protocol import Request
from repro.obs import Observability
from repro.persist.records import RecordDamage, encode_record, scan_records

#: The one WAL record type: a sequenced request frame.
REC_REQUEST = 0x10

#: WAL segment filename pattern (field = first sequence number inside).
SEGMENT_PATTERN = "wal-{seq:016d}.log"

#: Valid fsync policies.
FSYNC_POLICIES = ("always", "batch", "never")

#: Default appends between fsyncs under the ``batch`` policy.
DEFAULT_FSYNC_INTERVAL = 64

#: Default segment rotation threshold.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


def segment_path(directory: str, first_seq: int) -> str:
    return os.path.join(directory, SEGMENT_PATTERN.format(seq=first_seq))


def list_segments(directory: str) -> list[tuple[int, str]]:
    """``(first_seq, path)`` of every WAL segment, oldest first."""
    found = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        if name.startswith("wal-") and name.endswith(".log"):
            try:
                seq = int(name[4:-4])
            except ValueError:
                continue
            found.append((seq, os.path.join(directory, name)))
    return sorted(found)


def encode_wal_record(seq: int, request: Request) -> bytes:
    """One framed WAL record for ``request`` at sequence ``seq``."""
    body = bytearray()
    write_uvarint(body, seq)
    frame = encode_request_bin2(request)
    write_uvarint(body, len(frame))
    body += frame
    return encode_record(REC_REQUEST, body)


def decode_wal_body(body: bytes) -> tuple[int, Request]:
    """Inverse of the body half of :func:`encode_wal_record`; raises
    :class:`ProtocolError` on malformed input (callers convert to
    structured damage)."""
    r = Reader(body)
    seq = r.uvarint()
    frame = r.take(r.uvarint())
    r.expect_end()
    return seq, decode_request_bin2(frame)


class WriteAheadLog:
    """Appender over a directory of rotating, CRC-framed segments.

    Thread-safe: one internal lock serializes append/rotate/fsync.  It
    is always the *last* lock acquired (the observer already holds the
    request's shard locks) and never held while any other lock is taken,
    so it cannot participate in a deadlock cycle.
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "batch",
        fsync_interval: int = DEFAULT_FSYNC_INTERVAL,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        start_seq: int = 0,
        obs: Observability | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval < 1:
            raise ValueError(
                f"fsync_interval must be at least 1, got {fsync_interval}"
            )
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self._fsync = fsync
        self._fsync_interval = fsync_interval
        self._segment_bytes = segment_bytes
        self._lock = threading.Lock()
        #: Sequence number of the most recent append (``start_seq`` when
        #: none yet) — recovery passes the replayed position back in so
        #: new appends continue the numbering.
        self._last_seq = start_seq
        self._handle = None
        self._written = 0
        self._unsynced = 0
        self._closed = False
        obs = obs if obs is not None else Observability()
        self._obs_appends = obs.counter("wal.appends")
        self._obs_bytes = obs.counter("wal.append_bytes")
        self._obs_fsyncs = obs.counter("wal.fsyncs")
        self._obs_rotations = obs.counter("wal.rotations")
        self._obs_last_seq = obs.gauge("wal.last_seq")
        self._obs_last_seq.set(start_seq)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent append."""
        return self._last_seq

    def append(self, request: Request) -> int:
        """Durably append one request; returns its sequence number."""
        with self._lock:
            if self._closed:
                raise ValueError("write-ahead log is closed")
            seq = self._last_seq + 1
            record = encode_wal_record(seq, request)
            if self._handle is None or self._written >= self._segment_bytes:
                self._rotate_locked(seq)
            self._handle.write(record)
            self._written += len(record)
            self._last_seq = seq
            self._unsynced += 1
            if self._fsync == "always" or (
                self._fsync == "batch"
                and self._unsynced >= self._fsync_interval
            ):
                self._sync_locked()
            self._obs_appends.add(1)
            self._obs_bytes.add(len(record))
            self._obs_last_seq.set(seq)
            return seq

    def _rotate_locked(self, first_seq: int) -> None:
        if self._handle is not None:
            self._sync_locked()
            self._handle.close()
            self._obs_rotations.add(1)
        self._handle = open(segment_path(self.directory, first_seq), "ab")
        self._written = self._handle.tell()

    def _sync_locked(self) -> None:
        if self._handle is None or self._unsynced == 0:
            return
        self._handle.flush()
        if self._fsync != "never":
            os.fsync(self._handle.fileno())
            self._obs_fsyncs.add(1)
        self._unsynced = 0

    def sync(self) -> None:
        """Flush (and, policy permitting, fsync) any buffered appends."""
        with self._lock:
            self._sync_locked()

    def rotate(self) -> None:
        """Force a segment boundary at the current position.

        Called after a snapshot so the just-covered segment stops being
        the append target and becomes prunable.  A no-op when the active
        segment is empty (or the log has never been written).
        """
        with self._lock:
            if self._closed or self._handle is None or self._written == 0:
                return
            self._rotate_locked(self._last_seq + 1)

    def close(self) -> None:
        """Flush and close the active segment; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._handle is not None:
                # Close must not lose buffered appends even under
                # fsync="never": flush always, fsync per policy.
                self._handle.flush()
                if self._fsync != "never" and self._unsynced:
                    os.fsync(self._handle.fileno())
                    self._obs_fsyncs.add(1)
                self._unsynced = 0
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.directory!r}, last_seq={self._last_seq}, "
            f"fsync={self._fsync!r})"
        )


# ----------------------------------------------------------------------
# Reading (never raises)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WalScan:
    """Every readable WAL entry plus a report of anything unreadable."""

    #: ``(seq, request)`` in log order.
    entries: tuple[tuple[int, Request], ...]
    #: Damage reports, one per affected segment (path prefixed).
    damage: tuple[RecordDamage, ...]
    #: Highest sequence number read (0 when the log is empty).
    last_seq: int


def read_wal(directory: str, after_seq: int = 0) -> WalScan:
    """Read every entry with ``seq > after_seq``; never raises.

    Damage semantics follow the classic WAL rule: within a segment,
    records after the first damaged one are discarded (a torn tail from
    a crash mid-append truncates cleanly; a CRC hit poisons the rest of
    that file), and any *later* segments are skipped entirely — their
    records would leave a gap in the sequence.
    """
    entries: list[tuple[int, Request]] = []
    damage: list[RecordDamage] = []
    last = after_seq
    segments = list_segments(directory)
    for position, (first_seq, path) in enumerate(segments):
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            damage.append(RecordDamage("unreadable", 0, f"{path}: {exc}"))
            break
        scan = scan_records(data)
        for rectype, body, offset in scan.records:
            if rectype != REC_REQUEST:
                damage.append(
                    RecordDamage(
                        "malformed",
                        offset,
                        f"{os.path.basename(path)}: unexpected record "
                        f"type {rectype:#04x} in WAL segment",
                    )
                )
                break
            try:
                seq, request = decode_wal_body(body)
            except ProtocolError as exc:
                damage.append(
                    RecordDamage(
                        "malformed",
                        offset,
                        f"{os.path.basename(path)}: {exc.error.detail}",
                    )
                )
                break
            if seq > last:
                entries.append((seq, request))
                last = seq
        else:
            if scan.damage is not None:
                bad = scan.damage
                damage.append(
                    RecordDamage(
                        bad.kind,
                        bad.offset,
                        f"{os.path.basename(path)}: {bad.detail}",
                    )
                )
                if position + 1 < len(segments):
                    damage.append(
                        RecordDamage(
                            "gap",
                            0,
                            f"{len(segments) - position - 1} newer segment(s) "
                            "skipped after damage (their records would leave "
                            "a sequence gap)",
                        )
                    )
                break
            continue
        break
    return WalScan(tuple(entries), tuple(damage), last)


def repair(directory: str) -> list[str]:
    """Physically truncate torn tails and delete post-damage segments.

    Returns a description of each action taken.  Idempotent; safe to run
    before re-arming a :class:`WriteAheadLog` over a recovered directory
    so fresh appends land after a clean tail instead of after garbage.
    """
    actions: list[str] = []
    segments = list_segments(directory)
    for position, (_first_seq, path) in enumerate(segments):
        with open(path, "rb") as handle:
            data = handle.read()
        scan = scan_records(data)
        if scan.damage is None:
            continue
        keep = scan.clean_length
        if keep:
            with open(path, "r+b") as handle:
                handle.truncate(keep)
                handle.flush()
                os.fsync(handle.fileno())
            actions.append(
                f"truncated {os.path.basename(path)} to {keep} clean bytes "
                f"({scan.damage.kind} damage at {scan.damage.offset})"
            )
        else:
            os.unlink(path)
            actions.append(
                f"deleted {os.path.basename(path)} (no clean records)"
            )
        for _seq, later in segments[position + 1 :]:
            os.unlink(later)
            actions.append(
                f"deleted {os.path.basename(later)} (follows damage)"
            )
        break
    return actions


def prune_segments(directory: str, covered_seq: int) -> list[str]:
    """Delete segments every record of which is ``<= covered_seq``.

    The compaction half of snapshotting: once a snapshot includes
    sequence ``covered_seq``, any segment whose *successor's* first
    sequence is ``<= covered_seq + 1`` holds only covered records.  The
    newest segment is always kept (it is the append target).  Returns
    the deleted paths.
    """
    segments = list_segments(directory)
    deleted: list[str] = []
    for position, (first_seq, path) in enumerate(segments):
        if position + 1 >= len(segments):
            break  # never delete the active (newest) segment
        next_first = segments[position + 1][0]
        if next_first <= covered_seq + 1 and first_seq <= covered_seq:
            os.unlink(path)
            deleted.append(path)
        else:
            break
    return deleted
