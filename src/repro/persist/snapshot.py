"""The versioned snapshot format: module IR, revisions, service state.

A snapshot is a flat file of :mod:`repro.persist.records` records::

    HEADER    | topology (shards, capacity, strategy), counts, last_seq
    FUNCTION* | one per registered function, in registration order:
              |   name, revision, printed IR
    PRECOMP*  | one per resident checker with a built precomputation,
              |   in shard order then LRU order (least-recent first):
              |   the flat numeric arrays (see repro.persist.precomp)
    END       | state digest + record count (the completeness witness)

Two properties the tests pin down:

* **Fixpoint.**  Restoring a snapshot and re-snapshotting produces the
  identical bytes.  Functions round-trip through the IR printer/parser
  (a proven fixpoint, including destructed non-SSA programs), revisions
  are copied verbatim, and precomputation arrays are re-exported from
  the restore shim which holds the deserialized values themselves.
* **Cache geometry is unobservable.**  PRECOMP records change which
  checkers are *resident* after restore — never what any query answers.
  Evictions and LRU churn before a snapshot therefore cannot change a
  restored replica's responses (the differential suite proves it).

The ``last_seq`` field names the WAL sequence number the snapshot
includes; recovery replays only strictly newer log records, and
compaction may delete segments at or below it.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, replace

from repro.api.codec import Reader, write_str, write_uvarint
from repro.api.errors import ProtocolError
from repro.persist.precomp import PrecompState
from repro.persist.records import RecordDamage, encode_record, scan_records

#: Record types inside a snapshot file.
REC_HEADER = 0x01
REC_FUNCTION = 0x02
REC_PRECOMP = 0x03
REC_END = 0x0F

#: Human-readable record-type names (inspect CLI).
SNAPSHOT_RECORD_NAMES = {
    REC_HEADER: "header",
    REC_FUNCTION: "function",
    REC_PRECOMP: "precomp",
    REC_END: "end",
}


@dataclass(frozen=True)
class FunctionState:
    """One registered function's durable identity."""

    name: str
    #: Current edit revision — restored exactly, because ``STALE_HANDLE``
    #: semantics depend on it.
    revision: int
    #: Printed IR (the print/parse fixpoint is the cloning mechanism).
    source: str


@dataclass(frozen=True)
class SnapshotState:
    """Everything one snapshot file carries, as plain values."""

    #: Shard / worker count the server was built with.
    shards: int
    #: Total resident-checker budget (sum of per-shard capacities).
    capacity: int
    #: ``TargetSets`` strategy.
    strategy: str
    #: Highest WAL sequence number included in this state.
    last_seq: int
    #: Registered functions, in registration order.
    functions: tuple[FunctionState, ...]
    #: Resident precomputations, shard order then LRU order.
    precomps: tuple[PrecompState, ...]

    def digest(self) -> str:
        """The observable-state digest (see :func:`state_digest`)."""
        return state_digest(self.functions)


def state_digest(functions) -> str:
    """SHA-256 over ``(name, revision, source)`` in registration order.

    This is the *observable* state — what decides every response — so it
    is also the replica divergence check: two servers with equal digests
    answer every request identically (cache geometry, which the digest
    deliberately ignores, is unobservable by protocol design).
    """
    hasher = hashlib.sha256()
    for entry in functions:
        name, revision, source = (
            (entry.name, entry.revision, entry.source)
            if isinstance(entry, FunctionState)
            else entry
        )
        hasher.update(name.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(str(revision).encode("ascii"))
        hasher.update(b"\x00")
        hasher.update(source.encode("utf-8"))
        hasher.update(b"\x01")
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _w_mask(out: bytearray, value: int) -> None:
    raw = value.to_bytes((value.bit_length() + 7) // 8, "little")
    write_uvarint(out, len(raw))
    out += raw


def _r_mask(r: Reader) -> int:
    return int.from_bytes(r.blob(), "little")


def encode_snapshot(state: SnapshotState) -> bytes:
    """The complete snapshot file for ``state``, deterministically."""
    chunks: list[bytes] = []
    header = bytearray()
    write_uvarint(header, state.shards)
    write_uvarint(header, state.capacity)
    write_str(header, state.strategy)
    write_uvarint(header, len(state.functions))
    write_uvarint(header, len(state.precomps))
    write_uvarint(header, state.last_seq)
    chunks.append(encode_record(REC_HEADER, header))
    for fn in state.functions:
        body = bytearray()
        write_str(body, fn.name)
        write_uvarint(body, fn.revision)
        write_str(body, fn.source)
        chunks.append(encode_record(REC_FUNCTION, body))
    for pre in state.precomps:
        body = bytearray()
        write_str(body, pre.name)
        write_str(body, pre.strategy)
        body.append(1 if pre.reducible else 0)
        write_uvarint(body, len(pre.order))
        for block in pre.order:
            write_str(body, block)
        for value in pre.maxnums:
            write_uvarint(body, value)
        for mask in pre.r_masks:
            _w_mask(body, mask)
        for mask in pre.t_masks:
            _w_mask(body, mask)
        _w_mask(body, pre.back_mask)
        chunks.append(encode_record(REC_PRECOMP, body))
    end = bytearray()
    write_str(end, state.digest())
    write_uvarint(end, len(chunks) + 1)  # every record, END included
    chunks.append(encode_record(REC_END, end))
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Decoding (never raises: structured damage instead)
# ----------------------------------------------------------------------
def decode_snapshot(data: bytes) -> tuple[SnapshotState | None, RecordDamage | None]:
    """Parse one snapshot byte string.

    Returns ``(state, None)`` on success and ``(None, damage)`` for any
    byte-level damage, structural violation, missing END record or
    digest mismatch — a snapshot is all-or-nothing (unlike the WAL,
    whose clean prefix is still useful).
    """
    scan = scan_records(data)
    if scan.damage is not None:
        return None, scan.damage
    records = scan.records
    if not records:
        return None, RecordDamage("torn", 0, "empty snapshot file")
    try:
        rectype, body, _offset = records[0]
        if rectype != REC_HEADER:
            return None, RecordDamage(
                "malformed", 0, f"first record type {rectype:#04x} is not a header"
            )
        r = Reader(body)
        shards = r.uvarint()
        capacity = r.uvarint()
        strategy = r.str_()
        n_functions = r.uvarint()
        n_precomps = r.uvarint()
        last_seq = r.uvarint()
        r.expect_end()
        if records[-1][0] != REC_END:
            return None, RecordDamage(
                "torn",
                len(data),
                "snapshot has no END record (writer died mid-snapshot?)",
            )
        functions: list[FunctionState] = []
        precomps: list[PrecompState] = []
        for rectype, body, offset in records[1:-1]:
            r = Reader(body)
            if rectype == REC_FUNCTION:
                name = r.str_()
                revision = r.uvarint()
                source = r.str_()
                r.expect_end()
                functions.append(FunctionState(name, revision, source))
            elif rectype == REC_PRECOMP:
                name = r.str_()
                pre_strategy = r.str_()
                reducible = bool(r.u8())
                count = r.uvarint()
                order = tuple(r.str_() for _ in range(count))
                maxnums = tuple(r.uvarint() for _ in range(count))
                r_masks = tuple(_r_mask(r) for _ in range(count))
                t_masks = tuple(_r_mask(r) for _ in range(count))
                back_mask = _r_mask(r)
                r.expect_end()
                precomps.append(
                    PrecompState(
                        name=name,
                        strategy=pre_strategy,
                        reducible=reducible,
                        order=order,
                        maxnums=maxnums,
                        r_masks=r_masks,
                        t_masks=t_masks,
                        back_mask=back_mask,
                    )
                )
            else:
                return None, RecordDamage(
                    "malformed",
                    offset,
                    f"unexpected record type {rectype:#04x} in snapshot body",
                )
        if len(functions) != n_functions or len(precomps) != n_precomps:
            return None, RecordDamage(
                "malformed",
                0,
                f"header promises {n_functions} functions / {n_precomps} "
                f"precomps, file has {len(functions)} / {len(precomps)}",
            )
        r = Reader(records[-1][1])
        declared_digest = r.str_()
        declared_records = r.uvarint()
        r.expect_end()
        if declared_records != len(records):
            return None, RecordDamage(
                "malformed",
                records[-1][2],
                f"END record promises {declared_records} records, "
                f"file has {len(records)}",
            )
        state = SnapshotState(
            shards=shards,
            capacity=capacity,
            strategy=strategy,
            last_seq=last_seq,
            functions=tuple(functions),
            precomps=tuple(precomps),
        )
        if state.digest() != declared_digest:
            return None, RecordDamage(
                "digest",
                records[-1][2],
                f"state digest {state.digest()[:12]}… does not match the "
                f"recorded {declared_digest[:12]}…",
            )
        return state, None
    except ProtocolError as exc:
        return None, RecordDamage("malformed", 0, str(exc.error.detail))


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
#: Snapshot filename pattern; the zero-padded field is ``last_seq`` so a
#: lexicographic sort is a recency sort.
SNAPSHOT_PATTERN = "snap-{seq:016d}.snap"


def snapshot_path(directory: str, last_seq: int) -> str:
    return os.path.join(directory, SNAPSHOT_PATTERN.format(seq=last_seq))


def list_snapshots(directory: str) -> list[tuple[int, str]]:
    """``(last_seq, path)`` of every snapshot file, oldest first."""
    found = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        if name.startswith("snap-") and name.endswith(".snap"):
            try:
                seq = int(name[5:-5])
            except ValueError:
                continue
            found.append((seq, os.path.join(directory, name)))
    return sorted(found)


def write_snapshot(directory: str, state: SnapshotState) -> str:
    """Atomically write ``state``; returns the snapshot's path.

    Write-to-temp + ``fsync`` + ``rename`` — a crash mid-write leaves the
    previous snapshot untouched and at worst an orphan temp file.
    """
    os.makedirs(directory, exist_ok=True)
    data = encode_snapshot(state)
    path = snapshot_path(directory, state.last_seq)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_snapshot(path: str) -> tuple[SnapshotState | None, RecordDamage | None]:
    """Read and decode one snapshot file; never raises on damage."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        return None, RecordDamage("unreadable", 0, str(exc))
    return decode_snapshot(data)


def load_newest_snapshot(
    directory: str,
) -> tuple[SnapshotState | None, str | None, list[RecordDamage]]:
    """The newest *valid* snapshot in ``directory``.

    Damaged candidates are skipped (recorded in the returned damage
    list) and the next-newest is tried — a torn snapshot from a crash
    mid-compaction must never mask an older good one.
    """
    damage: list[RecordDamage] = []
    for _seq, path in reversed(list_snapshots(directory)):
        state, bad = load_snapshot(path)
        if state is not None:
            return state, path, damage
        assert bad is not None
        damage.append(
            RecordDamage(bad.kind, bad.offset, f"{os.path.basename(path)}: {bad.detail}")
        )
    return None, None, damage


def make_snapshot_state(
    shards: int,
    capacity: int,
    strategy: str,
    functions,
    precomps=(),
    last_seq: int = 0,
) -> SnapshotState:
    """Build a :class:`SnapshotState` from raw export tuples."""
    return SnapshotState(
        shards=shards,
        capacity=capacity,
        strategy=strategy,
        last_seq=last_seq,
        functions=tuple(
            entry
            if isinstance(entry, FunctionState)
            else FunctionState(*entry)
            for entry in functions
        ),
        precomps=tuple(precomps),
    )


def with_last_seq(state: SnapshotState, last_seq: int) -> SnapshotState:
    """``state`` with its WAL position replaced."""
    return replace(state, last_seq=last_seq)
