"""Parallel-copy sequentialisation.

φ-functions of a block conceptually execute *in parallel* on each incoming
edge: all sources are read before any destination is written.  When SSA
destruction lowers them to ordinary ``copy`` instructions at the end of the
predecessor blocks it must therefore order the copies carefully (and break
cycles with a temporary), otherwise it recreates the classic *swap problem*.

:func:`sequentialize` turns a mapping ``dest ← src`` into an equivalent
sequence of simple copies, introducing at most one temporary per cycle.
The algorithm is the usual one: repeatedly emit a copy whose destination is
not needed as a source any more; when only cycles remain, save one
destination into a temporary and redirect its readers.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.ir.value import Value, Variable


def sequentialize(
    copies: Sequence[tuple[Variable, Value]],
    make_temp: Callable[[], Variable],
) -> list[tuple[Variable, Value]]:
    """Order parallel copies into an equivalent sequential list.

    Parameters
    ----------
    copies:
        ``(dest, src)`` pairs; destinations must be distinct variables.
    make_temp:
        Factory producing a fresh temporary variable when a cycle has to be
        broken.

    Returns the ordered list of ``(dest, src)`` copies to emit.
    """
    destinations = [dest for dest, _ in copies]
    if len(set(map(id, destinations))) != len(destinations):
        raise ValueError("parallel copy has duplicate destinations")

    pending: dict[Variable, Value] = {
        dest: src for dest, src in copies if src is not dest
    }
    result: list[tuple[Variable, Value]] = []
    while pending:
        emitted = False
        for dest in list(pending):
            needed_as_source = any(src is dest for src in pending.values())
            if not needed_as_source:
                result.append((dest, pending.pop(dest)))
                emitted = True
        if emitted:
            continue
        # Only cycles remain: every pending destination is still needed as a
        # source.  Save one destination's current value in a temporary and
        # redirect its readers there, which frees that destination.
        dest = next(iter(pending))
        temp = make_temp()
        result.append((temp, dest))
        for other, src in pending.items():
            if src is dest:
                pending[other] = temp
    return result
