"""Deprecated shim — the out-of-SSA pass lives in :mod:`repro.ssadestruct`.

The single-shot destruction pass that used to live here was superseded by
the staged pipeline (:func:`repro.ssadestruct.destruct`); this module only
re-exports the back-compat surface of
:mod:`repro.ssadestruct.legacy` so pre-PR-4 imports keep working for one
release.
"""

from __future__ import annotations

import warnings

from repro.ssadestruct.legacy import (
    DestructionReport,
    OracleFactory,
    destruct_ssa,
)
from repro.ssadestruct.pipeline import phi_related_variables

warnings.warn(
    "repro.ssa.destruction is deprecated; use repro.ssadestruct "
    "(destruct, phi_related_variables) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "DestructionReport",
    "OracleFactory",
    "destruct_ssa",
    "phi_related_variables",
]
