"""SSA destruction driven by liveness queries (the paper's client pass).

The runtime experiments of the paper (Table 2) measure the liveness queries
issued by LAO's SSA destruction, which follows the third method of Sreedhar
et al. and decides φ-coalescing with the Budimlić interference test.  This
module implements such a pass for our IR.

For every φ ``a₀ ← φ(a₁ : p₁, …, aₙ : pₙ)`` the pass builds a *congruence
class* around a fresh representative ``z``.  The φ result and every operand
are candidate members; a candidate ``v`` joins the class — meaning it will
simply be renamed to ``z`` and needs no copy — only when two conditions
hold, both answered with liveness queries on the (unmodified) SSA program:

1. ``v`` interferes with no current member of the class, using the
   Budimlić test ("is the dominating variable live directly after the
   definition of the dominated one?");
2. ``v`` is not live at the *parallel-copy point* (the end) of any other
   predecessor of the φ — those are the program points where ``z`` may be
   written by the copies the pass inserts, so a member whose old value is
   still needed there would be clobbered.  This condition is what handles
   the classic *lost-copy* situation (a φ result that is live out of its
   own block gets a copy instead of being renamed).

Rejected candidates get copies: ``z ← aᵢ`` at the end of ``pᵢ`` for
operands, ``a₀ ← z`` right after the φs for the result.  The per-block edge
copies are emitted as a *parallel copy* (sequentialised by
:mod:`repro.ssa.parallel_copy`, which resolves the swap problem with a
temporary), the φs are deleted, and the coalesced members are renamed to
their representative.

Critical edges are split first so the copies can live on an edge without
affecting other paths; the liveness oracle is built after the split so its
precomputation matches the final CFG.  The result is a semantically
equivalent non-SSA function — the interpreter-based property tests execute
thousands of random programs before and after destruction to check this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.ir.function import Function
from repro.ir.instruction import Instruction, Opcode, Phi
from repro.ir.value import Value, Variable
from repro.liveness.oracle import LivenessOracle
from repro.ssa.coalescing import InterferenceChecker
from repro.ssa.defuse import DefUseChains
from repro.ssa.parallel_copy import sequentialize


@dataclass
class DestructionReport:
    """Statistics of one SSA-destruction run."""

    phis_processed: int = 0
    resources_processed: int = 0
    resources_coalesced: int = 0
    copies_inserted: int = 0
    critical_edges_split: int = 0
    interference_tests: int = 0
    parallel_copy_temps: int = 0
    #: φ-related variables (results and arguments of φ-functions) — the set
    #: LAO restricts its native liveness precomputation to.
    phi_related_variables: list[Variable] = field(default_factory=list)


OracleFactory = Callable[[Function], LivenessOracle]


def _default_oracle_factory(function: Function) -> LivenessOracle:
    # Imported lazily to avoid a package-level import cycle
    # (repro.core imports repro.ssa.defuse).
    from repro.core.live_checker import FastLivenessChecker

    return FastLivenessChecker(function)


def phi_related_variables(function: Function) -> list[Variable]:
    """Results and variable arguments of every φ (the queried universe)."""
    related: dict[int, Variable] = {}
    for phi in function.phis():
        if phi.result is not None:
            related.setdefault(id(phi.result), phi.result)
        for value in phi.incoming.values():
            if isinstance(value, Variable):
                related.setdefault(id(value), value)
    return list(related.values())


class _Destructor:
    """One run of the out-of-SSA translation."""

    def __init__(self, function: Function, oracle: LivenessOracle) -> None:
        self.function = function
        self.oracle = oracle
        self.defuse = DefUseChains(function)
        self.interference = InterferenceChecker(function, oracle, defuse=self.defuse)
        self.report = DestructionReport()
        #: variable id -> representative it was coalesced to
        self.renaming: dict[int, Variable] = {}
        #: pred block name -> scheduled (dest, src) edge copies
        self.edge_copies: dict[str, list[tuple[Variable, Value]]] = {}
        #: φ block name -> scheduled (result, representative) result copies
        self.result_copies: dict[str, list[tuple[Variable, Variable]]] = {}
        self._web_counter = 0
        self._temp_counter = 0

    # ------------------------------------------------------------------
    # Analysis phase (no mutation, all liveness queries happen here)
    # ------------------------------------------------------------------
    def analyse(self) -> None:
        self.report.phi_related_variables = phi_related_variables(self.function)
        for block in self.function:
            for phi in block.phis():
                self._analyse_phi(block.name, phi)
        self.report.interference_tests = self.interference.tests

    def _analyse_phi(self, block_name: str, phi: Phi) -> None:
        self.report.phis_processed += 1
        result = phi.result
        assert result is not None
        representative = Variable(f"{result.base_name}.web{self._web_counter}")
        self._web_counter += 1
        members: list[Variable] = []
        preds = list(phi.incoming)

        # The φ result is the first candidate member.  It may already have
        # been claimed by another φ's class (as an operand flowing around a
        # loop), in which case it must keep its own name here and receive a
        # result copy.
        self.report.resources_processed += 1
        if id(result) not in self.renaming and self._can_join(
            result, members, preds, own_pred=None
        ):
            members.append(result)
            self.renaming[id(result)] = representative
            self.report.resources_coalesced += 1
        else:
            self.result_copies.setdefault(block_name, []).append(
                (result, representative)
            )
            self.report.copies_inserted += 1

        # Operand candidates, one per predecessor.
        for pred in preds:
            value = phi.incoming[pred]
            self.report.resources_processed += 1
            if isinstance(value, Variable) and value in self.defuse:
                already = self.renaming.get(id(value))
                if already is representative:
                    # Same variable flowing in from several predecessors.
                    self.report.resources_coalesced += 1
                    continue
                # An operand defined inside the φ's own block (it can only
                # flow in around a loop) keeps its name and gets an edge
                # copy: renaming it would move a definition of the
                # representative into the φ block, past the point where the
                # incoming value is still needed.
                defined_in_phi_block = self.defuse.def_block(value) == block_name
                if (
                    already is None
                    and not defined_in_phi_block
                    and self._can_join(value, members, preds, own_pred=pred)
                ):
                    members.append(value)
                    self.renaming[id(value)] = representative
                    self.report.resources_coalesced += 1
                    continue
            self.edge_copies.setdefault(pred, []).append((representative, value))
            self.report.copies_inserted += 1

    def _can_join(
        self,
        candidate: Variable,
        members: list[Variable],
        preds: list[str],
        own_pred: str | None,
    ) -> bool:
        """The two-part coalescing condition described in the module docs."""
        for member in members:
            if self.interference.interfere(candidate, member):
                return False
        for pred in preds:
            if pred == own_pred:
                continue
            if self._live_at_copy_point(candidate, pred):
                return False
        return True

    def _live_at_copy_point(self, var: Variable, block_name: str) -> bool:
        """Is ``var`` still needed at the end of ``block_name``?

        The parallel copy sits just before the terminator, so a variable is
        "live at the copy point" when it is live-out of the block or read
        by the block's own terminator.
        """
        if self.oracle.is_live_out(var, block_name):
            return True
        terminator = self.function.block(block_name).terminator()
        if terminator is None:
            return False
        return any(op is var for op in terminator.operands)

    # ------------------------------------------------------------------
    # Transformation phase
    # ------------------------------------------------------------------
    def transform(self) -> None:
        self._emit_result_copies()
        self._emit_edge_copies()
        self._remove_phis()
        self._apply_renaming()

    def _emit_result_copies(self) -> None:
        for block_name, copies in self.result_copies.items():
            block = self.function.block(block_name)
            position = len(block.phis())
            for result, representative in copies:
                block.insert(
                    position,
                    Instruction(Opcode.COPY, result=result, operands=[representative]),
                )
                position += 1

    def _emit_edge_copies(self) -> None:
        for pred_name, copies in self.edge_copies.items():
            # Apply the class renaming to the *sources* before
            # sequentialising, so aliasing between a copy destination and a
            # renamed source is visible to the cycle detection.
            renamed = [
                (dest, self.renaming.get(id(src), src) if isinstance(src, Variable) else src)
                for dest, src in copies
            ]
            ordered = sequentialize(renamed, self._make_temp)
            block = self.function.block(pred_name)
            for dest, src in ordered:
                block.insert_before_terminator(
                    Instruction(Opcode.COPY, result=dest, operands=[src])
                )

    def _make_temp(self) -> Variable:
        temp = Variable(f"phitmp{self._temp_counter}")
        self._temp_counter += 1
        self.report.parallel_copy_temps += 1
        return temp

    def _remove_phis(self) -> None:
        for block in self.function:
            for phi in block.phis():
                block.remove(phi)

    def _apply_renaming(self) -> None:
        if not self.renaming:
            return
        # Parameters can be coalesced into a φ web (a parameter flowing into
        # a loop header φ is the common case); keep the signature in sync.
        self.function.parameters = [
            self.renaming.get(id(param), param) for param in self.function.parameters
        ]
        for block in self.function:
            for inst in block.instructions:
                for index, operand in enumerate(inst.operands):
                    if isinstance(operand, Variable):
                        replacement = self.renaming.get(id(operand))
                        if replacement is not None and replacement is not operand:
                            inst.operands[index] = replacement
                if inst.result is not None:
                    replacement = self.renaming.get(id(inst.result))
                    if replacement is not None and replacement is not inst.result:
                        inst.result = replacement


def destruct_ssa(
    function: Function,
    oracle_factory: OracleFactory | None = None,
    oracle: LivenessOracle | None = None,
) -> DestructionReport:
    """Translate ``function`` out of SSA form in place.

    ``oracle_factory`` builds the liveness oracle *after* critical-edge
    splitting (so its precomputation matches the final CFG).  Passing a
    prebuilt ``oracle`` is allowed when the caller knows the CFG has no
    critical edges or wants to reuse an engine.
    """
    split = function.split_critical_edges()

    if oracle is None:
        factory = oracle_factory or _default_oracle_factory
        oracle = factory(function)
    oracle.prepare()

    destructor = _Destructor(function, oracle)
    destructor.report.critical_edges_split = len(split)
    destructor.analyse()
    destructor.transform()
    return destructor.report
