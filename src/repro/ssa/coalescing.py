"""Deprecated shim — moved to :mod:`repro.ssadestruct.interference`.

The Budimlić interference test and the conservative copy coalescer now
live with the out-of-SSA pipeline that drives them; this module only
re-exports them so pre-PR-4 imports keep working for one release.
"""

from __future__ import annotations

import warnings

from repro.ssadestruct.interference import (
    CoalescingReport,
    CopyCoalescer,
    InterferenceChecker,
)

warnings.warn(
    "repro.ssa.coalescing is deprecated; import InterferenceChecker and "
    "CopyCoalescer from repro.ssadestruct.interference instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["CoalescingReport", "CopyCoalescer", "InterferenceChecker"]
