"""SSA machinery: def–use chains, construction and destruction.

* :class:`~repro.ssa.defuse.DefUseChains` — the per-variable ``def(a)`` /
  ``uses(a)`` information the checker consumes, with φ uses attributed to
  predecessor blocks per Definition 1 of the paper.
* :func:`~repro.ssa.construction.construct_ssa` — Cytron-style SSA
  construction (φ placement at iterated dominance frontiers + renaming).
* ``destruct_ssa`` — the deprecated out-of-SSA surface, now a thin
  adapter over :func:`repro.ssadestruct.destruct` (see
  :mod:`repro.ssadestruct.legacy`); new code should drive the staged
  pipeline directly.
* :class:`~repro.ssadestruct.interference.CopyCoalescer` — Budimlić-style
  interference tests and copy coalescing on top of any liveness oracle
  (re-exported from its new home for compatibility).
"""

from repro.ssa.construction import construct_ssa
from repro.ssa.defuse import DefUseChains, VariableDefUse
from repro.ssadestruct.interference import CopyCoalescer, InterferenceChecker
from repro.ssadestruct.legacy import DestructionReport, destruct_ssa

__all__ = [
    "DefUseChains",
    "VariableDefUse",
    "construct_ssa",
    "destruct_ssa",
    "DestructionReport",
    "CopyCoalescer",
    "InterferenceChecker",
]
