"""SSA machinery: def–use chains, construction and destruction.

* :class:`~repro.ssa.defuse.DefUseChains` — the per-variable ``def(a)`` /
  ``uses(a)`` information the checker consumes, with φ uses attributed to
  predecessor blocks per Definition 1 of the paper.
* :func:`~repro.ssa.construction.construct_ssa` — Cytron-style SSA
  construction (φ placement at iterated dominance frontiers + renaming).
* :func:`~repro.ssa.destruction.destruct_ssa` — out-of-SSA translation in
  the spirit of Sreedhar et al.'s method III, driven by liveness queries
  through a pluggable oracle; this pass produces the query stream measured
  in the paper's Table 2.
* :class:`~repro.ssa.coalescing.CopyCoalescer` — Budimlić-style
  interference tests and copy coalescing on top of any liveness oracle.
"""

from repro.ssa.defuse import DefUseChains, VariableDefUse
from repro.ssa.construction import construct_ssa
from repro.ssa.destruction import DestructionReport, destruct_ssa
from repro.ssa.coalescing import CopyCoalescer, InterferenceChecker

__all__ = [
    "DefUseChains",
    "VariableDefUse",
    "construct_ssa",
    "destruct_ssa",
    "DestructionReport",
    "CopyCoalescer",
    "InterferenceChecker",
]
