"""SSA construction (Cytron et al.).

The front-end and the synthetic program generator produce functions in
which a :class:`~repro.ir.value.Variable` may be assigned by several
instructions.  This pass rewrites such a function into strict SSA form:

1. φ-functions are placed at the iterated dominance frontier of each
   variable's definition blocks (pruned: only where the variable is
   live-in, so no dead φs are introduced);
2. a renaming walk over the dominator tree creates one fresh variable per
   reaching definition and rewires every use, inserting ``Undef`` operands
   on paths that carry no definition so the dominance property holds.

The result satisfies :func:`repro.ir.verify.verify_ssa`, i.e. the paper's
prerequisites.  The pass mutates the function in place and returns a small
report mapping every source variable name to the SSA versions created for
it, which the tests use to relate pre- and post-SSA programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.domfrontier import DominanceFrontiers
from repro.cfg.dominance import DominatorTree
from repro.ir.function import Function
from repro.ir.instruction import Phi
from repro.ir.value import Undef, Variable


@dataclass
class SSAConstructionReport:
    """Summary of an SSA construction run."""

    #: Mapping from source-variable name to the names of the SSA versions
    #: created for it (a single entry when no renaming was necessary).
    versions: dict[str, list[str]] = field(default_factory=dict)
    #: Number of φ-functions inserted.
    phis_inserted: int = 0

    def version_count(self, source_name: str) -> int:
        """How many SSA versions a source variable was split into."""
        return len(self.versions.get(source_name, []))


def construct_ssa(function: Function, pruned: bool = True) -> SSAConstructionReport:
    """Rewrite ``function`` into strict (pruned) SSA form in place."""
    cfg = function.build_cfg()
    cfg.validate()
    domtree = DominatorTree(cfg)
    frontiers = DominanceFrontiers(cfg, domtree)

    # ------------------------------------------------------------------
    # Collect definition and use sites per source variable.
    # ------------------------------------------------------------------
    def_blocks: dict[Variable, list[str]] = {}
    use_blocks: dict[Variable, set[str]] = {}
    for block in function:
        for inst in block.instructions:
            for value in inst.used_variables():
                use_blocks.setdefault(value, set()).add(block.name)
            var = inst.result
            if var is not None:
                def_blocks.setdefault(var, []).append(block.name)

    live_in = (
        _source_variable_live_in(function, def_blocks, use_blocks)
        if pruned
        else None
    )

    # ------------------------------------------------------------------
    # φ placement at iterated dominance frontiers.
    # ------------------------------------------------------------------
    report = SSAConstructionReport()
    phi_for: dict[tuple[str, Variable], Phi] = {}
    for var, blocks in def_blocks.items():
        frontier_nodes = frontiers.iterated_frontier(set(blocks))
        for node in sorted(frontier_nodes, key=domtree.num):
            if pruned and var not in live_in[node]:
                continue
            placeholder = Phi(result=Variable(f"{var.name}.phi"), incoming={})
            function.block(node).append(placeholder)
            phi_for[(node, var)] = placeholder
            report.phis_inserted += 1

    # ------------------------------------------------------------------
    # Renaming over the dominator tree.
    # ------------------------------------------------------------------
    renamer = _Renamer(function, cfg, domtree, phi_for, def_blocks)
    renamer.run()
    report.versions = renamer.versions_by_source()

    # Parameters now refer to renamed variables.
    function.parameters = [
        renamer.renamed_parameter(param) for param in function.parameters
    ]
    return report


# ----------------------------------------------------------------------
# Renaming
# ----------------------------------------------------------------------
class _Renamer:
    """The classic stack-per-variable renaming walk."""

    def __init__(
        self,
        function: Function,
        cfg,
        domtree: DominatorTree,
        phi_for: dict[tuple[str, Variable], Phi],
        def_blocks: dict[Variable, list[str]],
    ) -> None:
        self.function = function
        self.cfg = cfg
        self.domtree = domtree
        self.phi_source: dict[int, Variable] = {
            id(phi): var for (_, var), phi in phi_for.items()
        }
        self.sources = list(def_blocks)
        self.stacks: dict[Variable, list[Variable]] = {var: [] for var in self.sources}
        self.counters: dict[Variable, int] = {var: 0 for var in self.sources}
        self.created: dict[Variable, list[Variable]] = {var: [] for var in self.sources}
        self.param_map: dict[int, Variable] = {}

    # -- helpers -------------------------------------------------------
    def _new_version(self, source: Variable) -> Variable:
        self.counters[source] += 1
        version = Variable(f"{source.name}.{self.counters[source]}")
        self.created[source].append(version)
        return version

    def _current(self, source: Variable):
        stack = self.stacks.get(source)
        if not stack:
            return Undef()
        return stack[-1]

    # -- main walk ------------------------------------------------------
    def run(self) -> None:
        # Iterative pre/post walk over the dominator tree.
        entry = self.cfg.entry
        stack: list[tuple[str, bool, list[tuple[Variable, int]]]] = [(entry, False, [])]
        while stack:
            node, exiting, pushed = stack.pop()
            if exiting:
                for source, count in pushed:
                    for _ in range(count):
                        self.stacks[source].pop()
                continue
            pushed = self._rename_block(node)
            stack.append((node, True, pushed))
            for child in reversed(self.domtree.children(node)):
                stack.append((child, False, []))
        self._finalize_names()

    def _rename_block(self, node: str) -> list[tuple[Variable, int]]:
        block = self.function.block(node)
        pushed: dict[Variable, int] = {}

        for inst in block.instructions:
            if isinstance(inst, Phi):
                source = self.phi_source.get(id(inst))
                if source is None:
                    # Pre-existing φ (function already partially in SSA form):
                    # treat its result like an ordinary definition below.
                    source = inst.result if inst.result in self.stacks else None
                if source is not None:
                    new_var = self._new_version(source)
                    inst.result = new_var
                    new_var.definition = inst
                    self.stacks[source].append(new_var)
                    pushed[source] = pushed.get(source, 0) + 1
                continue
            # Ordinary instruction: rewrite uses, then the definition.
            for index, operand in enumerate(inst.operands):
                if isinstance(operand, Variable) and operand in self.stacks:
                    inst.operands[index] = self._current(operand)
            result = inst.result
            if result is not None and result in self.stacks:
                new_var = self._new_version(result)
                if result in self.function.parameters and id(result) not in self.param_map:
                    self.param_map[id(result)] = new_var
                inst.result = new_var
                new_var.definition = inst
                self.stacks[result].append(new_var)
                pushed[result] = pushed.get(result, 0) + 1

        # Fill in φ operands of the successors.
        for succ in self.cfg.successors(node):
            succ_block = self.function.block(succ)
            for phi in succ_block.phis():
                source = self.phi_source.get(id(phi))
                if source is None:
                    continue
                phi.set_incoming(node, self._current(source))
        return list(pushed.items())

    def _finalize_names(self) -> None:
        """Collapse ``v.1`` back to ``v`` when only one version was created."""
        for source, versions in self.created.items():
            if len(versions) == 1:
                versions[0].name = source.name

    # -- reporting -------------------------------------------------------
    def versions_by_source(self) -> dict[str, list[str]]:
        return {
            source.name: [version.name for version in versions]
            for source, versions in self.created.items()
            if versions
        }

    def renamed_parameter(self, param: Variable) -> Variable:
        if id(param) in self.param_map:
            return self.param_map[id(param)]
        # A parameter that was never redefined keeps its first version.
        versions = self.created.get(param)
        if versions:
            return versions[0]
        return param


# ----------------------------------------------------------------------
# Pruning support: liveness of *source* variables before SSA construction
# ----------------------------------------------------------------------
def _source_variable_live_in(
    function: Function,
    def_blocks: dict[Variable, list[str]],
    use_blocks: dict[Variable, set[str]],
) -> dict[str, set[Variable]]:
    """Backward data-flow liveness over source variables.

    Only used to prune φ placement; precision requirements are mild (an
    over-approximation would merely add harmless φs), but the standard
    block-level upward-exposure analysis is exact enough and cheap.
    """
    cfg = function.build_cfg()
    # Per-block gen (upward-exposed uses) and kill (definitions) sets.  Any
    # φ already present in the input (partially constructed SSA) follows the
    # usual convention: its operands count as uses at the end of the
    # corresponding predecessor, handled in the second pass below.
    gen: dict[str, set[Variable]] = {name: set() for name in cfg.nodes()}
    kill: dict[str, set[Variable]] = {name: set() for name in cfg.nodes()}
    for block in function:
        seen_defs: set[Variable] = set()
        for inst in block.instructions:
            if not inst.is_phi():
                for value in inst.used_variables():
                    if value in def_blocks and value not in seen_defs:
                        gen[block.name].add(value)
            if inst.result is not None and inst.result in def_blocks:
                seen_defs.add(inst.result)
        kill[block.name] = seen_defs
    for block in function:
        for phi in block.phis():
            for pred, value in phi.incoming.items():
                if (
                    isinstance(value, Variable)
                    and value in def_blocks
                    and value not in kill[pred]
                ):
                    gen[pred].add(value)

    live_in: dict[str, set[Variable]] = {name: set() for name in cfg.nodes()}
    live_out: dict[str, set[Variable]] = {name: set() for name in cfg.nodes()}
    changed = True
    while changed:
        changed = False
        for name in cfg.nodes():
            out = set()
            for succ in cfg.successors(name):
                out |= live_in[succ]
            new_in = gen[name] | (out - kill[name])
            if out != live_out[name] or new_in != live_in[name]:
                live_out[name] = out
                live_in[name] = new_in
                changed = True
    # ``use_blocks`` is currently unused beyond documentation of intent, but
    # retained in the signature so alternative pruning strategies (e.g.
    # semi-pruned SSA) can reuse this hook.
    del use_blocks
    return live_in
