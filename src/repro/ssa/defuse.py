"""Def–use chains with the paper's φ-use convention.

The liveness checker consumes exactly two pieces of per-variable
information (paper, Section 1, prerequisites):

* ``def(a)`` — the block containing the unique definition of ``a``;
* ``uses(a)`` — the blocks where ``a`` is used, where a φ operand counts as
  a use at the end of the *corresponding predecessor block*, not at the
  φ's own block (Definition 1).  This matches how compilers destruct φs by
  inserting copies in the predecessors.

Maintaining def–use chains under SSA is cheap (that is one of the selling
points of the representation), and :class:`DefUseChains` therefore offers
incremental ``add_use`` / ``remove_use`` operations in addition to the
one-shot construction from a function, so the invalidation ablation can
model a JIT that edits code between queries without redoing any analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.ir.function import Function
from repro.ir.instruction import Phi
from repro.ir.value import Variable


@dataclass
class VariableDefUse:
    """Definition block and multiset of use blocks for one variable."""

    variable: Variable
    def_block: str
    #: Use blocks with multiplicity; a variable used twice in a block has
    #: two entries.  Multiplicity matters for the workload statistics
    #: (uses-per-variable, Table 1) even though the liveness query only
    #: needs the supporting set.
    use_blocks: list[str] = field(default_factory=list)

    @property
    def use_block_set(self) -> set[str]:
        """Distinct blocks containing a use (what ``uses(a)`` means in Alg. 1)."""
        return set(self.use_blocks)

    @property
    def num_uses(self) -> int:
        """Length of the def–use chain (drives the paper's Table 1 CDF)."""
        return len(self.use_blocks)


class DefUseChains:
    """Def–use chains for every variable of an SSA-form function."""

    def __init__(self, function: Function) -> None:
        self._function = function
        self._chains: dict[Variable, VariableDefUse] = {}
        self._build()

    def _build(self) -> None:
        function = self._function
        # Pass 1: definitions (a ParallelCopy defines several variables).
        for block in function:
            for inst in block.instructions:
                for var in inst.defined_variables():
                    if var in self._chains:
                        raise ValueError(
                            f"variable {var.name!r} defined more than once; "
                            "def-use chains require SSA form"
                        )
                    self._chains[var] = VariableDefUse(
                        variable=var, def_block=block.name
                    )
        # Pass 2: uses, with φ operands attributed to predecessors.
        for block in function:
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    for pred, value in inst.incoming.items():
                        if isinstance(value, Variable):
                            self._record_use(value, pred)
                else:
                    for value in inst.operands:
                        if isinstance(value, Variable):
                            self._record_use(value, block.name)

    def _record_use(self, var: Variable, block_name: str) -> None:
        if var not in self._chains:
            raise ValueError(
                f"use of {var.name!r} without a definition; the function is "
                "not in strict SSA form"
            )
        self._chains[var].use_blocks.append(block_name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def function(self) -> Function:
        """The function the chains were built from."""
        return self._function

    def variables(self) -> list[Variable]:
        """All variables with a definition, in program order."""
        return list(self._chains)

    def __contains__(self, var: Variable) -> bool:
        return var in self._chains

    def __len__(self) -> int:
        return len(self._chains)

    def chain(self, var: Variable) -> VariableDefUse:
        """The :class:`VariableDefUse` record for ``var``."""
        return self._chains[var]

    def def_block(self, var: Variable) -> str:
        """``def(a)``: the block containing the definition of ``var``."""
        return self._chains[var].def_block

    def uses(self, var: Variable) -> list[str]:
        """``uses(a)`` with multiplicity, in discovery order."""
        return list(self._chains[var].use_blocks)

    def use_blocks(self, var: Variable) -> set[str]:
        """``uses(a)`` as a set of block names."""
        return self._chains[var].use_block_set

    def num_uses(self, var: Variable) -> int:
        """Length of the def–use chain of ``var``."""
        return self._chains[var].num_uses

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def add_variable(self, var: Variable, def_block: str) -> None:
        """Register a freshly created variable defined in ``def_block``.

        Adding a variable never invalidates the checker's precomputation —
        that is the point of the paper — so a JIT can call this at will.
        """
        if var in self._chains:
            raise ValueError(f"variable {var.name!r} already registered")
        self._chains[var] = VariableDefUse(variable=var, def_block=def_block)

    def remove_variable(self, var: Variable) -> None:
        """Forget a variable entirely (e.g. after dead-code elimination)."""
        del self._chains[var]

    def add_use(self, var: Variable, block_name: str) -> None:
        """Record an additional use of ``var`` in ``block_name``."""
        self._record_use(var, block_name)

    def remove_use(self, var: Variable, block_name: str) -> None:
        """Remove one use of ``var`` from ``block_name``."""
        self._chains[var].use_blocks.remove(block_name)

    # ------------------------------------------------------------------
    # Statistics (Table 1)
    # ------------------------------------------------------------------
    def uses_histogram(self) -> dict[int, int]:
        """Histogram mapping def–use chain length to number of variables."""
        histogram: dict[int, int] = {}
        for chain in self._chains.values():
            histogram[chain.num_uses] = histogram.get(chain.num_uses, 0) + 1
        return dict(sorted(histogram.items()))

    def uses_cdf(self, thresholds: Iterable[int] = (1, 2, 3, 4)) -> dict[int, float]:
        """Fraction of variables with at most ``k`` uses, for each threshold.

        This reproduces the right half of the paper's Table 1
        ("% ≤ 1 … % ≤ 4").  Returns an empty dict for functions without
        variables.
        """
        total = len(self._chains)
        if total == 0:
            return {}
        result = {}
        for threshold in thresholds:
            count = sum(
                1 for chain in self._chains.values() if chain.num_uses <= threshold
            )
            result[threshold] = count / total
        return result

    def max_uses(self) -> int:
        """The longest def–use chain in the function (0 if no variables)."""
        if not self._chains:
            return 0
        return max(chain.num_uses for chain in self._chains.values())
