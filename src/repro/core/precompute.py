"""The variable-independent precomputation (Sections 3.2 and 5.2).

:class:`LivenessPrecomputation` bundles everything the checker derives from
the CFG alone: the DFS (back edges), the dominator tree (preorder
numbering), the reduced-reachability sets ``R_v`` and the back-edge-target
sets ``T_v``, plus the reducibility flag that enables the Theorem-2 fast
path.

Because none of this depends on variables, instructions or def–use chains,
the object stays valid under every program transformation that leaves the
CFG untouched — adding or removing instructions, introducing or coalescing
variables, rewriting uses.  Only CFG edits (adding/removing blocks or
edges) require building a new instance, which is exactly the invalidation
contract the paper claims as its main practical advantage.

On top of the object-level views (``reach``/``targets`` return
:class:`~repro.sets.bitset.BitSet` instances — the readable construction
and teaching representation), the constructor lowers everything the query
engine touches to flat parallel arrays indexed by dominance-preorder
number: ``r_masks``, ``t_masks``, ``maxnums`` and ``is_back_target``.
The numeric core (:mod:`repro.core.bitset_query`,
:mod:`repro.core.batch`) runs Algorithm 3 on these raw ints with zero
``node_of``/``BitSet`` round-trips per query.
"""

from __future__ import annotations

from repro.cfg.dfs import DepthFirstSearch
from repro.cfg.dominance import DominatorTree
from repro.cfg.graph import ControlFlowGraph, Node
from repro.cfg.reducibility import is_reducible
from repro.core.reduced_graph import ReducedReachability
from repro.core.targets import TargetSets


class LivenessPrecomputation:
    """All per-CFG data needed to answer liveness queries."""

    def __init__(self, graph: ControlFlowGraph, strategy: str = "exact") -> None:
        graph.validate()
        self.graph = graph
        self.dfs = DepthFirstSearch(graph)
        self.domtree = DominatorTree(graph, self.dfs)
        self.reach = ReducedReachability(graph, self.dfs, self.domtree)
        self.targets = TargetSets(graph, self.dfs, self.domtree, self.reach, strategy)
        self.reducible = is_reducible(graph, self.dfs, self.domtree)
        self._back_edge_targets = set(self.dfs.back_edge_targets())
        # ------------------------------------------------------------------
        # The numeric view: flat arrays indexed by dominance-preorder number.
        # ------------------------------------------------------------------
        order = self.domtree.preorder()
        #: ``maxnums[n]`` = largest preorder number in the subtree of node n.
        self.maxnums: list[int] = [self.domtree.maxnum(node) for node in order]
        #: ``r_masks[n]`` = raw bit mask of ``R_v`` for the node numbered n.
        self.r_masks: list[int] = [self.reach.bitset(node).mask for node in order]
        #: ``t_masks[n]`` = raw bit mask of ``T_v`` for the node numbered n.
        self.t_masks: list[int] = [self.targets.bitset(node).mask for node in order]
        #: ``is_back_target[n]`` = a DFS back edge points at node number n.
        self.is_back_target: list[bool] = [
            node in self._back_edge_targets for node in order
        ]

    # ------------------------------------------------------------------
    # Node numbering helpers (Section 5.1)
    # ------------------------------------------------------------------
    def num(self, node: Node) -> int:
        """Dominance-preorder number of ``node``."""
        return self.domtree.num(node)

    def maxnum(self, node: Node) -> int:
        """Largest dominance-preorder number inside ``node``'s subtree."""
        return self.domtree.maxnum(node)

    def node_of(self, number: int) -> Node:
        """Inverse of :meth:`num`."""
        return self.domtree.node_of(number)

    def is_back_edge_target(self, node: Node) -> bool:
        """True iff a DFS back edge points at ``node`` (Algorithm 2, line 8)."""
        return node in self._back_edge_targets

    # ------------------------------------------------------------------
    # Statistics and accounting
    # ------------------------------------------------------------------
    def num_blocks(self) -> int:
        """Number of CFG nodes."""
        return len(self.graph)

    def num_edges(self) -> int:
        """Number of CFG edges."""
        return self.graph.num_edges()

    def num_back_edges(self) -> int:
        """Number of DFS back edges."""
        return len(self.dfs.back_edges())

    def storage_bits(self) -> int:
        """Payload bits of the ``R`` and ``T`` bitsets together.

        This is the quantity the paper's Section 6.1 discussion compares
        against the sorted-array live sets of the native analysis to locate
        the memory break-even point.
        """
        return self.reach.storage_bits() + self.targets.storage_bits()

    def __repr__(self) -> str:
        return (
            f"LivenessPrecomputation(blocks={self.num_blocks()}, "
            f"edges={self.num_edges()}, back_edges={self.num_back_edges()}, "
            f"reducible={self.reducible}, strategy={self.targets.strategy!r})"
        )
