"""The relevant back-edge-target sets ``T_v`` (Definition 5, Section 5.2).

``T_q`` collects, independently of any variable, the back-edge targets that
a liveness query starting at ``q`` may have to consider.  A target ``t'``
belongs to ``T↑_t`` when a back edge ``(s', t')`` exists whose source is
reduced-reachable from ``t`` but whose target is not; ``T_q`` is the
closure of that step starting from ``{q}``.

Theorem 3 shows that every element of ``T↑_t`` has a *strictly smaller DFS
preorder number* than ``t``, so the graph ``G_T`` (node → its ``T↑`` set)
is acyclic and ``T_v`` can be computed in one pass over the nodes in
increasing DFS preorder using Equation 1::

    T_v = {v} ∪ ⋃_{w ∈ T↑_v} T_w

Two strategies are provided:

* ``"exact"`` (default) — the Equation-1 pass above; it materialises the
  sets of Definition 5 exactly, so Lemma 3 / Theorem 2 (total dominance
  order on reducible CFGs, single query iteration) hold literally.
* ``"propagate"`` — the engineering shortcut described in Section 5.2:
  compute ``T`` for back-edge targets first, seed back-edge *sources* with
  the union of their targets' sets, propagate through the reduced graph in
  postorder, then add ``v`` to each ``T_v``.  This may over-approximate the
  exact sets (it drops the ``t' ∉ R_v`` filter on the first chain link) but
  never changes a query's answer; the ablation benchmark and the property
  tests quantify and check exactly that.

Like ``R_v``, the sets are bitsets over dominance-preorder indices.
"""

from __future__ import annotations

from repro.cfg.dfs import DepthFirstSearch
from repro.cfg.dominance import DominatorTree
from repro.cfg.graph import ControlFlowGraph, Node
from repro.core.reduced_graph import ReducedReachability
from repro.sets.bitset import BitSet

_STRATEGIES = ("exact", "propagate")


class TargetSets:
    """Per-node ``T_v`` bitsets."""

    def __init__(
        self,
        graph: ControlFlowGraph,
        dfs: DepthFirstSearch,
        domtree: DominatorTree,
        reach: ReducedReachability,
        strategy: str = "exact",
    ) -> None:
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {_STRATEGIES}"
            )
        self._graph = graph
        self._dfs = dfs
        self._domtree = domtree
        self._reach = reach
        self._universe = len(domtree)
        self._strategy = strategy
        self._sets: dict[Node, BitSet] = {}
        if strategy == "exact":
            self._compute_exact()
        else:
            self._compute_propagate()

    # ------------------------------------------------------------------
    # Exact Equation-1 construction
    # ------------------------------------------------------------------
    def t_up(self, node: Node) -> list[Node]:
        """``T↑_node`` computed directly from Definition 5.

        Iterates the back edges (a few percent of all edges in practice,
        per the paper's §6.1 statistics) and keeps the targets whose source
        is reduced-reachable from ``node`` but which are not themselves
        reduced-reachable.
        """
        result: dict[Node, None] = {}
        r_node = self._reach.bitset(node)
        num = self._domtree.num
        for source, target in self._dfs.back_edges():
            if num(source) in r_node and num(target) not in r_node:
                result.setdefault(target, None)
        return list(result)

    def _compute_exact(self) -> None:
        for node in self._dfs.preorder():
            bits = BitSet(self._universe)
            bits.add(self._domtree.num(node))
            for target in self.t_up(node):
                # Theorem 3: target has a smaller DFS preorder number, so
                # its set is already final.
                bits.update(self._sets[target])
            self._sets[node] = bits

    # ------------------------------------------------------------------
    # Section 5.2 two-pass propagation
    # ------------------------------------------------------------------
    def _compute_propagate(self) -> None:
        num = self._domtree.num
        back_edges = self._dfs.back_edges()
        targets_of: dict[Node, list[Node]] = {}
        for source, target in back_edges:
            targets_of.setdefault(source, []).append(target)

        # Pass 1: T for back-edge targets, in increasing DFS preorder.
        partial: dict[Node, BitSet] = {}
        back_targets = sorted(
            {target for _, target in back_edges}, key=self._dfs.preorder_number
        )
        for target in back_targets:
            bits = BitSet(self._universe)
            bits.add(num(target))
            for upstream in self.t_up(target):
                bits.update(partial[upstream])
            partial[target] = bits

        # Pass 2: seed back-edge sources with the union of their targets'
        # sets (minus the source itself, added back at the end).
        seed: dict[Node, BitSet] = {
            node: BitSet(self._universe) for node in self._graph.nodes()
        }
        for source, source_targets in targets_of.items():
            for target in source_targets:
                seed[source].update(partial[target])

        # Pass 3: propagate through the reduced graph in DFS postorder
        # (reverse topological order), exactly like the R_v sweep.
        for node in self._dfs.postorder():
            bits = seed[node]
            for succ in self._graph.successors(node):
                if self._dfs.is_back_edge(node, succ):
                    continue
                bits.update(self._sets.get(succ, seed[succ]))
            self._sets[node] = bits
        # Finally add the node itself.
        for node in self._graph.nodes():
            own = self._sets[node]
            own.add(num(node))
            # Keep the back-edge-target pass results authoritative where we
            # have them: they carry the exact Definition-5 sets.
            if node in partial:
                own.update(partial[node])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def strategy(self) -> str:
        """The construction strategy used (``"exact"`` or ``"propagate"``)."""
        return self._strategy

    @property
    def universe(self) -> int:
        """Size of the bitset universe (number of blocks)."""
        return self._universe

    def bitset(self, node: Node) -> BitSet:
        """``T_node`` over dominance-preorder indices."""
        return self._sets[node]

    def target_nodes(self, node: Node) -> list[Node]:
        """``T_node`` as nodes, ordered by dominance-preorder index."""
        return [self._domtree.node_of(index) for index in self._sets[node]]

    def relevant_targets(self, query: Node, def_node: Node) -> list[Node]:
        """``T_(q,a) = T_q ∩ sdom(def(a))`` in dominance-preorder order.

        Following Section 5.1 this is an index-interval scan: the nodes
        strictly dominated by ``def_node`` occupy the preorder interval
        ``(num(def), maxnum(def)]``.
        """
        lo = self._domtree.num(def_node) + 1
        hi = self._domtree.maxnum(def_node)
        return [
            self._domtree.node_of(index)
            for index in self._sets[query].iter_range(lo, hi)
        ]

    def replace_row(self, node: Node, mask: int) -> None:
        """Overwrite ``T_node`` with a recomputed raw mask.

        Used by :mod:`repro.core.incremental` to patch the object-level
        view in lockstep with the flat ``t_masks`` array after a CFG edit
        that preserved the numbering.
        """
        self._sets[node] = BitSet.from_mask(self._universe, mask)

    def storage_bits(self) -> int:
        """Total payload bits of all ``T_v`` bitsets (memory ablation)."""
        return sum(bits.storage_bits() for bits in self._sets.values())

    def __len__(self) -> int:
        return len(self._sets)
