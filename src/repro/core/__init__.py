"""The paper's contribution: fast liveness checking for SSA-form programs.

The package is organised to mirror the paper:

* :mod:`repro.core.reduced_graph` — the reduced graph ``G̃`` and the
  reduced-reachability sets ``R_v`` (Definition 4, Section 5.2).
* :mod:`repro.core.targets` — the relevant back-edge-target sets ``T_v``
  (Definition 5, Equation 1, Theorem 3, Section 5.2), with both the exact
  per-node construction and the paper's two-pass propagation strategy.
* :mod:`repro.core.precompute` — :class:`LivenessPrecomputation`, bundling
  DFS, dominance, ``R`` and ``T`` for one CFG.  This is the part that is
  *independent of variables* and survives program transformations.
* :mod:`repro.core.query` — the set-based live-in/live-out checks
  (Algorithms 1 and 2) used as the readable reference.
* :mod:`repro.core.bitset_query` — Algorithm 3, the engineered bitset
  implementation with the reducible-CFG fast path (Theorem 2).
* :mod:`repro.core.live_checker` — :class:`FastLivenessChecker`, the public
  oracle tying a function's def–use chains to the precomputation.
* :mod:`repro.core.loopforest` — the loop-nesting-forest variant sketched
  in the paper's outlook (Section 8).
* :mod:`repro.core.invalidation` — a transformation session demonstrating
  which edits preserve the precomputation (all of them except CFG edits).
* :mod:`repro.core.incremental` — :class:`CfgDelta` and
  :func:`apply_cfg_delta`: described CFG edits patched into an existing
  precomputation (only the reachable ``R``/``T`` rows), with a provable
  fallback to a full rebuild when the preorder numbering is invalidated.
* :mod:`repro.core.maskengine` — the accelerated ``mask`` engine:
  :class:`FastLivenessChecker` behind a batch backend that packs the
  ``R``/``T`` rows into flat word matrices (vectorised via ``numpy``
  when present, gated to stay scalar on small functions).
* :mod:`repro.core.plans` — :class:`QueryPlan` / :class:`PlanCache`, the
  precompiled numeric form of one variable's def–use chain (def number,
  dominance interval, use mask), shared by the single-query, batch and
  register-allocation layers.
* :mod:`repro.core.batch` — :class:`BatchQueryEngine`, answering many
  ``(variable, block)`` queries in one pass by adding hot-target masks on
  top of the shared plans; this is what makes whole-program clients
  such as :mod:`repro.regalloc` affordable.
"""

from repro.core.batch import BatchQueryEngine
from repro.core.bitset_query import BitsetChecker
from repro.core.incremental import CfgDelta, UpdateResult, apply_cfg_delta
from repro.core.invalidation import TransformationSession
from repro.core.live_checker import FastLivenessChecker
from repro.core.maskengine import MaskLivenessChecker
from repro.core.loopforest import LoopForestChecker
from repro.core.plans import PlanCache, QueryPlan
from repro.core.precompute import LivenessPrecomputation
from repro.core.query import SetBasedChecker
from repro.core.reduced_graph import ReducedReachability
from repro.core.targets import TargetSets

__all__ = [
    "BatchQueryEngine",
    "ReducedReachability",
    "TargetSets",
    "PlanCache",
    "QueryPlan",
    "LivenessPrecomputation",
    "SetBasedChecker",
    "BitsetChecker",
    "FastLivenessChecker",
    "MaskLivenessChecker",
    "LoopForestChecker",
    "TransformationSession",
    "CfgDelta",
    "UpdateResult",
    "apply_cfg_delta",
]
