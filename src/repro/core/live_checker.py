"""The public liveness-checking oracle for IR functions.

:class:`FastLivenessChecker` ties together the three ingredients the paper
lists as prerequisites — the CFG with its dominator tree and DFS (bundled
in :class:`~repro.core.precompute.LivenessPrecomputation`) and the per
variable def–use chains (:class:`~repro.ssa.defuse.DefUseChains`) — and
answers ``is_live_in`` / ``is_live_out`` queries through Algorithm 3.

It implements :class:`~repro.liveness.oracle.LivenessOracle`, so it is a
drop-in replacement for the data-flow baseline inside the SSA destruction
pass and the benchmark harness.  The engine can also *enumerate* live sets
by querying every (variable, block) pair, which is how the differential
tests establish that the characteristic function matches the sets computed
by the conventional analyses.
"""

from __future__ import annotations

from repro.core.batch import BatchQueryEngine
from repro.core.bitset_query import BitsetChecker
from repro.core.incremental import CfgDelta, UpdateResult, apply_cfg_delta
from repro.core.plans import PlanCache
from repro.core.precompute import LivenessPrecomputation
from repro.core.query import SetBasedChecker
from repro.ir.function import Function
from repro.ir.value import Variable
from repro.liveness.oracle import LivenessOracle, LiveSets
from repro.ssa.defuse import DefUseChains


class FastLivenessChecker(LivenessOracle):
    """Liveness checking per Boissinot et al. for one SSA-form function."""

    def __init__(
        self,
        function: Function,
        defuse: DefUseChains | None = None,
        strategy: str = "exact",
        use_bitsets: bool = True,
        reducible_fast_path: bool = True,
    ) -> None:
        self._function = function
        self._defuse = defuse
        self._strategy = strategy
        self._use_bitsets = use_bitsets
        self._reducible_fast_path = reducible_fast_path
        self._pre: LivenessPrecomputation | None = None
        self._bitset_checker: BitsetChecker | None = None
        self._set_checker: SetBasedChecker | None = None
        self._batch: BatchQueryEngine | None = None
        self._plans: PlanCache | None = None

    @classmethod
    def from_precomputation(
        cls,
        function: Function,
        pre,
        strategy: str = "exact",
        use_bitsets: bool = True,
        reducible_fast_path: bool = True,
    ) -> "FastLivenessChecker":
        """Build a checker over an already-materialised precomputation.

        The restore path of :mod:`repro.persist` hands in a
        :class:`~repro.persist.precomp.RestoredPrecomputation` (the flat
        numeric view read back from a snapshot) instead of paying for
        DFS + dominators + the quadratic closure again.  Any real
        ``LivenessPrecomputation`` works too.  Def–use chains and query
        plans still build lazily from ``function``, exactly as after a
        normal :meth:`prepare`; a later :meth:`notify_cfg_changed` drops
        ``pre`` and the next query recomputes from scratch.
        """
        checker = cls(
            function,
            strategy=strategy,
            use_bitsets=use_bitsets,
            reducible_fast_path=reducible_fast_path,
        )
        checker._pre = pre
        checker._bitset_checker = BitsetChecker(
            pre, reducible_fast_path=reducible_fast_path
        )
        checker._set_checker = SetBasedChecker(pre)
        return checker

    # ------------------------------------------------------------------
    # Precomputation management
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Run the CFG-only precomputation and build def–use chains."""
        if self._pre is None:
            cfg = self._function.build_cfg()
            self._pre = LivenessPrecomputation(cfg, strategy=self._strategy)
            self._bitset_checker = BitsetChecker(
                self._pre, reducible_fast_path=self._reducible_fast_path
            )
            self._set_checker = SetBasedChecker(self._pre)
            self._plans = None
        if self._defuse is None:
            self._defuse = DefUseChains(self._function)
            self._plans = None
        if self._plans is None:
            self._plans = PlanCache(self._pre, self._defuse)

    @property
    def precomputation(self) -> LivenessPrecomputation:
        """The variable-independent precomputation (built on first access)."""
        self.prepare()
        assert self._pre is not None
        return self._pre

    @property
    def resident_precomputation(self):
        """The precomputation if already materialised, else ``None``.

        Unlike :attr:`precomputation` this never triggers a build — the
        snapshot exporter uses it to capture exactly the checkers that
        are warm, without warming the rest as a side effect.
        """
        return self._pre

    @property
    def is_restored(self) -> bool:
        """Is the resident precomputation a snapshot-restored shim?

        Restored shims answer every query but lack the object views
        (``domtree``/``reach``/``dfs``); passes that need those — the
        out-of-SSA pipeline shares the dominator tree — must swap in a
        real rebuild first (the service layer does).
        """
        return getattr(self._pre, "restored", False)

    @property
    def defuse(self) -> DefUseChains:
        """The def–use chains used to answer queries."""
        self.prepare()
        assert self._defuse is not None
        return self._defuse

    @property
    def plans(self) -> PlanCache:
        """The per-variable query-plan cache (shared with the batch engine)."""
        self.prepare()
        assert self._plans is not None
        return self._plans

    def notify_cfg_changed(self, delta: CfgDelta | None = None) -> UpdateResult:
        """Invalidate — or incrementally patch — after a CFG edit.

        This is the *only* event that invalidates the checker.  Instruction
        and variable edits are absorbed by updating the def–use chains (see
        :class:`repro.core.invalidation.TransformationSession`).

        When the caller can describe the edit as a :class:`CfgDelta` and a
        precomputation is resident, :func:`apply_cfg_delta` patches it in
        place instead of discarding it; the dominance numbering is then
        provably unchanged, so the per-variable query plans survive too and
        only the batch engine's hot masks (which fold in ``R`` rows) and
        the bitset front-ends (whose fast-path flag may flip with
        reducibility) are refreshed.  Any delta the patcher cannot absorb
        degrades to the historical full invalidation — callers never need
        to distinguish the cases, but the returned :class:`UpdateResult`
        says which one happened.
        """
        if delta is not None and self._pre is not None:
            result = apply_cfg_delta(self._pre, delta)
            if result.applied:
                self._bitset_checker = BitsetChecker(
                    self._pre, reducible_fast_path=self._reducible_fast_path
                )
                self._set_checker = SetBasedChecker(self._pre)
                if self._batch is not None:
                    self._batch.invalidate()
                return result
        elif delta is not None:
            # Nothing resident: the next prepare() builds from the edited
            # function, so there is nothing to patch or discard.
            result = UpdateResult(True, "no-op")
        else:
            result = UpdateResult(False, "full-invalidation")
        self._pre = None
        self._bitset_checker = None
        self._set_checker = None
        self._batch = None
        self._plans = None
        return result

    def notify_instructions_changed(self) -> None:
        """Drop the per-variable plans after instruction-level edits.

        The precomputation is deliberately left untouched: that it survives
        such edits is the paper's headline property.  Everything derived
        from the def–use chains goes — the chains themselves (rebuilt
        lazily), the query plans and the batch engine's hot masks.
        """
        self._defuse = None
        self._plans = None
        if self._batch is not None:
            self._batch.invalidate()

    def notify_variable_changed(self, var: Variable) -> None:
        """Drop cached numeric state for one variable only.

        For callers that maintain the def–use chains *incrementally* (e.g.
        :class:`repro.core.invalidation.TransformationSession`): the chains
        stay valid, so only the stale compiled artefacts — the variable's
        query plan and batch masks — need to go.
        """
        if self._plans is not None:
            self._plans.discard(var)
        if self._batch is not None:
            self._batch.discard(var)

    # ------------------------------------------------------------------
    # Oracle interface
    # ------------------------------------------------------------------
    def is_live_in(self, var: Variable, block: str) -> bool:
        # Hot path: skip the prepare() call when everything is resident
        # (plans are built last, so a live plan cache implies the rest).
        if self._plans is None:
            self.prepare()
        assert self._defuse is not None and self._pre is not None
        if self._use_bitsets:
            assert self._bitset_checker is not None and self._plans is not None
            plan = self._plans.plan(var)
            return self._bitset_checker.is_live_in_mask(
                plan.def_num, plan.use_mask, self._pre.num(block)
            )
        assert self._set_checker is not None
        return self._set_checker.is_live_in(
            self._defuse.def_block(var), self._defuse.use_blocks(var), block
        )

    def is_live_out(self, var: Variable, block: str) -> bool:
        if self._plans is None:
            self.prepare()
        assert self._defuse is not None and self._pre is not None
        if self._use_bitsets:
            assert self._bitset_checker is not None and self._plans is not None
            plan = self._plans.plan(var)
            return self._bitset_checker.is_live_out_mask(
                plan.def_num, plan.use_mask, self._pre.num(block)
            )
        assert self._set_checker is not None
        return self._set_checker.is_live_out(
            self._defuse.def_block(var), self._defuse.use_blocks(var), block
        )

    def live_variables(self) -> list[Variable]:
        self.prepare()
        assert self._defuse is not None
        return self._defuse.variables()

    # ------------------------------------------------------------------
    # Batch interface (register-allocation workloads)
    # ------------------------------------------------------------------
    @property
    def batch(self) -> BatchQueryEngine:
        """The batch engine, sharing this checker's precomputation.

        Built lazily; per-variable setups are cached until the next
        :meth:`notify_instructions_changed` / :meth:`notify_cfg_changed`.
        """
        self.prepare()
        if self._batch is None:
            self._batch = BatchQueryEngine(self)
        return self._batch

    def live_in_set(self, var: Variable) -> set[str]:
        """All blocks where ``var`` is live-in (one amortised sweep)."""
        return self.batch.live_in_blocks(var)

    def live_out_set(self, var: Variable) -> set[str]:
        """All blocks where ``var`` is live-out (one amortised sweep)."""
        return self.batch.live_out_blocks(var)

    def query_batch(self, queries) -> list[bool]:
        """Answer many ``(kind, var, block)`` queries in one pass."""
        return self.batch.query_many(queries)

    # ------------------------------------------------------------------
    # Set enumeration (for parity with set-producing engines)
    # ------------------------------------------------------------------
    def live_sets(self, variables: list[Variable] | None = None) -> LiveSets:
        """Materialise live-in/live-out sets by exhaustive querying.

        The paper's point is that one usually does *not* want to do this —
        the checker's strength is answering isolated queries — but having
        the enumeration makes the engine directly comparable with the
        data-flow baseline in the differential tests and exposes the
        crossover measured by the query-count benchmark.
        """
        self.prepare()
        assert self._pre is not None
        tracked = variables if variables is not None else self.live_variables()
        if self._use_bitsets:
            # One joint interval sweep per variable instead of
            # |variables| × |blocks| independent Algorithm-3 runs.
            in_map, out_map = self.batch.live_maps(tracked)
            return LiveSets(
                live_in={block: frozenset(vs) for block, vs in in_map.items()},
                live_out={block: frozenset(vs) for block, vs in out_map.items()},
            )
        blocks = list(self._pre.graph.nodes())
        live_in = {
            block: frozenset(v for v in tracked if self.is_live_in(v, block))
            for block in blocks
        }
        live_out = {
            block: frozenset(v for v in tracked if self.is_live_out(v, block))
            for block in blocks
        }
        return LiveSets(live_in=live_in, live_out=live_out)
